"""Registered crash sweeps: one per persistence layer.

Each :class:`SweepSpec` names a harness factory plus the sweep style and the
fast-mode parameters used by the default test selection (the exhaustive
walks carry ``@pytest.mark.sweep`` and run via ``make sweep`` /
``python -m repro.faults.sweep_all``).

Layers covered:

* ``pjh_alloc_gc``   — persistent allocation + persistent GC (failpoints)
* ``pjh_alloc_buffer`` — the per-mutator allocation-buffer claim protocol:
  tiny TLABs over freshly-reclaimed (stale-image) space, crashed at every
  flush boundary of the zero/top/table-entry/filler sequence; recovery
  must truncate or plug every partially-filled window with no resurrected
  objects (flush boundaries)
* ``h2_sql``         — the SQL engine's WAL (flush boundaries)
* ``pjhlib``         — Java-level ACID collections (flush boundaries)
* ``pcj_nvml``       — PCJ's NVML-style undo-log transactions (flush)
* ``pjo_commit``     — the PJO commit path with dedup + field tracking (flush)
* ``mixed_domains``  — PJH allocation interleaved with H2 WAL commits, both
  routed through coalescing persist domains on separate devices (flush)
* ``resume_task``    — crash-transparent execution: a resumable task's
  persistent frame stack, crashed at every protocol failpoint and resumed
  after restart; the resumed durable image must be byte-identical to an
  uncrashed run's (failpoints)
* ``fleet_failover`` — the sharded multi-heap fleet: one shard is
  power-failed at every flush boundary mid-traffic while its siblings
  keep serving, then recovered on the worker gang; every shard and the
  shard directory fsck clean, routing stays correct (no request lands on
  a down shard, no session migrates), and the durable directory image is
  byte-identical to an uncrashed run's (flush boundaries, victim device
  only)
* ``concurrent_kv``  — the concurrent mutator gang hammering the
  lock-free durable map: a 3-mutator contended KV workload is crashed at
  every flush boundary (each an arbitrary cut through the seeded
  interleaving); the recovered map must pass its protocol audit, satisfy
  durable linearizability against the gang's recorded history, and fsck
  clean (flush boundaries)
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from types import SimpleNamespace
from typing import Callable, Dict, Optional

from repro.faults.harness import CrashSweepHarness, SweepReport
from repro.nvm.device import FaultMode
from repro.obs import Observatory


@dataclass(frozen=True)
class SweepSpec:
    """A named sweep: how to build its harness and how to drive it."""

    name: str
    strategy: str               # "failpoint" | "flush"
    factory: Callable[[], CrashSweepHarness]
    fast_stride: int            # stride for the under-budget default tests
    fast_max_points: int


#: Every sweep harness runs its JVMs with a parallel GC gang, so each
#: induced crash (and each recovery) exercises the worker scheduler's
#: protocol-state guarantees, not just the serial collector's.
GC_WORKERS = 3

SWEEPS: Dict[str, SweepSpec] = {}


def _register(spec: SweepSpec) -> SweepSpec:
    SWEEPS[spec.name] = spec
    return spec


def run_sweep(name: str, fault_mode: str = FaultMode.ATOMIC, *,
              exhaustive: bool = True, seed: int = 0) -> SweepReport:
    """Run one registered sweep; ``exhaustive=False`` uses the fast stride."""
    spec = SWEEPS[name]
    harness = spec.factory()
    if spec.strategy == "failpoint":
        run = harness.sweep_global_hits
    else:
        run = harness.sweep_flush_boundaries
    if exhaustive:
        return run(fault_mode, seed=seed)
    return run(fault_mode, seed=seed, stride=spec.fast_stride,
               max_points=spec.fast_max_points)


# ----------------------------------------------------------------------
# PJH allocation + persistent GC (failpoint sweep, fsck after recovery)
# ----------------------------------------------------------------------
def _pjh_harness() -> CrashSweepHarness:
    from repro.api import Espresso
    from repro.runtime.klass import FieldKind, field
    from repro.tools.fsck import fsck_heap

    CHURN = 18       # allocations before GC (most become garbage)
    POST_GC = 6      # allocations after GC (over the reclaimed tail)

    def anchors():
        committed = [i for i in range(CHURN) if i % 3 == 0]
        committed += list(range(CHURN, CHURN + POST_GC))
        return committed

    def setup():
        tmp = Path(tempfile.mkdtemp(prefix="sweep-pjh-"))
        jvm = Espresso(tmp / "heaps", observatory=Observatory(),
                       gc_workers=GC_WORKERS)
        node = jvm.define_class("SweepNode", [field("v", FieldKind.INT),
                                              field("next", FieldKind.REF)])
        jvm.create_heap("h", 256 * 1024, region_words=128)
        return SimpleNamespace(tmp=tmp, jvm=jvm, node=node, obs=jvm.obs)

    def commit_anchor(ctx, handle):
        ctx.jvm.flush_reachable(handle)
        ctx.jvm.set_root("keep", handle)

    def workload(ctx):
        jvm = ctx.jvm
        keep = None
        for i in range(CHURN):
            n = jvm.pnew(ctx.node)
            jvm.set_field(n, "v", i)
            if i % 3 == 0:
                if keep is not None:
                    jvm.set_field(n, "next", keep)
                keep = n
                commit_anchor(ctx, keep)
            else:
                n.close()  # garbage for the collector
        jvm.persistent_gc()
        for i in range(CHURN, CHURN + POST_GC):
            n = jvm.pnew(ctx.node)
            jvm.set_field(n, "v", i)
            jvm.set_field(n, "next", keep)
            keep = n
            commit_anchor(ctx, keep)

    def recover(ctx, crashed):
        ctx.jvm.crash()  # power loss: durable image saved, heap unmounted
        jvm2 = Espresso(ctx.tmp / "heaps", observatory=Observatory(),
                        gc_workers=GC_WORKERS)
        jvm2.load_heap("h")
        return SimpleNamespace(jvm=jvm2, heap=jvm2.heaps.heap("h"),
                               obs=jvm2.obs)

    def invariant(rctx, completed):
        jvm = rctx.jvm
        allowed = anchors()
        head = jvm.get_root("keep")
        if completed or head is not None:
            assert head is not None, "committed root lost"
            chain = []
            cursor = head
            while cursor is not None:
                chain.append(jvm.get_field(cursor, "v"))
                cursor = jvm.get_field(cursor, "next")
            # The chain is exactly the committed anchors down from its head:
            # flush_reachable + setRoot published every link before the root.
            head_v = chain[0]
            assert head_v in allowed, chain
            expected = [v for v in reversed(allowed) if v <= head_v]
            assert chain == expected, (chain, expected)
            if completed:
                assert head_v == allowed[-1], chain

    def fsck(rctx):
        from repro.tools.fsck import fsck_heap
        return fsck_heap(rctx.heap)

    def teardown(ctx, rctx):
        shutil.rmtree(ctx.tmp, ignore_errors=True)

    return CrashSweepHarness(
        "pjh_alloc_gc",
        setup=setup, workload=workload, recover=recover,
        invariant=invariant, fsck=fsck, teardown=teardown,
        devices=lambda ctx: [ctx.jvm.heaps.heap("h").device],
        registry=lambda ctx: ctx.jvm.vm.failpoints)


_register(SweepSpec("pjh_alloc_gc", "failpoint", _pjh_harness,
                    fast_stride=13, fast_max_points=10))


# ----------------------------------------------------------------------
# Per-mutator allocation buffers: the refill/retire claim protocol
# (flush-boundary sweep, fsck after recovery)
# ----------------------------------------------------------------------
def _alloc_buffer_harness() -> CrashSweepHarness:
    """Crash the TLAB claim protocol at every flush boundary.

    Tiny buffers (32 words) force a refill every couple of allocations,
    so the bomb lands inside partially-filled windows, between the
    durable zeroing / top bump / table-entry publish of a claim, and in
    the filler writes of retirement.  The workload GCs a batch of
    garbage first, so every buffer is claimed over reclaimed space that
    still holds stale object images — the exact shape where a sloppy
    tail truncation would resurrect dead objects.
    """
    from repro.api import Espresso, EspressoConfig
    from repro.runtime.klass import FieldKind, field

    BUF_WORDS = 32
    GARBAGE = 10
    ROUNDS = 10

    def _config():
        return EspressoConfig(observatory=Observatory(),
                              gc_workers=GC_WORKERS,
                              alloc_buffer_words=BUF_WORDS)

    def setup():
        tmp = Path(tempfile.mkdtemp(prefix="sweep-tlab-"))
        jvm = Espresso(tmp / "heaps", config=_config())
        node = jvm.define_class("BufNode", [field("v", FieldKind.INT),
                                            field("next", FieldKind.REF)])
        jvm.create_heap("h", 256 * 1024, region_words=128)
        # Pre-crash churn OUTSIDE the sweep window: garbage, then a
        # compacting GC, so the data tail is littered with stale images.
        keep = jvm.pnew(node)
        jvm.set_field(keep, "v", 0)
        jvm.flush_reachable(keep)
        jvm.set_root("keep", keep)
        for i in range(GARBAGE):
            dead = jvm.pnew(node)
            jvm.set_field(dead, "v", 1000 + i)
            dead.close()
        jvm.persistent_gc()
        return SimpleNamespace(tmp=tmp, jvm=jvm, node=node, obs=jvm.obs)

    def workload(ctx):
        jvm = ctx.jvm
        keep = jvm.get_root("keep")
        for i in range(1, ROUNDS + 1):
            n = jvm.pnew(ctx.node)
            jvm.set_field(n, "v", i)
            jvm.set_field(n, "next", keep)
            keep = n
            jvm.flush_reachable(keep)
            jvm.set_root("keep", keep)
        # An oversize array leaves the buffered path for a direct claim
        # mid-stream, then one more buffered node lands after it.
        jvm.pnew_array(jvm.vm.object_klass, 2 * BUF_WORDS)
        tail = jvm.pnew(ctx.node)
        jvm.set_field(tail, "v", ROUNDS + 1)
        jvm.set_field(tail, "next", keep)
        jvm.flush_reachable(tail)
        jvm.set_root("keep", tail)

    def recover(ctx, crashed):
        ctx.jvm.crash()
        jvm = Espresso(ctx.tmp / "heaps", config=_config())
        jvm.load_heap("h")
        return SimpleNamespace(jvm=jvm, heap=jvm.heaps.heap("h"),
                               obs=jvm.obs)

    def invariant(rctx, completed):
        jvm, heap = rctx.jvm, rctx.heap
        # The rooted chain is a contiguous committed prefix.
        chain = []
        cursor = jvm.get_root("keep")
        while cursor is not None:
            chain.append(jvm.get_field(cursor, "v"))
            cursor = jvm.get_field(cursor, "next")
        assert chain == list(range(chain[0], -1, -1)), chain
        if completed:
            assert chain[0] == ROUNDS + 1, chain
        # No resurrected objects: every surviving BufNode is one the
        # post-GC workload wrote — never a 1000+ garbage stamp exposed
        # out of a stale image under a settled buffer tail.  An in-flight
        # allocation may survive with durably-zero fields (pnew only
        # guarantees the header, §3.5), so v=0 can repeat; a *written*
        # stamp cannot.
        values = []
        for address in heap.walk():
            if jvm.vm.access.klass_of(address).name == "BufNode":
                values.append(jvm.get_field(jvm.vm.handle(address), "v"))
        assert all(0 <= v <= ROUNDS + 1 for v in values), sorted(values)
        positive = [v for v in values if v > 0]
        assert len(positive) == len(set(positive)), sorted(values)
        assert set(chain) <= set(values)

    def fsck(rctx):
        from repro.tools.fsck import fsck_heap
        return fsck_heap(rctx.heap)

    def teardown(ctx, rctx):
        shutil.rmtree(ctx.tmp, ignore_errors=True)

    return CrashSweepHarness(
        "pjh_alloc_buffer",
        setup=setup, workload=workload, recover=recover,
        invariant=invariant, fsck=fsck, teardown=teardown,
        devices=lambda ctx: [ctx.jvm.heaps.heap("h").device])


_register(SweepSpec("pjh_alloc_buffer", "flush", _alloc_buffer_harness,
                    fast_stride=11, fast_max_points=10))


# ----------------------------------------------------------------------
# H2 SQL engine (flush-boundary sweep over the WAL protocol)
# ----------------------------------------------------------------------
def _h2_harness() -> CrashSweepHarness:
    from repro.h2.engine import Database

    def expected_rows():
        rows = {i: f"v{i}" for i in range(6)}
        rows[2] = "updated"
        del rows[4]
        rows[100] = "uncommitted"
        rows[0] = "torn"
        return rows

    def setup():
        obs = Observatory()
        return SimpleNamespace(db=Database(size_words=1 << 18, obs=obs),
                               obs=obs)

    def workload(ctx):
        db = ctx.db
        db.execute("CREATE TABLE t (k BIGINT PRIMARY KEY, v VARCHAR)")
        for i in range(6):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
        db.execute("UPDATE t SET v = 'updated' WHERE k = 2")
        db.execute("DELETE FROM t WHERE k = 4")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (100, 'uncommitted')")
        db.execute("UPDATE t SET v = 'torn' WHERE k = 0")
        db.execute("COMMIT")

    def recover(ctx, crashed):
        obs = Observatory()
        return SimpleNamespace(db=ctx.db.crash(obs=obs), obs=obs)

    def invariant(rctx, completed):
        db = rctx.db
        if completed:
            assert dict(db.execute("SELECT k, v FROM t").rows) \
                == expected_rows()
            return
        if not db.catalog.exists("t"):
            return  # crashed before CREATE committed: empty DB is valid
        rows = dict(db.execute("SELECT k, v FROM t").rows)
        for k, v in rows.items():
            if k == 100:
                assert v == "uncommitted"
                assert rows.get(0) == "torn"
            elif k == 0:
                assert v in ("v0", "torn")
            elif k == 2:
                assert v in ("v2", "updated")
            else:
                assert v == f"v{k}"
        # The final transaction is atomic: both or neither of its effects.
        assert (100 in rows) == (rows.get(0) == "torn")
        # And the engine still works after recovery.
        db.execute("INSERT INTO t VALUES (999, 'post')")
        assert dict(db.execute("SELECT k, v FROM t").rows)[999] == "post"

    return CrashSweepHarness(
        "h2_sql",
        setup=setup, workload=workload, recover=recover,
        invariant=invariant,
        devices=lambda ctx: [ctx.db.device])


_register(SweepSpec("h2_sql", "flush", _h2_harness,
                    fast_stride=17, fast_max_points=10))


# ----------------------------------------------------------------------
# pjhlib ACID collections (flush-boundary sweep, fsck after recovery)
# ----------------------------------------------------------------------
def _pjhlib_harness() -> CrashSweepHarness:
    from repro.api import Espresso
    from repro.pjhlib import PjhHashmap, PjhLong, PjhTransaction

    def expected_final():
        model = {i: i * 10 for i in range(8)}
        for i in range(0, 8, 2):
            model[i] = i * 100
        del model[3]
        del model[5]
        return model

    def setup():
        tmp = Path(tempfile.mkdtemp(prefix="sweep-pjhlib-"))
        jvm = Espresso(tmp / "heaps", observatory=Observatory(),
                       gc_workers=GC_WORKERS)
        jvm.create_heap("kv", 2 * 1024 * 1024)
        txn = PjhTransaction(jvm)
        table = PjhHashmap(jvm, txn)
        jvm.set_root("table", table.h)
        jvm.set_root("txn_entries", txn._entries)
        jvm.set_root("txn_meta", txn._meta)
        return SimpleNamespace(tmp=tmp, jvm=jvm, txn=txn, table=table,
                               obs=jvm.obs)

    def workload(ctx):
        jvm, txn, table = ctx.jvm, ctx.txn, ctx.table
        for i in range(8):
            table.put(PjhLong(jvm, txn, i), PjhLong(jvm, txn, i * 10))
        for i in range(0, 8, 2):
            table.put(PjhLong(jvm, txn, i), PjhLong(jvm, txn, i * 100))
        table.remove_raw(3)
        table.remove_raw(5)

    def recover(ctx, crashed):
        ctx.jvm.crash()
        jvm = Espresso(ctx.tmp / "heaps", observatory=Observatory(),
                        gc_workers=GC_WORKERS)
        jvm.load_heap("kv")
        txn = PjhTransaction.reattach(jvm, jvm.get_root("txn_entries"),
                                      jvm.get_root("txn_meta"))
        txn.recover()  # roll back any torn multi-slot operation
        table = PjhHashmap(jvm, txn, handle=jvm.get_root("table"))
        return SimpleNamespace(jvm=jvm, table=table,
                               heap=jvm.heaps.heap("kv"), obs=jvm.obs)

    def invariant(rctx, completed):
        jvm, table = rctx.jvm, rctx.table
        seen = {}
        for key_h, value_h in table.items():
            key = jvm.get_field(key_h, "value")
            value = jvm.get_field(value_h, "value")
            seen[key] = value
            allowed = {key * 10}
            if key % 2 == 0:
                allowed.add(key * 100)
            assert value in allowed, (key, value)
        assert table.size() == len(seen)
        if completed:
            assert seen == expected_final()

    def fsck(rctx):
        from repro.tools.fsck import fsck_heap
        return fsck_heap(rctx.heap)

    def teardown(ctx, rctx):
        shutil.rmtree(ctx.tmp, ignore_errors=True)

    return CrashSweepHarness(
        "pjhlib",
        setup=setup, workload=workload, recover=recover,
        invariant=invariant, fsck=fsck, teardown=teardown,
        devices=lambda ctx: [ctx.jvm.heaps.heap("kv").device])


_register(SweepSpec("pjhlib", "flush", _pjhlib_harness,
                    fast_stride=29, fast_max_points=10))


# ----------------------------------------------------------------------
# PCJ NVML undo-log transactions (flush-boundary sweep)
# ----------------------------------------------------------------------
def _pcj_harness() -> CrashSweepHarness:
    from repro.pcj import MemoryPool, PersistentLong

    ROUNDS = 6

    def setup():
        obs = Observatory()
        pool = MemoryPool(256 * 1024, tx_log_words=8192, obs=obs)
        a = PersistentLong(pool, 0)
        b = PersistentLong(pool, 0)
        pool.set_root("a", a.offset)
        pool.set_root("b", b.offset)
        return SimpleNamespace(pool=pool, a=a, b=b, obs=obs)

    def workload(ctx):
        pool = ctx.pool
        # Two counters updated inside one transaction each round: after any
        # crash + recovery they must agree (the undo log's whole promise).
        for i in range(1, ROUNDS + 1):
            pool.tx_begin()
            pool._tx_write(ctx.a.offset, i)
            pool._tx_write(ctx.b.offset, i)
            pool.tx_commit()

    def recover(ctx, crashed):
        image = ctx.pool.crash_image()
        obs = Observatory()
        # MemoryPool.open runs recover(), replaying the undo log
        pool = MemoryPool.open(image, obs=obs)
        return SimpleNamespace(pool=pool, obs=obs)

    def invariant(rctx, completed):
        pool = rctx.pool
        assert not pool.in_transaction
        from repro.pcj import PersistentLong
        a = PersistentLong.from_offset(pool, pool.get_root("a")).long_value()
        b = PersistentLong.from_offset(pool, pool.get_root("b")).long_value()
        assert a == b, (a, b)
        assert 0 <= a <= ROUNDS
        if completed:
            assert a == ROUNDS

    return CrashSweepHarness(
        "pcj_nvml",
        setup=setup, workload=workload, recover=recover,
        invariant=invariant,
        devices=lambda ctx: [ctx.pool.device])


_register(SweepSpec("pcj_nvml", "flush", _pcj_harness,
                    fast_stride=7, fast_max_points=10))


# ----------------------------------------------------------------------
# PJO commit path: dedup + field tracking on (flush-boundary sweep)
# ----------------------------------------------------------------------
def _pjo_harness() -> CrashSweepHarness:
    from repro.api import Espresso
    from repro.jpab.model import BasicPerson
    from repro.pjo import PjoEntityManager

    PEOPLE = 3
    ROUNDS = 3

    def setup():
        tmp = Path(tempfile.mkdtemp(prefix="sweep-pjo-"))
        jvm = Espresso(tmp / "heaps", observatory=Observatory(),
                       gc_workers=GC_WORKERS)
        jvm.create_heap("jpab", 4 * 1024 * 1024)
        em = PjoEntityManager(jvm)  # dedup + field tracking are the defaults
        em.create_schema([BasicPerson])
        return SimpleNamespace(tmp=tmp, jvm=jvm, em=em, obs=jvm.obs)

    def workload(ctx):
        em = ctx.em
        tx = em.get_transaction()
        tx.begin()
        for i in range(1, PEOPLE + 1):
            em.persist(BasicPerson(i, "r0", "Sweep", "r0"))
        tx.commit()
        # Each round rewrites two fields of every person in ONE transaction;
        # first_name and phone must therefore never disagree after recovery.
        for rnd in range(1, ROUNDS + 1):
            em.clear()
            tx.begin()
            for i in range(1, PEOPLE + 1):
                person = em.find(BasicPerson, i)
                person.first_name = f"r{rnd}"
                person.phone = f"r{rnd}"
            tx.commit()

    def recover(ctx, crashed):
        ctx.jvm.crash()
        jvm = Espresso(ctx.tmp / "heaps", observatory=Observatory(),
                        gc_workers=GC_WORKERS)
        jvm.load_heap("jpab")
        em = PjoEntityManager(jvm)  # backend reattaches + recovers the log
        return SimpleNamespace(jvm=jvm, em=em, heap=jvm.heaps.heap("jpab"),
                               obs=jvm.obs)

    def invariant(rctx, completed):
        em = rctx.em
        from repro.jpab.model import BasicPerson
        people = [em.find(BasicPerson, i) for i in range(1, PEOPLE + 1)]
        present = [p for p in people if p is not None]
        # The initial persist of all three is one transaction: all or none.
        assert len(present) in (0, PEOPLE), [p and p.id for p in people]
        stamps = set()
        for person in present:
            # Field-pair atomicity within one entity...
            assert person.first_name == person.phone, (
                person.id, person.first_name, person.phone)
            stamps.add(person.first_name)
        # ...and round atomicity across entities (one tx updates them all).
        assert len(stamps) <= 1, stamps
        if completed:
            assert stamps == {f"r{ROUNDS}"}

    def fsck(rctx):
        from repro.tools.fsck import fsck_heap
        return fsck_heap(rctx.heap)

    def teardown(ctx, rctx):
        shutil.rmtree(ctx.tmp, ignore_errors=True)

    return CrashSweepHarness(
        "pjo_commit",
        setup=setup, workload=workload, recover=recover,
        invariant=invariant, fsck=fsck, teardown=teardown,
        devices=lambda ctx: [ctx.jvm.heaps.heap("jpab").device])


_register(SweepSpec("pjo_commit", "flush", _pjo_harness,
                    fast_stride=37, fast_max_points=8))


# ----------------------------------------------------------------------
# Mixed persist domains: PJH allocation + H2 WAL on separate devices
# ----------------------------------------------------------------------
def _mixed_harness() -> CrashSweepHarness:
    """Epoch coalescing must hold when two domains interleave.

    Each round anchors a new PJH node (flush_reachable + setRoot, its own
    domain epochs) and then commits an H2 insert recording the round (WAL
    payload/counter epochs on a different device).  The flush bomb counts
    clflush calls globally across both devices, so every interleaving of
    the two protocols gets crashed — a flush that leaked across an epoch
    boundary in either domain breaks a per-layer invariant, and the
    cross-layer ordering (row *i* durable implies anchor *i* durable)
    catches coalescing that reorders work between the subsystems.
    """
    from repro.api import Espresso
    from repro.h2.engine import Database
    from repro.runtime.klass import FieldKind, field

    ROUNDS = 5

    def setup():
        tmp = Path(tempfile.mkdtemp(prefix="sweep-mixed-"))
        obs = Observatory()
        jvm = Espresso(tmp / "heaps", observatory=obs, gc_workers=GC_WORKERS)
        node = jvm.define_class("MixNode", [field("v", FieldKind.INT),
                                            field("next", FieldKind.REF)])
        jvm.create_heap("h", 256 * 1024, region_words=128)
        # One observatory spans both domains: the dump shows PJH anchor
        # spans interleaved with WAL commit spans in one timeline.
        db = Database(size_words=1 << 18, clock=jvm.clock, obs=obs)
        return SimpleNamespace(tmp=tmp, jvm=jvm, node=node, db=db, obs=obs)

    def workload(ctx):
        jvm, db = ctx.jvm, ctx.db
        db.execute("CREATE TABLE log (k BIGINT PRIMARY KEY, v VARCHAR)")
        keep = None
        for i in range(ROUNDS):
            n = jvm.pnew(ctx.node)
            jvm.set_field(n, "v", i)
            if keep is not None:
                jvm.set_field(n, "next", keep)
            keep = n
            jvm.flush_reachable(keep)
            jvm.set_root("keep", keep)
            db.execute("INSERT INTO log VALUES (?, ?)", (i, f"v{i}"))
        # A multi-statement transaction at the end: atomic or absent.
        db.execute("BEGIN")
        db.execute("UPDATE log SET v = 'x0' WHERE k = 0")
        db.execute("INSERT INTO log VALUES (100, 'tail')")
        db.execute("COMMIT")

    def recover(ctx, crashed):
        ctx.jvm.crash()
        obs = Observatory()
        # Reuse the shared clock so the recovered JVM and DB keep one
        # coherent timeline (db.crash() rebinds obs to the same clock).
        jvm2 = Espresso(ctx.tmp / "heaps", clock=ctx.db.clock,
                        observatory=obs, gc_workers=GC_WORKERS)
        jvm2.load_heap("h")
        return SimpleNamespace(jvm=jvm2, db=ctx.db.crash(obs=obs),
                               heap=jvm2.heaps.heap("h"), obs=obs)

    def invariant(rctx, completed):
        jvm, db = rctx.jvm, rctx.db
        # PJH side: the rooted chain is a contiguous anchored suffix.
        head = jvm.get_root("keep")
        chain = []
        cursor = head
        while cursor is not None:
            chain.append(jvm.get_field(cursor, "v"))
            cursor = jvm.get_field(cursor, "next")
        if chain:
            assert chain == list(range(chain[0], -1, -1)), chain
        # H2 side: committed inserts form a prefix; the tx is atomic.
        rows = {}
        if db.catalog.exists("log"):
            rows = dict(db.execute("SELECT k, v FROM log").rows)
        keys = sorted(k for k in rows if k < 100)
        assert keys == list(range(len(keys))), keys
        assert (100 in rows) == (rows.get(0) == "x0")
        for k in keys[1:]:
            assert rows[k] == f"v{k}"
        if keys:
            assert rows[0] in ("v0", "x0")
            # Cross-domain ordering: insert i commits only after anchor i
            # was published, so a durable row implies a durable anchor.
            assert chain and chain[0] >= keys[-1], (chain, keys)
        if completed:
            assert chain and chain[0] == ROUNDS - 1, chain
            assert len(keys) == ROUNDS and 100 in rows, rows

    def fsck(rctx):
        from repro.tools.fsck import fsck_heap
        return fsck_heap(rctx.heap)

    def teardown(ctx, rctx):
        shutil.rmtree(ctx.tmp, ignore_errors=True)

    return CrashSweepHarness(
        "mixed_domains",
        setup=setup, workload=workload, recover=recover,
        invariant=invariant, fsck=fsck, teardown=teardown,
        devices=lambda ctx: [ctx.jvm.heaps.heap("h").device,
                             ctx.db.device])


_register(SweepSpec("mixed_domains", "flush", _mixed_harness,
                    fast_stride=23, fast_max_points=10))


# ----------------------------------------------------------------------
# Crash-transparent execution (failpoint sweep over the resume protocol)
# ----------------------------------------------------------------------
def _resume_harness() -> CrashSweepHarness:
    """Crash a resumable task at every ``resume.*`` protocol point.

    The workload is a two-task program (``build`` pushes a persistent
    linked list one node per step; each iteration also ``call``s a child
    ``weigh`` frame) so every sweep walks pushes, checkpoints, child
    enters, pops and the finalize tail.  The invariant is the tentpole
    promise itself: after crash + restart + re-run, the heap's durable
    image is SHA-256-identical to the image an *uncrashed* run produces,
    and the task yields the same result.  The golden hash is computed
    once per harness from a crash-free run with identical session setup.
    """
    import hashlib

    from repro.api import Espresso, EspressoConfig
    from repro.runtime.klass import FieldKind, field

    N = 5
    EXPECTED = sum(i * i for i in range(N))

    def _define(jvm):
        jvm.define_class("ResumeNode", [field("v", FieldKind.INT),
                                        field("next", FieldKind.REF)])

    def _mk(s, i, prev):
        node = s.pnew("ResumeNode")
        s.set_field(node, "v", i)
        if prev is not None:
            s.set_field(node, "next", prev)
        s.flush_reachable(node)
        return node

    def _register_tasks(jvm):
        @jvm.register_task("build")
        def build(task, s, n):
            prev = None
            total = 0
            for i in range(n):
                prev = task.step(_mk, s, i, prev)
                total += task.call("weigh", i)
            s.set_root("list", prev)
            return total

        @jvm.register_task("weigh")
        def weigh(task, s, i):
            return task.step(lambda: i * i)

    def _session(tmp):
        cfg = EspressoConfig(resumable=True, observatory=Observatory(),
                             gc_workers=GC_WORKERS)
        jvm = Espresso(tmp / "heaps", config=cfg)
        _define(jvm)
        _register_tasks(jvm)
        jvm.create_heap("h", 512 * 1024)
        return jvm

    def _image_hash(jvm):
        device = jvm.heaps.heap("h").device
        return hashlib.sha256(device.durable_image().tobytes()).hexdigest()

    golden = {}

    def _golden_hash():
        if "hash" not in golden:
            tmp = Path(tempfile.mkdtemp(prefix="sweep-resume-golden-"))
            try:
                jvm = jvm0 = _session(tmp)
                assert jvm.resumable_task("build").run(N) == EXPECTED
                golden["hash"] = _image_hash(jvm)
            finally:
                jvm0.shutdown()
                shutil.rmtree(tmp, ignore_errors=True)
        return golden["hash"]

    def setup():
        tmp = Path(tempfile.mkdtemp(prefix="sweep-resume-"))
        jvm = _session(tmp)
        return SimpleNamespace(tmp=tmp, jvm=jvm, obs=jvm.obs)

    def workload(ctx):
        ctx.jvm.resumable_task("build").run(N)

    def recover(ctx, crashed):
        # restart(crash=True): durable image saved, fresh VM, same config
        # (the task registry rides along by reference) — a restarted JVM
        # must redefine its classes, exactly like a real one reloading
        # them.
        jvm2 = ctx.jvm.restart(crash=True)
        _define(jvm2)
        jvm2.load_heap("h")
        result = jvm2.resumable_task("build").run(N)
        return SimpleNamespace(jvm=jvm2, result=result,
                               heap=jvm2.heaps.heap("h"), obs=jvm2.obs)

    def invariant(rctx, completed):
        assert rctx.result == EXPECTED, rctx.result
        resumed = _image_hash(rctx.jvm)
        assert resumed == _golden_hash(), (
            "resumed durable image diverged from the uncrashed run's")

    def fsck(rctx):
        from repro.tools.fsck import fsck_heap
        report = fsck_heap(rctx.heap)
        assert report.frames_clean, report.frame_errors
        return report

    def teardown(ctx, rctx):
        shutil.rmtree(ctx.tmp, ignore_errors=True)

    return CrashSweepHarness(
        "resume_task",
        setup=setup, workload=workload, recover=recover,
        invariant=invariant, fsck=fsck, teardown=teardown,
        devices=lambda ctx: [ctx.jvm.heaps.heap("h").device],
        registry=lambda ctx: ctx.jvm.vm.failpoints)


_register(SweepSpec("resume_task", "failpoint", _resume_harness,
                    fast_stride=11, fast_max_points=10))


# ----------------------------------------------------------------------
# Fleet fail-over: one shard crashed mid-traffic, siblings keep serving
# ----------------------------------------------------------------------
def _fleet_harness() -> CrashSweepHarness:
    """Flush-boundary sweep of a 3-shard fleet, bombing ONE shard.

    Only the victim shard's device is instrumented, so every injection
    point models a single-shard power failure under live multi-tenant
    traffic.  Recovery is the router's own fail-over path: assert the
    survivors serve (reads *and* writes) while the victim fails fast
    with :class:`~repro.errors.ShardDownError`, then bring the victim
    back on the recovery gang.  Afterwards: committed KV state is
    consistent on every shard, no session silently migrated, every
    shard heap and the directory heap fsck clean, and the durable shard
    directory is byte-identical to an uncrashed fleet's — fail-over
    writes zero directory flushes by design.
    """
    import hashlib
    import zlib

    from repro.errors import ShardDownError
    from repro.fleet.directory import DIRECTORY_HEAP, shard_heap_name
    from repro.fleet.router import FleetConfig, FleetRouter

    SHARDS = 3
    VICTIM = 0
    ROUNDS = 3

    def _config():
        return FleetConfig(shards=SHARDS, shard_size_bytes=256 * 1024,
                           max_in_flight=32, gc_workers=GC_WORKERS)

    def _sessions():
        """Two session ids per shard, in deterministic order."""
        per_shard = {i: [] for i in range(SHARDS)}
        i = 0
        while any(len(v) < 2 for v in per_shard.values()):
            sid = f"tenant-{i}"
            home = zlib.crc32(sid.encode()) % SHARDS
            if len(per_shard[home]) < 2:
                per_shard[home].append(sid)
            i += 1
        return per_shard

    def _directory_image_hash(fleet):
        heap = fleet.directory_jvm.heaps.heap(DIRECTORY_HEAP)
        return hashlib.sha256(heap.device.durable_image().tobytes()) \
            .hexdigest()

    golden = {}

    def _golden_hash():
        """Directory image of an uncrashed fleet with identical setup."""
        if "hash" not in golden:
            tmp = Path(tempfile.mkdtemp(prefix="sweep-fleet-golden-"))
            try:
                fleet = FleetRouter.create(tmp / "fleet", config=_config())
                golden["hash"] = _directory_image_hash(fleet)
            finally:
                shutil.rmtree(tmp, ignore_errors=True)
        return golden["hash"]

    def setup():
        tmp = Path(tempfile.mkdtemp(prefix="sweep-fleet-"))
        fleet = FleetRouter.create(tmp / "fleet", config=_config())
        return SimpleNamespace(tmp=tmp, fleet=fleet, sessions=_sessions(),
                               committed={}, inflight={},
                               obs=fleet.shards[VICTIM].jvm.obs)

    def workload(ctx):
        fleet = ctx.fleet
        for rnd in range(ROUNDS):
            ctx.inflight = {}
            for sids in ctx.sessions.values():
                for sid in sids:
                    value = f"{sid}.r{rnd}"
                    fleet.submit(sid, "put", "state", value)
                    ctx.inflight[sid] = value
            fleet.drain()   # the bomb fires here, mid-drain on the victim
            ctx.committed.update(ctx.inflight)
            ctx.inflight = {}

    def recover(ctx, crashed):
        fleet = ctx.fleet
        fleet.crash_shard(VICTIM)
        # Survivors keep serving while the victim is down: reads of
        # committed state and fresh writes both succeed...
        for shard_index in range(SHARDS):
            if shard_index == VICTIM:
                continue
            sid = ctx.sessions[shard_index][0]
            expected = ctx.committed.get(sid) or ctx.inflight.get(sid)
            got = fleet.get(sid, "state")
            if ctx.committed.get(sid) is not None and \
                    sid not in ctx.inflight:
                assert got == expected, (sid, got, expected)
            fleet.put(sid, "probe", "alive")
            assert fleet.get(sid, "probe") == "alive"
        # ...and the victim's traffic fails fast instead of landing on a
        # sibling that does not hold its data.
        victim_sid = ctx.sessions[VICTIM][0]
        try:
            fleet.submit(victim_sid, "get", "state")
            raise AssertionError("down shard accepted a request")
        except ShardDownError as exc:
            assert exc.shard == VICTIM
        placements_before = dict(fleet.placements)
        fleet.recover_shard(VICTIM)
        return SimpleNamespace(fleet=fleet,
                               sessions=ctx.sessions,
                               committed=dict(ctx.committed),
                               inflight=dict(ctx.inflight),
                               placements_before=placements_before,
                               obs=fleet.shards[VICTIM].jvm.obs)

    def invariant(rctx, completed):
        fleet = rctx.fleet
        # Committed KV state is intact on every shard; the crashed
        # round's writes are atomic per key: old value, new value, or
        # (first round) absent — never garbage.
        for sids in rctx.sessions.values():
            for sid in sids:
                got = fleet.get(sid, "state")
                allowed = set()
                if sid in rctx.inflight:
                    allowed.add(rctx.inflight[sid])
                    allowed.add(rctx.committed.get(sid))
                else:
                    allowed.add(rctx.committed.get(sid))
                assert got in allowed, (sid, got, allowed)
        if completed:
            for sid, value in rctx.committed.items():
                assert fleet.get(sid, "state") == value
        # Routing correctness: no session migrated across the fail-over.
        for sid, home in rctx.placements_before.items():
            assert fleet.route(sid) == home, (sid, home)
        # Zero directory writes during traffic, crash and fail-over: the
        # durable directory image matches an uncrashed fleet's, byte for
        # byte.
        assert _directory_image_hash(fleet) == _golden_hash(), (
            "fleet directory image diverged from the uncrashed run's")

    def fsck(rctx):
        from repro.tools.fsck import fsck_heap
        fleet = rctx.fleet
        report = fsck_heap(
            fleet.directory_jvm.heaps.heap(DIRECTORY_HEAP))
        assert report.clean, ("directory", report.errors)
        for shard in fleet.shards:
            report = fsck_heap(
                shard.jvm.heaps.heap(shard_heap_name(shard.index)))
            assert report.clean, (shard.index, report.errors)
        return report  # the last shard's; all were asserted above

    def teardown(ctx, rctx):
        shutil.rmtree(ctx.tmp, ignore_errors=True)

    def victim_device(ctx):
        heap = ctx.fleet.shards[VICTIM].jvm.heaps.heap(
            shard_heap_name(VICTIM))
        return [heap.device]

    return CrashSweepHarness(
        "fleet_failover",
        setup=setup, workload=workload, recover=recover,
        invariant=invariant, fsck=fsck, teardown=teardown,
        devices=victim_device)


_register(SweepSpec("fleet_failover", "flush", _fleet_harness,
                    fast_stride=19, fast_max_points=8))


# ----------------------------------------------------------------------
# Concurrent mutator gang on the lock-free durable map (flush sweep):
# crashing after the N-th clflush lands at an arbitrary point of the
# seeded interleaving, so every boundary is a different cut through the
# contended multi-mutator schedule.
# ----------------------------------------------------------------------
def _concurrent_kv_harness() -> CrashSweepHarness:
    from repro.api import Espresso
    from repro.workloads.concurrent_kv import ConcurrentKvWorkload

    MUTATORS = 3

    def setup():
        tmp = Path(tempfile.mkdtemp(prefix="sweep-ckv-"))
        jvm = Espresso(tmp / "heaps", observatory=Observatory(),
                       gc_workers=GC_WORKERS, mutators=MUTATORS)
        jvm.create_heap("kv", 2 * 1024 * 1024)
        workload = ConcurrentKvWorkload(jvm, mutators=MUTATORS,
                                        ops_per_mutator=5, key_space=3,
                                        seed=7, buckets=4)
        return SimpleNamespace(tmp=tmp, jvm=jvm, workload=workload,
                               obs=jvm.obs)

    def workload(ctx):
        ctx.workload.run()

    def recover(ctx, crashed):
        ctx.jvm.crash()
        jvm = Espresso(ctx.tmp / "heaps", observatory=Observatory(),
                       gc_workers=GC_WORKERS, mutators=MUTATORS)
        jvm.load_heap("kv")
        return SimpleNamespace(jvm=jvm, workload=ctx.workload,
                               heap=jvm.heaps.heap("kv"), obs=jvm.obs)

    def invariant(rctx, completed):
        problems = rctx.workload.check_after_recovery(rctx.jvm, completed)
        assert not problems, problems

    def fsck(rctx):
        from repro.tools.fsck import fsck_heap
        return fsck_heap(rctx.heap)

    def teardown(ctx, rctx):
        shutil.rmtree(ctx.tmp, ignore_errors=True)

    return CrashSweepHarness(
        "concurrent_kv",
        setup=setup, workload=workload, recover=recover,
        invariant=invariant, fsck=fsck, teardown=teardown,
        devices=lambda ctx: [ctx.jvm.heaps.heap("kv").device])


_register(SweepSpec("concurrent_kv", "flush", _concurrent_kv_harness,
                    fast_stride=23, fast_max_points=8))
