"""External name manager for persistent heap instances.

Paper §3.3: *"We have implemented an external name manager responsible for
the mapping between the real data of PJH instances and their names."*

Here the manager maps heap names to durable-image files on disk (standing in
for NVDIMM-backed DAX files).  ``createHeap`` registers a name; when a
"JVM" saves its image, the NVM device's durable array is written out; a later
process (or a reloaded VM in the same process) finds the image by name.

A manifest JSON records per-heap attributes: size in words and the address
hint at which the heap was mapped.  The address hint also lives *inside* the
heap's metadata area — the manifest copy merely lets the manager size the
device before the metadata is readable.

Several live sessions may share one heap directory (the fleet mounts K
shard sessions over a common root), so the manifest is re-read before
every query: a registration made through one session's manager is visible
to managers constructed earlier, and duplicate-name races resolve to
:class:`~repro.errors.HeapExistsError` rather than a silent overwrite.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.errors import HeapExistsError, HeapNotFoundError

_SAFE = re.compile(r"[^A-Za-z0-9_.-]")


def _slug(name: str) -> str:
    return _SAFE.sub("_", name)


class NameManager:
    """Maps heap names to durable images stored under *root*."""

    MANIFEST = "manifest.json"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.root / self.MANIFEST
        self._manifest: Dict[str, Dict] = {}
        self._refresh()

    # -- manifest ------------------------------------------------------------
    def _refresh(self) -> None:
        """Adopt on-disk registrations made by other live sessions.

        Entries this manager already holds win on conflict (our address
        hints may be newer than what was last written out), so a refresh
        never un-registers or clobbers local state — it only learns names.
        """
        if not self._manifest_path.exists():
            return
        try:
            on_disk = json.loads(self._manifest_path.read_text())
        except (OSError, ValueError):
            return  # a concurrent writer mid-rewrite: keep our view
        for name, attrs in on_disk.items():
            self._manifest.setdefault(name, attrs)

    def _save_manifest(self, drop: str | None = None) -> None:
        self._refresh()
        if drop is not None:
            self._manifest.pop(drop, None)  # a refresh must not resurrect it
        self._manifest_path.write_text(json.dumps(self._manifest, indent=2))

    def _image_path(self, name: str) -> Path:
        return self.root / f"{_slug(name)}.heap.npy"

    # -- registry API ---------------------------------------------------------
    def exists(self, name: str) -> bool:
        if name not in self._manifest:
            self._refresh()
        return name in self._manifest

    def register(self, name: str, size_words: int, address_hint: int) -> Path:
        if self.exists(name):
            raise HeapExistsError(f"heap {name!r} already exists")
        self._manifest[name] = {
            "size_words": int(size_words),
            "address_hint": int(address_hint),
            "image": self._image_path(name).name,
        }
        self._save_manifest()
        return self._image_path(name)

    def attributes(self, name: str) -> Dict:
        if name not in self._manifest:
            self._refresh()
        try:
            return dict(self._manifest[name])
        except KeyError:
            raise HeapNotFoundError(f"no heap named {name!r}") from None

    def update_address_hint(self, name: str, address_hint: int) -> None:
        self.attributes(name)  # raises if missing
        self._manifest[name]["address_hint"] = int(address_hint)
        self._save_manifest()

    def remove(self, name: str) -> None:
        self.attributes(name)  # raises if missing
        path = self._image_path(name)
        if path.exists():
            path.unlink()
        del self._manifest[name]
        self._save_manifest(drop=name)

    def names(self) -> List[str]:
        self._refresh()
        return sorted(self._manifest)

    # -- image I/O ---------------------------------------------------------------
    def save_image(self, name: str, image: np.ndarray) -> None:
        self.attributes(name)  # raises if missing
        np.save(self._image_path(name), image)

    def load_image(self, name: str) -> np.ndarray:
        attrs = self.attributes(name)
        path = self.root / attrs["image"]
        if not path.exists():
            # Registered but never saved: an all-zero image of the right size.
            return np.zeros(attrs["size_words"], dtype=np.int64)
        return np.load(path)
