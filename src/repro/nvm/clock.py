"""Deterministic simulated-time clock with category attribution.

Every component of the reproduction charges simulated nanoseconds here
instead of measuring wall-clock time.  This makes benchmark output
deterministic and — crucially for the paper's breakdown figures (Fig. 4,
Fig. 6, Fig. 17) — lets each charge be attributed to the category currently
on top of a scope stack ("transformation", "metadata", "gc", ...).

Example::

    clock = Clock()
    with clock.scope("transformation"):
        clock.charge(120.0)            # attributed to "transformation"
    clock.charge(10.0)                 # attributed to "other"
    clock.breakdown()                  # {"transformation": 120.0, "other": 10.0}
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List

DEFAULT_CATEGORY = "other"


class ChargeMeter:
    """Accumulator for charges diverted away from global time.

    A simulated GC worker runs its share of the work under
    :meth:`Clock.divert`; the charges land here instead of advancing
    ``now_ns``, and the scheduler later advances the clock once by the
    *maximum* over the workers — pause time is the slowest worker, not
    the sum (see :mod:`repro.runtime.workers`).
    """

    __slots__ = ("ns",)

    def __init__(self) -> None:
        self.ns: float = 0.0

    def take(self) -> float:
        """Return the accumulated nanoseconds and reset to zero."""
        ns, self.ns = self.ns, 0.0
        return ns


class Clock:
    """Accumulates simulated nanoseconds, attributed to nested scopes."""

    def __init__(self) -> None:
        self._now_ns: float = 0.0
        self._by_category: Dict[str, float] = {}
        self._stack: List[str] = []
        self._meters: List[ChargeMeter] = []

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def charge(self, ns: float, category: str | None = None) -> None:
        """Advance time by *ns*, attributing it to *category*.

        When *category* is omitted the innermost active scope is used, or
        ``"other"`` if no scope is active.  While a :meth:`divert` is
        active the charge lands on the innermost meter instead and global
        time does not move.
        """
        if ns < 0:
            raise ValueError(f"negative charge: {ns}")
        if self._meters:
            self._meters[-1].ns += ns
            return
        self._now_ns += ns
        label = category if category is not None else self.current_category
        self._by_category[label] = self._by_category.get(label, 0.0) + ns

    @contextmanager
    def divert(self, meter: ChargeMeter) -> Iterator[ChargeMeter]:
        """Divert every charge inside the block into *meter*.

        Global time (``now_ns``) and the category breakdown are untouched
        until the caller re-charges the metered total — typically
        ``clock.charge(max(worker_meters))`` after a simulated parallel
        phase.  Diversions nest; the innermost meter wins.
        """
        self._meters.append(meter)
        try:
            yield meter
        finally:
            self._meters.pop()

    @property
    def diverted(self) -> bool:
        """True while a :meth:`divert` block is active."""
        return bool(self._meters)

    def charge_ops(self, count: float, ns_per_op: float) -> None:
        """Charge *count* CPU operations at *ns_per_op* each."""
        self.charge(count * ns_per_op)

    # ------------------------------------------------------------------
    # Scopes
    # ------------------------------------------------------------------
    @property
    def current_category(self) -> str:
        return self._stack[-1] if self._stack else DEFAULT_CATEGORY

    @contextmanager
    def scope(self, category: str) -> Iterator[None]:
        """Attribute charges inside the ``with`` block to *category*."""
        self._stack.append(category)
        try:
            yield
        finally:
            self._stack.pop()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def now_ns(self) -> float:
        """Total simulated nanoseconds elapsed."""
        return self._now_ns

    def elapsed_since(self, mark_ns: float) -> float:
        return self._now_ns - mark_ns

    def breakdown(self) -> Dict[str, float]:
        """Copy of the per-category totals."""
        return dict(self._by_category)

    def breakdown_since(self, snapshot: Dict[str, float]) -> Dict[str, float]:
        """Per-category deltas relative to an earlier :meth:`breakdown`."""
        result: Dict[str, float] = {}
        for category, total in self._by_category.items():
            delta = total - snapshot.get(category, 0.0)
            if delta > 0:
                result[category] = delta
        return result

    def reset(self) -> None:
        self._now_ns = 0.0
        self._by_category.clear()
        self._stack.clear()
        self._meters.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now_ns:.0f}ns, scopes={self._stack!r})"
