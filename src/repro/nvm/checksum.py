"""CRC32 over word arrays — the integrity primitive for durable metadata.

Every checksummed structure in the repo (heap metadata area, name-table
entries, WAL records) uses the same convention: CRC32 of the raw little-endian
int64 bytes of the covered words, masked to an unsigned 32-bit value so it
fits comfortably in one positive 64-bit word.
"""

from __future__ import annotations

import zlib
from typing import Iterable

import numpy as np


def crc32_words(words: "np.ndarray | Iterable[int]") -> int:
    """CRC32 of *words* interpreted as little-endian int64s (always >= 0)."""
    arr = np.asarray(list(words) if not isinstance(words, np.ndarray) else words,
                     dtype=np.int64)
    return zlib.crc32(arr.astype("<i8").tobytes()) & 0xFFFFFFFF
