"""Simulated NVM substrate: devices, latency model, clock, crash injection.

This package stands in for the hardware the paper ran on (a Viking NVDIMM
behind volatile CPU caches) and for the ``clflush``/``sfence`` instructions
its crash-consistency protocols rely on.  See DESIGN.md §2 for the
substitution argument.
"""

from repro.nvm.checksum import crc32_words
from repro.nvm.clock import Clock
from repro.nvm.device import (
    LINE_WORDS,
    WORD_BYTES,
    AddressSpace,
    DeviceStats,
    DramDevice,
    FaultMode,
    Mapping,
    MemoryDevice,
    NvmDevice,
)
from repro.nvm.failpoints import DOCUMENTED_SITES, FailpointRegistry
from repro.nvm.latency import DEFAULT_LATENCY, LatencyConfig
from repro.nvm.namespace import NameManager
from repro.nvm.persist import OrderingViolation, PersistDomain
from repro.nvm.publish import (
    durable_metadata,
    publish_point,
    registered_durable_metadata,
    registered_publish_points,
)

__all__ = [
    "AddressSpace",
    "Clock",
    "DEFAULT_LATENCY",
    "DOCUMENTED_SITES",
    "DeviceStats",
    "DramDevice",
    "FailpointRegistry",
    "FaultMode",
    "LatencyConfig",
    "LINE_WORDS",
    "Mapping",
    "MemoryDevice",
    "NameManager",
    "NvmDevice",
    "OrderingViolation",
    "PersistDomain",
    "WORD_BYTES",
    "crc32_words",
    "durable_metadata",
    "publish_point",
    "registered_durable_metadata",
    "registered_publish_points",
]
