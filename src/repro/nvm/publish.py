"""Publish-point and durable-metadata annotations for the static verifier.

Espresso's crash-consistency story rests on the *persist-then-publish*
discipline (NVTraverse / Friedman et al.: persist at the destination
before anything can reach it): a payload's cache lines are flushed and
fenced strictly before the single store that makes the payload reachable
after a crash.  The dynamic hazard passes (ESP201-205) prove this per
*trace*; the static pass (:mod:`repro.analysis.static_order`, ESP5xx)
proves it per *path* — but to do that it has to know which calls in the
source ARE publishes.

This module is that declaration surface:

* :func:`publish_point` marks a function whose *call* is a publication:
  after it returns, a crash-recoverable path can reach whatever the
  arguments referenced.  The decorator is a runtime no-op (it only tags
  the function and records it in :data:`PUBLISH_REGISTRY`); the static
  analyzer recognises it syntactically, so annotated subsystems incur
  zero overhead and no import-order coupling.

* :func:`durable_metadata` marks a function that mutates durable
  structures *in place* (splicing a persistent hashmap chain, rewriting
  a PCJ header word).  In-place durable mutation is only crash-safe
  under undo-log/transaction coverage, so the ESP502 rule requires every
  store inside such a function to be dominated by an undo-log call
  (``log_slot`` / ``tx_add_range`` / an active ``tx_begin``) or an
  enclosing transaction ``with`` block.

The registries are immutable append-at-import tables keyed by qualified
name; :func:`registered_publish_points` exposes them for documentation
and tests.  They are *advisory* at runtime — enforcement lives entirely
in the static pass.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, TypeVar

F = TypeVar("F", bound=Callable)

#: qualname -> label for every imported @publish_point function.
PUBLISH_REGISTRY: Dict[str, str] = {}
#: qualname -> label for every imported @durable_metadata function.
METADATA_REGISTRY: Dict[str, str] = {}

#: Function attribute carrying the publish label (introspection aid).
PUBLISH_ATTR = "__publish_point__"
#: Function attribute carrying the durable-metadata label.
METADATA_ATTR = "__durable_metadata__"


def publish_point(label: str) -> Callable[[F], F]:
    """Declare *label* as the publication a call to this function performs.

    The decorated function is returned unchanged apart from a
    ``__publish_point__`` attribute.  Static semantics (ESP501): every
    in-scope path that reaches a call to this function must first flush
    and fence the payload being published; the function's *own* body is
    exempt — it IS the publish, so the obligation sits with its callers.
    """

    def mark(func: F) -> F:
        setattr(func, PUBLISH_ATTR, label)
        PUBLISH_REGISTRY[func.__qualname__] = label
        return func

    return mark


def durable_metadata(label: str) -> Callable[[F], F]:
    """Declare that this function mutates durable metadata in place.

    Static semantics (ESP502): every store inside the decorated function
    must be covered by an undo log — dominated by a ``log_slot`` /
    ``tx_add_range`` / ``tx_begin`` call or nested in a transaction
    ``with`` block — so a crash mid-mutation can always roll back.
    """

    def mark(func: F) -> F:
        setattr(func, METADATA_ATTR, label)
        METADATA_REGISTRY[func.__qualname__] = label
        return func

    return mark


def registered_publish_points() -> Tuple[Tuple[str, str], ...]:
    """Sorted (qualname, label) pairs of every imported publish point."""
    return tuple(sorted(PUBLISH_REGISTRY.items()))


def registered_durable_metadata() -> Tuple[Tuple[str, str], ...]:
    """Sorted (qualname, label) pairs of every durable-metadata function."""
    return tuple(sorted(METADATA_REGISTRY.items()))
