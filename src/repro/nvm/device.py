"""Simulated memory devices and the address space that maps them.

The unit of addressing is one 64-bit *word*; a cache line is eight words
(64 bytes), matching the granularity of ``clflush``.  Two device kinds exist:

* :class:`DramDevice` — volatile; contents vanish on :meth:`crash`.
* :class:`NvmDevice` — keeps a *live* array (what the CPU sees through its
  caches) and a *durable* array (what the NVDIMM actually holds).  A store
  only reaches the durable array when its cache line is explicitly flushed
  with :meth:`clflush`.  :meth:`crash` discards every unflushed line — the
  adversarial model the paper's crash-consistency protocols are designed
  against.

Every access charges simulated nanoseconds to a shared
:class:`~repro.nvm.clock.Clock` according to a
:class:`~repro.nvm.latency.LatencyConfig`, so benchmark figures come out
deterministic.

An :class:`AddressSpace` maps devices at chosen base addresses and routes
reads/writes, mirroring ``mmap`` of a PJH instance at its *address hint*
(paper §3.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import IllegalArgumentException
from repro.nvm.clock import Clock
from repro.nvm.latency import DEFAULT_LATENCY, LatencyConfig

WORD_BYTES = 8
LINE_WORDS = 8  # one clflush covers 8 words = 64 bytes


class FaultMode:
    """Crash-time fault models for :class:`NvmDevice`.

    * ``ATOMIC`` — the historical behavior: every unflushed line is dropped
      whole; every flushed line survives whole.
    * ``TORN`` — an unflushed (dirty) line may *tear*: a random word-aligned
      subset (often a prefix, matching partial write-back) of its live words
      reaches media, the rest revert to the old durable contents.
    * ``REORDERED`` — a line that was flushed but not yet fenced may fail to
      persist: the flush is undone back to the pre-flush durable snapshot.
      Dirty lines are still dropped whole.  Only a fence makes the set of
      prior flushes final, which is exactly the ordering contract
      crash-consistent code must rely on.

    All randomness comes from a ``random.Random`` seeded via
    :meth:`NvmDevice.set_fault_mode`, so a sweep replays deterministically.
    """

    ATOMIC = "atomic"
    TORN = "torn"
    REORDERED = "reordered"
    ALL = (ATOMIC, TORN, REORDERED)

_U64 = 1 << 64
_I64_MAX = (1 << 63) - 1


def _wrap_i64(value: int) -> int:
    """Reinterpret an arbitrary int as a signed 64-bit word (raw bits)."""
    value &= _U64 - 1
    return value - _U64 if value > _I64_MAX else value


@dataclass
class DeviceStats:
    """Operation counters for one device.

    ``flushes_deduped`` counts flush requests a
    :class:`~repro.nvm.persist.PersistDomain` elided because the line was
    already pending in the open fence epoch; ``epochs`` counts committed
    (non-empty) fence epochs.  ``flushes_elided``/``fences_elided`` count
    operations a certified domain skipped because the line was already
    durably identical (see :mod:`repro.analysis.elision`) — they never
    reach the device, so they appear in no other counter.
    """

    reads: int = 0
    writes: int = 0
    flushes: int = 0
    fences: int = 0
    flushes_deduped: int = 0
    epochs: int = 0
    flushes_elided: int = 0
    fences_elided: int = 0

    def snapshot(self) -> "DeviceStats":
        return DeviceStats(self.reads, self.writes, self.flushes, self.fences,
                           self.flushes_deduped, self.epochs,
                           self.flushes_elided, self.fences_elided)

    def delta(self, since: "DeviceStats") -> "DeviceStats":
        """Counters accumulated since an earlier :meth:`snapshot`."""
        return DeviceStats(
            self.reads - since.reads,
            self.writes - since.writes,
            self.flushes - since.flushes,
            self.fences - since.fences,
            self.flushes_deduped - since.flushes_deduped,
            self.epochs - since.epochs,
            self.flushes_elided - since.flushes_elided,
            self.fences_elided - since.fences_elided,
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "flushes": self.flushes,
            "fences": self.fences,
            "flushes_deduped": self.flushes_deduped,
            "epochs": self.epochs,
            "flushes_elided": self.flushes_elided,
            "fences_elided": self.fences_elided,
        }


class MemoryDevice:
    """Common behaviour for simulated word-addressable memory."""

    volatile = True

    # CPU cache model: this many 64-byte lines of the device can be "hot".
    # Repeated touches of hot lines (headers, chased pointers) cost
    # cache_hit_ns instead of full media latency — without this, interpreted
    # header re-reads would dominate every workload in a way no real CPU
    # exhibits.  LRU, deterministic, cleared on crash.
    CACHE_LINES = 2048

    def __init__(self, size_words: int, clock: Clock,
                 latency: LatencyConfig = DEFAULT_LATENCY,
                 name: str = "mem") -> None:
        if size_words <= 0:
            raise IllegalArgumentException(f"device size must be > 0, got {size_words}")
        self.name = name
        self.size_words = int(size_words)
        self.clock = clock
        self.latency = latency
        self.stats = DeviceStats()
        self._words = np.zeros(self.size_words, dtype=np.int64)
        self._hot: Dict[int, None] = {}  # insertion-ordered LRU of lines

    # -- latency hooks (overridden per device kind) --------------------
    def _read_cost(self) -> float:
        return self.latency.dram_read_ns

    def _write_cost(self) -> float:
        return self.latency.dram_write_ns

    # -- cache model ------------------------------------------------------
    def _touch(self, line: int) -> bool:
        """Mark *line* hot; True when it already was (a cache hit)."""
        hot = self._hot
        if line in hot:
            del hot[line]  # refresh recency
            hot[line] = None
            return True
        hot[line] = None
        if len(hot) > self.CACHE_LINES:
            del hot[next(iter(hot))]
        return False

    def _charge_read(self, offset: int, count: int) -> None:
        first = offset // LINE_WORDS
        last = (offset + count - 1) // LINE_WORDS
        cost = 0.0
        hit_ns = self.latency.cache_hit_ns
        miss_ns = self._read_cost()
        for line in range(first, last + 1):
            cost += hit_ns if self._touch(line) else miss_ns
        self.clock.charge(cost)

    def _charge_write(self, offset: int, count: int) -> None:
        # Stores go through the write-back cache: charged per word (store
        # bandwidth), and the touched lines become hot.
        first = offset // LINE_WORDS
        last = (offset + count - 1) // LINE_WORDS
        for line in range(first, last + 1):
            self._touch(line)
        self.clock.charge(self._write_cost() * count)

    # -- word access ----------------------------------------------------
    def _check(self, offset: int, count: int = 1) -> None:
        if offset < 0 or offset + count > self.size_words:
            raise IllegalArgumentException(
                f"{self.name}: access [{offset}, {offset + count}) outside "
                f"[0, {self.size_words})")

    def read(self, offset: int) -> int:
        self._check(offset)
        self.stats.reads += 1
        self._charge_read(offset, 1)
        return int(self._words[offset])

    def write(self, offset: int, value: int) -> None:
        self._check(offset)
        self.stats.writes += 1
        self._charge_write(offset, 1)
        self._words[offset] = _wrap_i64(value)

    def read_block(self, offset: int, count: int) -> np.ndarray:
        """Read *count* words; charged per word, copied in one step."""
        self._check(offset, count)
        self.stats.reads += count
        self._charge_read(offset, count)
        return self._words[offset:offset + count].copy()

    def write_block(self, offset: int, values: np.ndarray) -> None:
        count = len(values)
        self._check(offset, count)
        self.stats.writes += count
        self._charge_write(offset, count)
        self._words[offset:offset + count] = values

    def fill(self, offset: int, count: int, value: int = 0) -> None:
        self._check(offset, count)
        self.stats.writes += count
        self._charge_write(offset, count)
        self._words[offset:offset + count] = value

    # -- lifecycle -------------------------------------------------------
    def crash(self) -> None:
        """Model a machine crash."""
        self._words[:] = 0
        self._hot.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, {self.size_words} words)"


class DramDevice(MemoryDevice):
    """Volatile DRAM: everything is lost on crash."""

    volatile = True


class NvmDevice(MemoryDevice):
    """Simulated NVDIMM with explicit persistence.

    Stores land in the *live* array (``self._words``) and their cache line
    becomes *dirty*.  ``clflush`` copies a line into the durable array.  On
    ``crash()`` the live array is rebuilt from the durable one, so every
    unflushed store is lost.  ``fence()`` only charges time and counts — in
    this single-threaded simulator store order is already program order, but
    the protocols still issue fences exactly where the paper requires them
    and the §6.4 benchmark prices them.
    """

    volatile = False

    def __init__(self, size_words: int, clock: Clock,
                 latency: LatencyConfig = DEFAULT_LATENCY,
                 name: str = "nvm") -> None:
        super().__init__(size_words, clock, latency, name)
        self._durable = np.zeros(self.size_words, dtype=np.int64)
        self._dirty_lines: Set[int] = set()
        # Optional persist-order event tap (a PersistEventLog): when set,
        # every store/flush/fence is recorded for the static hazard
        # analyzer.  Duck-typed so the device layer has no new imports.
        self.event_log = None
        self.fault_mode = FaultMode.ATOMIC
        self._fault_rng = random.Random(0)
        # Pre-flush durable snapshots of lines flushed since the last fence;
        # only populated in REORDERED mode (a crash may undo these flushes).
        self._unfenced: Dict[int, np.ndarray] = {}
        # Lines flushed since the last fence, tracked in *every* fault
        # mode: a fence is redundant exactly when this is empty (it would
        # order nothing), which is what certified fence elision tests.
        self._unfenced_lines: Set[int] = set()

    # -- fault model -------------------------------------------------------
    def set_fault_mode(self, mode: str, seed: int = 0) -> None:
        """Select the crash fault model (see :class:`FaultMode`)."""
        if mode not in FaultMode.ALL:
            raise IllegalArgumentException(
                f"unknown fault mode {mode!r}; expected one of {FaultMode.ALL}")
        self.fault_mode = mode
        self._fault_rng = random.Random(seed)
        self._unfenced.clear()
        self._unfenced_lines.clear()

    # -- latency ----------------------------------------------------------
    def _read_cost(self) -> float:
        return self.latency.nvm_read_ns

    def _write_cost(self) -> float:
        return self.latency.nvm_write_ns

    # -- dirtiness tracking ------------------------------------------------
    def _mark_dirty(self, offset: int, count: int = 1) -> None:
        if self.event_log is not None:
            self.event_log.record_store(offset, count)
        first = offset // LINE_WORDS
        last = (offset + count - 1) // LINE_WORDS
        if first == last:
            self._dirty_lines.add(first)
        else:
            self._dirty_lines.update(range(first, last + 1))

    def write(self, offset: int, value: int) -> None:
        super().write(offset, value)
        self._mark_dirty(offset)

    def write_block(self, offset: int, values: np.ndarray) -> None:
        super().write_block(offset, values)
        self._mark_dirty(offset, len(values))

    def fill(self, offset: int, count: int, value: int = 0) -> None:
        super().fill(offset, count, value)
        self._mark_dirty(offset, count)

    # -- persistence primitives ---------------------------------------------
    def clflush(self, offset: int, count: int = 1,
                asynchronous: bool = False) -> None:
        """Flush every cache line covering ``[offset, offset+count)``.

        With *asynchronous* (clflushopt semantics) only the issue cost is
        charged — the write-back overlaps with further work and is ordered
        by the next :meth:`fence`.  Durability in the simulator is
        immediate either way; only the accounting differs.
        """
        self._check(offset, count)
        first = offset // LINE_WORDS
        last = (offset + count - 1) // LINE_WORDS
        cost = (self.latency.clflush_issue_ns if asynchronous
                else self.latency.clflush_ns)
        reordered = self.fault_mode == FaultMode.REORDERED
        for line in range(first, last + 1):
            self.stats.flushes += 1
            self.clock.charge(cost)
            if self.event_log is not None:
                self.event_log.record_flush(line)
            start = line * LINE_WORDS
            end = min(start + LINE_WORDS, self.size_words)
            if reordered and line not in self._unfenced:
                self._unfenced[line] = self._durable[start:end].copy()
            self._unfenced_lines.add(line)
            self._durable[start:end] = self._words[start:end]
            self._dirty_lines.discard(line)

    def fence(self) -> None:
        """sfence: order prior flushes before later stores."""
        self.stats.fences += 1
        self.clock.charge(self.latency.sfence_ns)
        if self.event_log is not None:
            self.event_log.record_fence()
        self._unfenced.clear()
        self._unfenced_lines.clear()

    def persist_all(self) -> None:
        """Flush every dirty line (used for checkpoint-style image saves)."""
        reordered = self.fault_mode == FaultMode.REORDERED
        for line in sorted(self._dirty_lines):
            start = line * LINE_WORDS
            end = min(start + LINE_WORDS, self.size_words)
            self.stats.flushes += 1
            self.clock.charge(self.latency.clflush_ns)
            if self.event_log is not None:
                self.event_log.record_flush(line)
            if reordered and line not in self._unfenced:
                self._unfenced[line] = self._durable[start:end].copy()
            self._unfenced_lines.add(line)
            self._durable[start:end] = self._words[start:end]
        self._dirty_lines.clear()

    @property
    def dirty_line_count(self) -> int:
        return len(self._dirty_lines)

    @property
    def has_unfenced(self) -> bool:
        """True while any flush since the last fence awaits ordering."""
        return bool(self._unfenced_lines)

    def line_durably_equal(self, line: int) -> bool:
        """True when *line*'s live content already equals its durable copy.

        Flushing such a line is the identity operation under every fault
        mode — ATOMIC/REORDERED copy identical bytes, and TORN tearing a
        store that rewrote the durable value cannot produce a third value
        — so a certified domain may skip the ``clflush`` entirely.
        """
        start = line * LINE_WORDS
        end = min(start + LINE_WORDS, self.size_words)
        return bool(
            (self._words[start:end] == self._durable[start:end]).all())

    def mark_line_clean(self, line: int) -> None:
        """Drop *line*'s dirty bit without flushing.

        Only legal when :meth:`line_durably_equal` holds — the caller
        (certified flush elision) is asserting the flush it skipped would
        have been a no-op, so the line must stop counting as dirty just
        as if it had been flushed.
        """
        self._dirty_lines.discard(line)

    # -- crash / restart ------------------------------------------------------
    def _tear_dirty_lines(self) -> None:
        """TORN: a random word-aligned subset of each dirty line persists."""
        rng = self._fault_rng
        for line in sorted(self._dirty_lines):
            start = line * LINE_WORDS
            end = min(start + LINE_WORDS, self.size_words)
            width = end - start
            if rng.random() < 0.5:
                # Partial write-back of a prefix of the line.
                survive = [i < rng.randint(0, width) for i in range(width)]
            else:
                survive = [rng.random() < 0.5 for _ in range(width)]
            for i, keep in enumerate(survive):
                if keep:
                    self._durable[start + i] = self._words[start + i]

    def _reorder_unfenced_lines(self) -> None:
        """REORDERED: each unfenced flush independently may not have landed."""
        rng = self._fault_rng
        for line in sorted(self._unfenced):
            if rng.random() < 0.5:
                snapshot = self._unfenced[line]
                start = line * LINE_WORDS
                self._durable[start:start + len(snapshot)] = snapshot

    def crash(self) -> None:
        """Lose every store that was not explicitly flushed.

        Under :class:`FaultMode` ``TORN`` dirty lines may partially persist;
        under ``REORDERED`` flushed-but-unfenced lines may revert to their
        pre-flush contents.  ``ATOMIC`` keeps the historical whole-line
        semantics.
        """
        if self.fault_mode == FaultMode.TORN:
            self._tear_dirty_lines()
        elif self.fault_mode == FaultMode.REORDERED:
            self._reorder_unfenced_lines()
        self._words = self._durable.copy()
        self._dirty_lines.clear()
        self._unfenced.clear()
        self._unfenced_lines.clear()
        self._hot.clear()

    def durable_image(self) -> np.ndarray:
        """Copy of the durable contents (what survives power loss)."""
        return self._durable.copy()

    def load_image(self, image: np.ndarray) -> None:
        """Restore durable + live contents from a saved image."""
        if len(image) > self.size_words:
            raise IllegalArgumentException(
                f"image of {len(image)} words exceeds device of {self.size_words}")
        self._durable[:len(image)] = image
        self._durable[len(image):] = 0
        self._words = self._durable.copy()
        self._dirty_lines.clear()
        self._unfenced.clear()
        self._unfenced_lines.clear()

    def durable_word(self, offset: int) -> int:
        """Read straight from the durable array (no charge: test helper)."""
        self._check(offset)
        return int(self._durable[offset])

    def line_state(self, line: int) -> str:
        """Durability state of one cache line: dirty / unfenced / clean.

        ``dirty`` — has stores never flushed; ``unfenced`` — flushed since
        the last fence (REORDERED may still undo it); ``clean`` — durable.
        Used by strict persist domains to diagnose ordering violations.
        """
        if line in self._dirty_lines:
            return "dirty"
        if line in self._unfenced:
            return "unfenced"
        return "clean"


@dataclass(frozen=True)
class Mapping:
    """One device mapped at a base address."""

    base: int
    device: MemoryDevice

    @property
    def end(self) -> int:
        return self.base + self.device.size_words

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


class AddressSpace:
    """Routes absolute word addresses to mapped devices.

    Address 0 is reserved as the null reference, so mappings must start at a
    positive base.
    """

    def __init__(self) -> None:
        self._mappings: List[Mapping] = []

    def map(self, base: int, device: MemoryDevice) -> Mapping:
        if base <= 0:
            raise IllegalArgumentException("mapping base must be positive (0 is null)")
        new = Mapping(base, device)
        for existing in self._mappings:
            if new.base < existing.end and existing.base < new.end:
                raise IllegalArgumentException(
                    f"mapping [{new.base}, {new.end}) overlaps "
                    f"[{existing.base}, {existing.end}) of {existing.device.name}")
        self._mappings.append(new)
        return new

    def unmap(self, device: MemoryDevice) -> None:
        self._mappings = [m for m in self._mappings if m.device is not device]

    def is_free(self, base: int, size_words: int) -> bool:
        end = base + size_words
        return all(base >= m.end or end <= m.base for m in self._mappings)

    def find_free_base(self, size_words: int, alignment: int = LINE_WORDS,
                       start: int = LINE_WORDS) -> int:
        """Lowest aligned base where *size_words* fits."""
        candidate = max(start, alignment)
        for mapping in sorted(self._mappings, key=lambda m: m.base):
            if candidate + size_words <= mapping.base:
                break
            candidate = max(candidate, mapping.end)
            rem = candidate % alignment
            if rem:
                candidate += alignment - rem
        return candidate

    def mapping_at(self, address: int) -> Mapping:
        for mapping in self._mappings:
            if mapping.contains(address):
                return mapping
        raise IllegalArgumentException(f"address {address:#x} is not mapped")

    def mapping_of(self, device: MemoryDevice) -> Optional[Mapping]:
        for mapping in self._mappings:
            if mapping.device is device:
                return mapping
        return None

    @property
    def mappings(self) -> Tuple[Mapping, ...]:
        return tuple(self._mappings)

    # -- routed access -------------------------------------------------------
    def read(self, address: int) -> int:
        mapping = self.mapping_at(address)
        return mapping.device.read(address - mapping.base)

    def write(self, address: int, value: int) -> None:
        mapping = self.mapping_at(address)
        mapping.device.write(address - mapping.base, value)

    def read_block(self, address: int, count: int) -> np.ndarray:
        mapping = self.mapping_at(address)
        return mapping.device.read_block(address - mapping.base, count)

    def write_block(self, address: int, values: np.ndarray) -> None:
        mapping = self.mapping_at(address)
        mapping.device.write_block(address - mapping.base, values)

    def device_of(self, address: int) -> MemoryDevice:
        return self.mapping_at(address).device

    def is_persistent(self, address: int) -> bool:
        """True when *address* lands in a non-volatile device."""
        try:
            return not self.mapping_at(address).device.volatile
        except IllegalArgumentException:
            return False
