"""Persist domains: epoch-batched, deduplicated flush scheduling.

Every durable subsystem (PJH metadata, name table, allocation fast path,
recoverable GC, the H2 WAL, PCJ's NVML pool, pjhlib's txn log, PJO) used to
hand-roll its crash-consistency protocol from raw ``clflush`` + ``sfence``
pairs.  A :class:`PersistDomain` centralises that ordering-critical line:

* ``flush(offset, count)`` *enqueues* the covering cache lines into the
  current **fence epoch** instead of flushing immediately.  Re-enqueueing a
  line already pending in the epoch is free — the duplicate is counted in
  ``DeviceStats.flushes_deduped`` and elided.
* ``commit_epoch()`` issues the pending lines (sorted, coalesced into
  contiguous ``clflush`` ranges with clflushopt semantics) followed by a
  single fence, and starts the next epoch.
* ``fence()`` is ``commit_epoch()`` with an unconditional trailing fence —
  the drain point protocols use to make *previously issued* flushes final.

Why the deferral is sound under every fault mode: a line flushed but not
yet fenced may already fail to persist under ``FaultMode.REORDERED`` (the
fence is what makes flushes final), so moving the ``clflush`` itself to the
fence point is adversarially equivalent — nothing that was crash-correct
before can observe the difference.  What would NOT be sound is merging two
epochs: a protocol that fences between a payload flush and a counter flush
(WAL records, undo-log entries, GC destination copies) relies on that
boundary, so domains never migrate a pending line past a ``commit_epoch``
— the queue is always fully drained before the fence is issued.

Deduplication within one epoch is free for the same reason: no fence
separates the duplicate flushes, so no protocol may depend on the line's
intermediate durable state.

The ``strict`` debug mode (see also :meth:`assert_durable`) raises
:class:`~repro.errors.OrderingViolation` when code reads back a durable
invariant that depends on a store that was never enqueued — or was
enqueued but not yet committed — before the read.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, Set, Tuple

from repro.errors import OrderingViolation
from repro.nvm.device import LINE_WORDS, NvmDevice

__all__ = ["OrderingViolation", "PersistDomain", "PersistEventLog"]


class PersistEventLog:
    """Ordered record of an :class:`NvmDevice`'s persistence traffic.

    Installed as ``device.event_log`` (see
    :meth:`repro.core.persistent_heap.PersistentHeap.enable_event_log`),
    it captures the exact store/flush/fence/publish sequence a workload
    produced, as plain tuples:

    * ``("store", offset, count)`` — words written (word-granular);
    * ``("flush", line)`` — one cache line flushed;
    * ``("fence",)`` — an sfence: prior flushes become final;
    * ``("publish", slot_offset, target_offset)`` — a PJH slot was made
      to point at the PJH object at *target_offset* (heap-relative);
    * ``("frame", top_offset, frame_offset, frame_words)`` — the frame
      stack's top word is about to publish the *frame_words*-word frame
      record at *frame_offset* (resumable-task pushes).

    The log feeds :func:`repro.analysis.hazards.analyze_trace`, which
    replays it against the persist-order rules.  Offsets are
    device-relative, so logs are deterministic and comparable across
    runs.
    """

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self.events: List[tuple] = []
        #: When set (see :meth:`mutator`), every recorded store, flush and
        #: publish carries this mutator index as a trailing tag, giving
        #: the hazard analyzer per-mutator program order (ESP205).
        #: Fences stay untagged: an sfence is a global ordering point.
        self.current_mutator = None

    def _tag(self, event: tuple) -> tuple:
        if self.current_mutator is None:
            return event
        return event + (int(self.current_mutator),)

    @contextmanager
    def mutator(self, index: int) -> Iterator[None]:
        """Attribute events recorded inside the block to mutator *index*.

        The mutator gang wraps every scheduled step in this, so a
        multi-mutator trace records which simulated thread issued each
        store/flush/publish — the per-mutator program order the ESP205
        rule replays.  Nesting restores the outer tag on exit.
        """
        previous = self.current_mutator
        self.current_mutator = index
        try:
            yield
        finally:
            self.current_mutator = previous

    def record_store(self, offset: int, count: int = 1) -> None:
        self.events.append(self._tag(("store", int(offset), int(count))))

    def record_flush(self, line: int) -> None:
        self.events.append(self._tag(("flush", int(line))))

    def record_fence(self) -> None:
        self.events.append(("fence",))

    def record_publish(self, slot_offset: int, target_offset: int) -> None:
        self.events.append(self._tag(("publish", int(slot_offset),
                                      int(target_offset))))

    def record_frame_publish(self, top_offset: int, frame_offset: int,
                             frame_words: int) -> None:
        self.events.append(self._tag(("frame", int(top_offset),
                                      int(frame_offset),
                                      int(frame_words))))

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def to_json(self) -> str:
        return json.dumps([list(e) for e in self.events]) + "\n"

    def save(self, path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path) -> "PersistEventLog":
        log = cls(name=Path(path).name)
        for entry in json.loads(Path(path).read_text()):
            log.events.append(tuple(
                entry[0:1] + [int(v) for v in entry[1:]]))
        return log


class PersistDomain:
    """Epoch-batched flush scheduler over one :class:`NvmDevice`.

    With ``enabled=False`` every operation is a no-op — the §6.4
    "recoverable GC without flushes" baseline plugs in here.
    """

    def __init__(self, device: NvmDevice, name: str = "persist",
                 enabled: bool = True, strict: bool = False) -> None:
        self.device = device
        self.name = name
        self.enabled = enabled
        self.strict = strict
        # Cache lines enqueued in the current (open) fence epoch.
        self._pending: Set[int] = set()
        #: Analyzer-issued flush-elision certificate (a
        #: :class:`repro.analysis.elision.FlushElisionCertificate`, duck-
        #: typed so the persist layer stays import-free).  When it covers
        #: this domain, :meth:`commit_epoch` skips the ``clflush`` of any
        #: pending line whose live content already equals its durable
        #: copy, and skips the trailing ``sfence`` when nothing remains
        #: for it to order.  ``None`` (the default) changes nothing.
        self.elision = None

    # ------------------------------------------------------------------
    # Enqueueing
    # ------------------------------------------------------------------
    def _lines(self, offset: int, count: int) -> Tuple[int, int]:
        if count < 1:
            count = 1
        return offset // LINE_WORDS, (offset + count - 1) // LINE_WORDS

    def flush(self, offset: int, count: int = 1) -> int:
        """Enqueue the lines covering ``[offset, offset+count)``.

        Returns the number of *newly* pending lines; duplicates within the
        open epoch are elided and counted as ``flushes_deduped``.
        """
        if not self.enabled:
            return 0
        first, last = self._lines(offset, count)
        pending = self._pending
        added = 0
        for line in range(first, last + 1):
            if line in pending:
                self.device.stats.flushes_deduped += 1
            else:
                pending.add(line)
                added += 1
        return added

    def fork(self, suffix: str) -> "PersistDomain":
        """A sibling domain on the same device: own epoch queue, own
        fence stream, inherited enabled/strict settings.

        Simulated GC workers each fork the collector's domain so that a
        worker's fence boundaries (destination epoch committed before the
        source-stamp epoch) are preserved without coupling its pending
        lines to any other worker's epochs.
        """
        child = PersistDomain(self.device, name=f"{self.name}:{suffix}",
                              enabled=self.enabled, strict=self.strict)
        child.elision = self.elision
        return child

    # ------------------------------------------------------------------
    # Epoch commit / fencing
    # ------------------------------------------------------------------
    def _runs(self) -> Iterator[Tuple[int, int]]:
        """Pending lines as sorted, contiguous (first_line, n_lines) runs."""
        lines: List[int] = sorted(self._pending)
        start = prev = lines[0]
        for line in lines[1:]:
            if line != prev + 1:
                yield start, prev - start + 1
                start = line
            prev = line
        yield start, prev - start + 1

    def commit_epoch(self) -> int:
        """Issue every pending line (sorted, coalesced) + one fence.

        An empty epoch commits for free: no flush, no fence, no counter.
        Returns the number of lines drained from the epoch (flushed or
        provably elided).

        When a :class:`~repro.analysis.elision.FlushElisionCertificate`
        covers this domain (and no event log is tracing — traces must
        record the uncertified sequence), any pending line whose live
        content already equals its durable copy is dropped instead of
        flushed: the ``clflush`` would be the identity operation under
        every fault mode.  If that empties the epoch *and* no earlier
        flush on the device still awaits ordering, the trailing fence is
        skipped too — it would order nothing.  Both skips are counted in
        ``DeviceStats.flushes_elided`` / ``fences_elided``.
        """
        if not self._pending:
            return 0
        drained = len(self._pending)
        cert = self.elision
        if (cert is not None and cert.active
                and cert.covers_domain(self.name)
                and self.device.event_log is None):
            redundant = [line for line in self._pending
                         if self.device.line_durably_equal(line)]
            for line in redundant:
                self.device.mark_line_clean(line)
                self._pending.discard(line)
            self.device.stats.flushes_elided += len(redundant)
            cert.note_elided(flushes=len(redundant))
            if not self._pending:
                if self.device.has_unfenced:
                    self.device.fence()
                else:
                    self.device.stats.fences_elided += 1
                    cert.note_elided(fences=1)
                self.device.stats.epochs += 1
                return drained
        size = self.device.size_words
        for first_line, n_lines in self._runs():
            start = first_line * LINE_WORDS
            count = min(n_lines * LINE_WORDS, size - start)
            self.device.clflush(start, count, asynchronous=True)
        self._pending.clear()
        self.device.fence()
        self.device.stats.epochs += 1
        return drained

    def fence(self) -> None:
        """Drain the epoch and fence unconditionally.

        Unlike :meth:`commit_epoch` this always issues the fence, so it
        also finalises flushes other code issued directly on the device
        (e.g. a transaction draining its asynchronous data flushes).
        """
        if not self.enabled:
            return
        if self._pending:
            self.commit_epoch()
        else:
            self.device.fence()

    def persist(self, offset: int, count: int = 1) -> None:
        """The classic clflush+sfence pair: enqueue and commit in one step."""
        self.flush(offset, count)
        self.commit_epoch()

    @contextmanager
    def epoch(self):
        """Scope several ``flush`` calls into one epoch; commits on exit."""
        try:
            yield self
        finally:
            self.commit_epoch()

    def discard(self) -> None:
        """Drop the pending queue without flushing.

        Only correct when something stronger already made the lines durable
        (``persist_all`` during a checkpoint/close).
        """
        self._pending.clear()

    @property
    def pending_lines(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # Strict-mode durability assertions
    # ------------------------------------------------------------------
    def assert_durable(self, offset: int, count: int = 1) -> None:
        """Raise :class:`OrderingViolation` unless the range is truly durable.

        Three ways a "durable" read-back can lie, all caught here:
        the line is still pending in the open epoch (enqueued, epoch never
        committed), it is dirty and was never enqueued at all, or it was
        flushed but not fenced (REORDERED may still undo it).
        """
        if not self.enabled:
            return
        first, last = self._lines(offset, count)
        for line in range(first, last + 1):
            if line in self._pending:
                raise OrderingViolation(
                    f"{self.name}: line {line} is enqueued but its epoch "
                    f"was never committed — the invariant at offset "
                    f"{offset} is not durable yet")
            state = self.device.line_state(line)
            if state == "dirty":
                raise OrderingViolation(
                    f"{self.name}: line {line} has unflushed stores that "
                    f"were never enqueued — the invariant at offset "
                    f"{offset} depends on a store no epoch covers")
            if state == "unfenced":
                raise OrderingViolation(
                    f"{self.name}: line {line} was flushed but not fenced "
                    f"— a reordered crash may still undo it")

    def read_durable(self, offset: int) -> int:
        """Read a word as recovery would see it; strict-checks first.

        In ``strict`` mode this is the read-back guard the debug mode
        promises: reading a durable invariant whose store was never
        enqueued (or never committed) raises :class:`OrderingViolation`.
        """
        if self.strict:
            self.assert_durable(offset)
        return self.device.durable_word(offset)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PersistDomain({self.name!r}, pending={len(self._pending)}, "
                f"enabled={self.enabled}, strict={self.strict})")
