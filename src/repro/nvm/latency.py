"""Latency model for the simulated memory hierarchy.

The paper's evaluation ran on a Xeon E5-2618L v3 with a Viking NVDIMM.  We
reproduce *shapes*, not absolute numbers, so the constants below are a
literature-calibrated cost model (HiKV [44] and the NVM systems the paper
cites report NVM read latency rivalling DRAM while write latency is several
times higher).  All values are nanoseconds of simulated time charged to the
:class:`repro.nvm.clock.Clock`.

Users can build a custom :class:`LatencyConfig` to explore other points; the
benchmarks all take the default.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyConfig:
    """Nanosecond costs for memory and CPU events in the simulator.

    Attributes mirror the events the runtime generates: word-granularity
    loads/stores against DRAM or NVM, cache-line flushes, store fences, and a
    generic per-"bytecode" CPU cost used to price computation such as SQL
    string transformation.
    """

    dram_read_ns: float = 60.0
    # Stores land in the write-back CPU cache: cheap at store time.  The
    # real durability cost of NVM's slow writes is paid at clflush, which
    # is priced per line below.  NVM stores still cost more than DRAM
    # stores (store-buffer pressure, ADR draining).
    dram_write_ns: float = 10.0
    # NVM reads rival DRAM (paper §5 cites [44]).  Per-word load cost.
    nvm_read_ns: float = 80.0
    nvm_write_ns: float = 30.0
    # clflush writes one 64-byte line back to the NVM media: this is where
    # the several-times-DRAM write latency actually lands.
    clflush_ns: float = 250.0
    # clflushopt-style asynchronous flush: issue cost only; the write-back
    # overlaps with further work and is drained by the next sfence.  Used
    # by bulk paths (the persistent GC), not by transactional ones.
    clflush_issue_ns: float = 30.0
    # sfence drains the store buffer.
    sfence_ns: float = 60.0
    # Cached accesses (simulating locality) cost this much instead.
    cache_hit_ns: float = 2.0
    # Generic CPU work unit: roughly one interpreted "operation".
    cpu_op_ns: float = 1.5

    def scaled(self, factor: float) -> "LatencyConfig":
        """Return a config with every memory latency multiplied by *factor*.

        Useful for sensitivity sweeps (e.g. slower NVM media).
        """
        return LatencyConfig(
            dram_read_ns=self.dram_read_ns * factor,
            dram_write_ns=self.dram_write_ns * factor,
            nvm_read_ns=self.nvm_read_ns * factor,
            nvm_write_ns=self.nvm_write_ns * factor,
            clflush_ns=self.clflush_ns * factor,
            sfence_ns=self.sfence_ns * factor,
            cache_hit_ns=self.cache_hit_ns * factor,
            cpu_op_ns=self.cpu_op_ns,
        )


DEFAULT_LATENCY = LatencyConfig()
