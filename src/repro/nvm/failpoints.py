"""Crash-injection failpoints.

The crash-consistency protocols (§4 of the paper) are only as good as their
behaviour when the machine dies at the worst possible moment.  The runtime
marks every interesting moment with ``failpoints.hit("site.name")``; tests
install triggers that raise :class:`~repro.errors.SimulatedCrash` on the
N-th hit of a site, then exercise recovery.

A :class:`FailpointRegistry` is deliberately tiny: a counter per site and an
optional trigger.  The sweep helper in the tests walks N from 1 upward until
a full run completes without hitting the trigger, guaranteeing a crash is
injected *between every pair of consecutive persistence events*.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import SimulatedCrash

Trigger = Callable[[str, int], None]

# Every failpoint site the runtime is documented to pass through.  A clean
# allocation + persistent-GC run must touch each of these at least once
# (asserted by tests/nvm/test_failpoints.py), so a sweep that arms a trigger
# on any of them is guaranteed to actually exercise it.
DOCUMENTED_SITES: Tuple[str, ...] = (
    # persistent allocation (core/persistent_heap.py)
    "pjh.alloc.top_persisted",
    "pjh.alloc.object_persisted",
    # persistent GC driver (core/pgc.py)
    "pgc.bitmaps_persisted",
    "pgc.flag_raised",
    "pgc.redo_persisted",
    "pgc.redo_applied",
    "pgc.top_persisted",
    "pgc.flag_cleared",
    # compaction engine (core/old_gc.py)
    "gc.compact.region_done",
    "gc.compact.copied",
    "gc.compact.dest_persisted",
    "gc.compact.src_stamped",
    "gc.move.recorded",
    "gc.compact.serial_object_done",
    "gc.move.chunk_done",
)


class FailpointRegistry:
    """Counts hits per named site and fires an installed trigger.

    Hit counting is always on — ``count()``/``total_hits()``/``sites()`` work
    as passive coverage probes with no trigger installed.  Only the trigger
    itself is gated on arming.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._baseline: Dict[str, int] = {}
        self._trigger: Optional[Trigger] = None
        self._armed = False

    def hit(self, site: str) -> None:
        """Record one pass through *site*; may raise via the trigger."""
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        if self._armed and self._trigger is not None:
            # Triggers see hits *since install*, so passive counts collected
            # before arming don't shift the injection point.
            self._trigger(site, count - self._baseline.get(site, 0))

    # -- installation --------------------------------------------------------
    def install(self, trigger: Trigger) -> None:
        self._trigger = trigger
        self._armed = True
        self._baseline = dict(self._counts)

    def crash_on_hit(self, site: str, nth: int) -> None:
        """Raise :class:`SimulatedCrash` on the *nth* hit of *site*."""

        def trigger(hit_site: str, count: int) -> None:
            if hit_site == site and count == nth:
                raise SimulatedCrash(f"injected crash at {site} hit #{count}")

        self.install(trigger)

    def crash_on_global_hit(self, nth: int) -> None:
        """Raise on the *nth* hit of *any* site (exhaustive sweeps)."""
        state = {"total": 0}

        def trigger(hit_site: str, count: int) -> None:
            state["total"] += 1
            if state["total"] == nth:
                raise SimulatedCrash(
                    f"injected crash at global hit #{nth} ({hit_site})")

        self.install(trigger)

    def clear(self) -> None:
        self._trigger = None
        self._armed = False
        self._counts.clear()
        self._baseline.clear()

    def count(self, site: str) -> int:
        return self._counts.get(site, 0)

    def total_hits(self) -> int:
        return sum(self._counts.values())

    def sites(self) -> Tuple[str, ...]:
        """Every site that has been hit at least once, sorted."""
        return tuple(sorted(s for s, c in self._counts.items() if c > 0))

    def reset_counts(self) -> None:
        """Zero the counters without touching the installed trigger."""
        self._counts.clear()
