"""Crash-injection failpoints.

The crash-consistency protocols (§4 of the paper) are only as good as their
behaviour when the machine dies at the worst possible moment.  The runtime
marks every interesting moment with ``failpoints.hit("site.name")``; tests
install triggers that raise :class:`~repro.errors.SimulatedCrash` on the
N-th hit of a site, then exercise recovery.

A :class:`FailpointRegistry` is deliberately tiny: a counter per site and an
optional trigger.  The sweep helper in the tests walks N from 1 upward until
a full run completes without hitting the trigger, guaranteeing a crash is
injected *between every pair of consecutive persistence events*.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import SimulatedCrash

Trigger = Callable[[str, int], None]


class FailpointRegistry:
    """Counts hits per named site and fires an installed trigger."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._trigger: Optional[Trigger] = None
        self._armed = False

    def hit(self, site: str) -> None:
        """Record one pass through *site*; may raise via the trigger."""
        if not self._armed:
            return
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        if self._trigger is not None:
            self._trigger(site, count)

    # -- installation --------------------------------------------------------
    def install(self, trigger: Trigger) -> None:
        self._trigger = trigger
        self._armed = True

    def crash_on_hit(self, site: str, nth: int) -> None:
        """Raise :class:`SimulatedCrash` on the *nth* hit of *site*."""

        def trigger(hit_site: str, count: int) -> None:
            if hit_site == site and count == nth:
                raise SimulatedCrash(f"injected crash at {site} hit #{count}")

        self.install(trigger)

    def crash_on_global_hit(self, nth: int) -> None:
        """Raise on the *nth* hit of *any* site (exhaustive sweeps)."""
        state = {"total": 0}

        def trigger(hit_site: str, count: int) -> None:
            state["total"] += 1
            if state["total"] == nth:
                raise SimulatedCrash(
                    f"injected crash at global hit #{nth} ({hit_site})")

        self.install(trigger)

    def clear(self) -> None:
        self._trigger = None
        self._armed = False
        self._counts.clear()

    def count(self, site: str) -> int:
        return self._counts.get(site, 0)

    def total_hits(self) -> int:
        return sum(self._counts.values())
