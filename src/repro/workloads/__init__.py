"""Multi-mutator workloads: contended scenarios for sweeps and benches.

The first resident is :mod:`repro.workloads.concurrent_kv` — a contended
multi-mutator KV workload over the lock-free durable map, with a
durable-linearizability checker that validates recovered state against
the gang's recorded history.  ``python -m repro.workloads.concurrent_kv``
runs the 2-mutator smoke wired into ``make concurrent-smoke``.
"""

from repro.workloads.concurrent_kv import (
    ConcurrentKvWorkload,
    KvOp,
    check_recovered_state,
    make_ops,
)

__all__ = [
    "ConcurrentKvWorkload",
    "KvOp",
    "check_recovered_state",
    "make_ops",
]
