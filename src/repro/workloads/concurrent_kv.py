"""Contended multi-mutator KV workload + durable-linearizability checker.

N mutators hammer a small shared key space of a
:class:`~repro.pjhlib.concurrent.PjhConcurrentMap` through a
:class:`~repro.runtime.mutators.MutatorGang`.  Every op value is unique
(``mutator * 10**6 + sequence``), so the checker can map any recovered
value back to exactly one operation in the gang's history.

The durability contract checked after a crash is **durable
linearizability** (Izraelevitz et al., the correctness notion Zuriel's
sets target): the recovered state must equal the state left by some
prefix of the linearization order that contains *every* op whose
durability point passed.  Per key that collapses to old-or-new:

* let D be the last op on the key (in linearization order) whose
  ``("durable", ...)`` marker is in the history;
* the recovered value must be the value of D **or** of any op on that
  key linearized *after* D (effects past their linearization but before
  their durability point may or may not have persisted);
* keys with no durable op may also be absent entirely.

On a crash-free run the check degenerates to exact equality with the
final model, and the map's own :meth:`audit` must come back empty either
way.  ``python -m repro.workloads.concurrent_kv`` runs the 2-mutator
contended smoke (run, crash, recover, check, fsck) wired into
``make concurrent-smoke``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.pjhlib.concurrent import PjhConcurrentMap

ROOT_NAME = "concurrent_kv"


@dataclass(frozen=True)
class KvOp:
    """One scripted operation of the workload."""

    mutator: int
    name: str        # unique; keys the gang history
    kind: str        # "put" | "remove" | "get"
    key: int
    value: Optional[int]  # None unless kind == "put"


def make_ops(mutators: int, ops_per_mutator: int, key_space: int = 4,
             seed: int = 0, remove_ratio: float = 0.25,
             get_ratio: float = 0.15) -> List[KvOp]:
    """A deterministic contended op script: same args, same script.

    Keys are drawn from ``range(key_space)`` — deliberately tiny so
    mutators collide constantly — and every put's value encodes
    (mutator, sequence), making values globally unique.
    """
    rng = random.Random(seed)
    ops: List[KvOp] = []
    for mutator in range(mutators):
        for sequence in range(ops_per_mutator):
            key = rng.randrange(key_space)
            roll = rng.random()
            if roll < remove_ratio:
                kind, value = "remove", None
            elif roll < remove_ratio + get_ratio:
                kind, value = "get", None
            else:
                kind, value = "put", mutator * 1_000_000 + sequence
            ops.append(KvOp(mutator, f"m{mutator}-{sequence}-{kind}{key}",
                            kind, key, value))
    return ops


def submit_ops(gang, table: PjhConcurrentMap,
               ops: Sequence[KvOp]) -> None:
    """Queue the scripted ops on their mutators."""
    for op in ops:
        if op.kind == "put":
            factory = (lambda op=op: table.put_op(op.key, op.value))
        elif op.kind == "remove":
            factory = (lambda op=op: table.remove_op(op.key))
        else:
            factory = (lambda op=op: table.get_op(op.key))
        gang.submit(op.mutator, op.name, factory)


def check_recovered_state(recovered: Dict[int, int], ops: Sequence[KvOp],
                          history: Sequence[Tuple[int, int, str, str, tuple]],
                          completed: bool) -> List[str]:
    """Durable-linearizability violations; empty when the state is legal.

    *recovered* is the reattached map's raw snapshot, *history* the gang
    history (possibly truncated by a crash), *completed* whether the run
    finished without crashing.
    """
    by_name = {op.name: op for op in ops}
    # Per key: ops in linearization order as (step, op).
    linearized: Dict[int, List[Tuple[int, KvOp]]] = {}
    durable_names = set()
    for step, _mutator, op_name, kind, _payload in history:
        op = by_name.get(op_name)
        if op is None or op.kind == "get":
            continue
        if kind == "linearized":
            linearized.setdefault(op.key, []).append((step, op))
        elif kind == "durable":
            durable_names.add(op_name)
    problems: List[str] = []
    keys = set(linearized) | set(recovered)
    for key in sorted(keys):
        timeline = sorted(linearized.get(key, []))
        seen = recovered.get(key)  # None = absent
        # Index of the last linearized op with a durable marker.
        durable_index = -1
        for position, (_step, op) in enumerate(timeline):
            if op.name in durable_names:
                durable_index = position
        legal = set()
        if durable_index < 0:
            legal.add(None)  # never durably written: absence is legal
            candidates = timeline
        else:
            candidates = timeline[durable_index:]
        for _step, op in candidates:
            legal.add(op.value if op.kind == "put" else None)
        if completed:
            # No crash: the full history must be reflected exactly.
            legal = {timeline[-1][1].value if timeline[-1][1].kind == "put"
                     else None} if timeline else {None}
        if seen not in legal:
            durable_op = (timeline[durable_index][1].name
                          if durable_index >= 0 else "<none>")
            problems.append(
                f"key {key}: recovered {seen!r} but the last durable op "
                f"was {durable_op} and only {sorted(legal, key=repr)} are "
                f"legal old-or-new values")
    return problems


class ConcurrentKvWorkload:
    """Drives the scripted workload on one session; checkable after."""

    def __init__(self, jvm, mutators: int = 2, ops_per_mutator: int = 12,
                 key_space: int = 4, seed: int = 0,
                 buckets: int = 8) -> None:
        self.jvm = jvm
        self.mutators = mutators
        self.ops = make_ops(mutators, ops_per_mutator, key_space, seed)
        self.table = PjhConcurrentMap(jvm, buckets=buckets)
        jvm.set_root(ROOT_NAME, self.table.h)
        self.gang = jvm.mutator_gang(seed=seed, mutators=mutators)

    def run(self, event_log=None):
        submit_ops(self.gang, self.table, self.ops)
        return self.gang.run(event_log=event_log, phase="concurrent_kv")

    def check_after_recovery(self, jvm2, completed: bool) -> List[str]:
        """Reattach on *jvm2* (heap already loaded) and check everything:
        protocol audit, durable linearizability, size consistency."""
        table2 = PjhConcurrentMap.reattach(jvm2, jvm2.get_root(ROOT_NAME))
        problems = list(table2.audit())
        recovered = table2.snapshot_raw()
        problems += check_recovered_state(recovered, self.ops,
                                          self.gang.history, completed)
        if table2.size() != len(recovered):
            problems.append(
                f"recomputed size {table2.size()} != live entries "
                f"{len(recovered)}")
        return problems


def run_smoke(mutators: int = 2, ops_per_mutator: int = 16,
              seed: int = 0, verbose: bool = True) -> dict:
    """The ``make concurrent-smoke`` cycle: run hot, verify the trace is
    hazard-clean, crash, recover, check durable linearizability, fsck."""
    import tempfile
    from pathlib import Path

    from repro.analysis.hazards import analyze_trace
    from repro.api import Espresso
    from repro.tools.fsck import fsck_heap

    tmp = Path(tempfile.mkdtemp(prefix="concurrent-kv-"))
    jvm = Espresso.open(tmp / "heaps", "kv", size_bytes=4 * 1024 * 1024)
    heap = jvm.heaps.heap("kv")
    log = heap.enable_event_log("concurrent_kv")
    workload = ConcurrentKvWorkload(jvm, mutators=mutators,
                                    ops_per_mutator=ops_per_mutator,
                                    seed=seed)
    report = workload.run(event_log=log)
    heap.disable_event_log()
    hazards = analyze_trace(log)

    jvm2 = jvm.restart(crash=True)
    heap2 = jvm2.load_heap("kv")
    problems = workload.check_after_recovery(jvm2, completed=True)
    fsck = fsck_heap(heap2)
    summary = {
        "mutators": mutators,
        "ops": len(workload.ops),
        "steps": report.steps,
        "pause_ns": report.committed_ns,
        "hazards": len(hazards.findings),
        "problems": problems,
        "fsck_clean": fsck.clean,
    }
    if verbose:
        print(f"concurrent-kv smoke: {mutators} mutators, "
              f"{len(workload.ops)} ops, {report.steps} steps")
        print(f"  hazard findings : {len(hazards.findings)}")
        print(f"  durable-lin     : "
              f"{'ok' if not problems else problems}")
        print(f"  fsck            : "
              f"{'clean' if fsck.clean else 'DIRTY'}")
    ok = not problems and not hazards.findings and fsck.clean
    summary["ok"] = ok
    return summary


def main() -> int:
    summary = run_smoke()
    return 0 if summary["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
