"""Java-flavoured exception hierarchy for the Espresso reproduction.

The original system is a modified JVM, so the error conditions it raises are
Java exceptions.  We mirror the ones that matter for the paper's semantics
(e.g. the alias-Klass discussion hinges on when ``ClassCastException`` is or
is not thrown) plus the runtime errors our substrates need.
"""

from __future__ import annotations


class EspressoError(Exception):
    """Base class for every error raised by this library."""


class JavaThrowable(EspressoError):
    """Base class for the Java-exception lookalikes."""


class ClassCastException(JavaThrowable):
    """Raised by ``checkcast`` when the target type does not match.

    The alias-Klass machinery exists precisely to avoid raising this for
    logically-identical classes that live both in DRAM and NVM (paper §3.2).
    """


class NullPointerException(JavaThrowable):
    """Raised when dereferencing a null reference.

    Under zeroing safety, stale NVM->DRAM pointers are nullified at load time
    so a careless access raises this instead of corrupting memory (§3.4).
    """


class OutOfMemoryError(JavaThrowable):
    """Raised when a heap space cannot satisfy an allocation."""


class IllegalStateException(JavaThrowable):
    """Raised on API misuse (e.g. commit without an active transaction)."""


class IllegalArgumentException(JavaThrowable):
    """Raised on malformed arguments to public APIs."""


class ArrayIndexOutOfBoundsException(JavaThrowable):
    """Raised on out-of-range array element access."""


class NoSuchFieldException(JavaThrowable):
    """Raised when reflective field lookup fails (flush API, enhancer)."""


class HeapExistsError(EspressoError):
    """Raised by ``createHeap`` when the name is already taken."""


class HeapNotFoundError(EspressoError):
    """Raised by ``loadHeap`` when the name manager has no such heap."""


class HeapCorruptionError(EspressoError):
    """Raised when a persistent image fails validation on load."""


class CorruptHeapError(HeapCorruptionError):
    """Structured corruption report: names the failing region.

    ``region`` is a dotted path identifying what failed integrity checking
    (e.g. ``"metadata.layout"``, ``"name_table.entry[3]"``, ``"klass-segment"``),
    ``detail`` the human-readable reason.  Subclasses
    :class:`HeapCorruptionError` so existing ``except HeapCorruptionError``
    handlers keep working.
    """

    def __init__(self, region: str, detail: str) -> None:
        super().__init__(f"{region}: {detail}")
        self.region = region
        self.detail = detail


class SimulatedCrash(EspressoError):
    """Raised by a failpoint to model a machine crash.

    Everything not yet flushed to the durable domain of the NVM device is
    lost; tests catch this, reload the heap and run recovery.
    """


class ResumeProtocolError(EspressoError):
    """Raised when a resumable task's replay diverges from its durable stack.

    On resume, the task function re-executes from the top and must request
    the same call sequence (names, arguments, step sites) that built the
    persisted frames.  A mismatch means the task is not deterministic — or
    the registry maps its name to different code — and blind replay would
    corrupt the image, so the engine refuses instead.
    """


class TransactionAbort(EspressoError):
    """Raised to roll back an ACID transaction (PCJ, PJO, H2)."""


class SqlError(EspressoError):
    """Raised by the H2 substrate on parse or execution errors."""


class UnsafePointerError(EspressoError):
    """Raised by the type-based safety checker on an NVM->DRAM store."""


class ShardDownError(EspressoError):
    """Raised by the fleet router when a request targets a crashed shard.

    Sessions hash to exactly one shard and never migrate silently; while
    that shard is down its traffic fails fast instead of landing on a
    sibling whose heap does not hold the session's data.
    """

    def __init__(self, shard: int, session_id: str) -> None:
        super().__init__(
            f"shard {shard} is down (session {session_id!r} routes there)")
        self.shard = shard
        self.session_id = session_id


class FleetBusyError(EspressoError):
    """Raised by fleet admission control when a shard's queue is full.

    Backpressure, not buffering: beyond ``max_in_flight`` queued requests
    per shard the router refuses new work so one hot shard cannot grow an
    unbounded backlog.
    """

    def __init__(self, shard: int, in_flight: int) -> None:
        super().__init__(
            f"shard {shard} at admission limit ({in_flight} in flight)")
        self.shard = shard
        self.in_flight = in_flight


class OrderingViolation(EspressoError):
    """Raised by a strict persist domain on a broken durability ordering.

    Code read back a "durable" invariant whose backing store was either
    never enqueued for flushing, or enqueued but not yet committed by a
    fence epoch — exactly the class of bug the REORDERED fault mode turns
    into silent corruption.
    """
