"""An NVML-style native pool: what PCJ manages its off-heap objects with.

Paper §2.2: "PCJ stores persistent data as native off-heap objects and
manage[s] them with the help of NVML, a C library providing ACID semantics
for accessing data in NVM.  Therefore, PCJ has to define a special layout
for native objects and handle synchronization and garbage collection all by
itself."

This module is that substrate, built from scratch: a pool over its own
:class:`~repro.nvm.device.NvmDevice` with

* a first-fit free list + bump allocator with persistent allocation headers,
* word-granularity **undo-log transactions** (old data flushed to a log
  before mutation; recovery applies the undo in reverse),
* a persistent **type table** (class name -> type id) — the "type
  information memorization" that dominates PCJ's metadata cost in Fig. 6,
* a persistent **root directory** (named entry points), and
* a persistent **GC registry** feeding the reference-counting collector.

Every operation charges real device traffic, so the Fig. 6 breakdown is
measured, not staged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import (
    IllegalArgumentException,
    IllegalStateException,
    OutOfMemoryError,
    TransactionAbort,
)
from repro.nvm.clock import Clock
from repro.nvm.device import NvmDevice
from repro.nvm.latency import DEFAULT_LATENCY, LatencyConfig
from repro.nvm.persist import PersistDomain
from repro.nvm.publish import publish_point
from repro.obs import NULL_OBS, Observatory

# Pool metadata word offsets.
_MAGIC = 0
_SIZE = 1
_HEAP_TOP = 2
_FREE_HEAD = 3          # offset of first free chunk, 0 = none
_TX_ACTIVE = 4
_TX_LOG_WORDS = 5       # words used in the undo log
_TYPE_COUNT = 6
_ROOT_COUNT = 7
_GC_REG_COUNT = 8
_TX_LOG_CAP = 9          # persisted so a reopened pool rebuilds its layout

POOL_MAGIC = 0x4E564D4C  # "NVML"
_META_WORDS = 16

# PCJ reaches this pool from Java through JNI: every pool-level operation
# pays a native-call crossing (argument marshalling, handle pinning), and
# every object dereference resolves the Java proxy against the native
# object directory.  These CPU costs are the off-heap tax of §2.2 that the
# on-heap design deletes.
NATIVE_CALL_NS = 400.0
DIRECTORY_LOOKUP_NS = 250.0

_TYPE_ENTRY_WORDS = 10   # name_len + 8 name words + reserved
_TYPE_CAPACITY = 128
_ROOT_ENTRY_WORDS = 2    # name hash, offset
_ROOT_CAPACITY = 128
_GC_REG_CAPACITY = 1024

# Per-allocation header (precedes the payload).
HDR_SIZE = 0             # payload words
HDR_TYPE = 1             # type id (index into the type table)
HDR_REFCOUNT = 2
HDR_VERSION = 3
HEADER_WORDS = 4


def _hash64(text: str) -> int:
    h = 1469598103934665603
    for ch in text.encode("utf-8"):
        h = ((h ^ ch) * 1099511628211) & ((1 << 63) - 1)
    return h


class MemoryPool:
    """One NVML pool: allocator + transactions + directories."""

    def __init__(self, size_words: int, clock: Optional[Clock] = None,
                 latency: LatencyConfig = DEFAULT_LATENCY,
                 tx_log_words: int = 8192, name: str = "pcj-pool",
                 _format: bool = True,
                 obs: Observatory = NULL_OBS) -> None:
        self.clock = clock if clock is not None else Clock()
        self.obs = obs
        self.obs.bind_clock(self.clock)
        self.device = NvmDevice(size_words, self.clock, latency, name=name)
        self.obs.register_device(name, self.device)
        # All pool durability routes through one domain: in-transaction
        # data/header flushes stay enqueued until tx_commit drains them, so
        # repeated stores to the pool's metadata line (tx state, heap top,
        # free head all live in line 0) dedupe within the epoch.
        self.persist = PersistDomain(self.device, name=name)
        if _format:
            d = self.device
            d.write(_SIZE, size_words)
            d.write(_TX_LOG_CAP, tx_log_words)
            d.write(_FREE_HEAD, 0)
            d.write(_TX_ACTIVE, 0)
            d.write(_TX_LOG_WORDS, 0)
            d.write(_TYPE_COUNT, 0)
            d.write(_ROOT_COUNT, 0)
            d.write(_GC_REG_COUNT, 0)
            self._compute_layout(tx_log_words)
            d.write(_HEAP_TOP, self._heap_off)
            d.write(_MAGIC, POOL_MAGIC)
            self.persist.persist(0, _META_WORDS)
        # Volatile acceleration caches (rebuilt on open).
        self._type_cache: Dict[str, int] = {}
        self._root_cache: Dict[int, int] = {}
        # type id -> Python wrapper class, for typed refcount release.
        self.type_classes: Dict[int, type] = {}

    def _compute_layout(self, tx_log_words: int) -> None:
        self._type_table_off = _META_WORDS
        self._root_table_off = (self._type_table_off
                                + _TYPE_CAPACITY * _TYPE_ENTRY_WORDS)
        self._gc_reg_off = (self._root_table_off
                            + _ROOT_CAPACITY * _ROOT_ENTRY_WORDS)
        self._tx_log_off = self._gc_reg_off + _GC_REG_CAPACITY
        self._heap_off = self._tx_log_off + tx_log_words
        self._tx_log_capacity = tx_log_words
        if self._heap_off >= self.device.size_words:
            raise IllegalArgumentException(
                f"pool of {self.device.size_words} words leaves no heap space")

    # ------------------------------------------------------------------
    # Durability: pools are files in real PCJ (pmemobj pools)
    # ------------------------------------------------------------------
    def close(self):
        """Graceful close: flush everything, return the durable image."""
        self.device.persist_all()
        self.persist.discard()  # persist_all covered anything still pending
        return self.device.durable_image()

    def crash_image(self):
        """Power loss: unflushed lines vanish; return what survived."""
        self.device.crash()
        return self.device.durable_image()

    @classmethod
    def open(cls, image, clock: Optional[Clock] = None,
             latency: LatencyConfig = DEFAULT_LATENCY,
             name: str = "pcj-pool",
             obs: Observatory = NULL_OBS) -> "MemoryPool":
        """Reopen a pool from a saved image, rolling back any transaction
        a crash cut short (NVML's pool-open recovery)."""
        pool = cls(len(image), clock, latency, name=name, _format=False,
                   obs=obs)
        pool.device.load_image(image)
        if pool.device.read(_MAGIC) != POOL_MAGIC:
            raise IllegalArgumentException("image is not a PCJ pool")
        pool._compute_layout(pool.device.read(_TX_LOG_CAP))
        pool.recover()
        return pool

    def bind_class(self, wrapper_class: type) -> None:
        """Re-associate a Python wrapper class after reopen, so typed
        reference-counting release works for reattached objects."""
        type_id = self.intern_type(wrapper_class.TYPE_NAME)
        self.type_classes[type_id] = wrapper_class

    # ------------------------------------------------------------------
    # Transactions (undo logging, NVML-style)
    # ------------------------------------------------------------------
    @property
    def in_transaction(self) -> bool:
        return bool(self.device.read(_TX_ACTIVE))

    def tx_begin(self) -> None:
        if self.in_transaction:
            raise IllegalStateException("nested PCJ transactions unsupported")
        self.clock.charge(NATIVE_CALL_NS)
        d = self.device
        d.write(_TX_LOG_WORDS, 0)
        d.write(_TX_ACTIVE, 1)
        self.persist.persist(_TX_ACTIVE, 2)
        # Synchronisation: PCJ locks the object/pool around each operation.
        self.clock.charge(self.device.latency.sfence_ns * 2)
        self.obs.inc("pcj.tx.begins")

    def tx_add_range(self, offset: int, count: int) -> None:
        """Undo-log *count* words at *offset* before they are overwritten."""
        if not self.in_transaction:
            raise IllegalStateException("tx_add_range outside a transaction")
        d = self.device
        used = d.read(_TX_LOG_WORDS)
        if used + count + 2 > self._tx_log_capacity:
            raise TransactionAbort("PCJ undo log overflow")
        entry = self._tx_log_off + used
        d.write(entry, offset)
        d.write(entry + 1, count)
        d.write_block(entry + 2, d.read_block(offset, count))
        # Two epochs, never merged: the entry must be durable before the
        # log length can claim it — a reordered crash that persisted the
        # counter but not the entry would make abort/recovery replay
        # garbage over live data.
        self.persist.persist(entry, count + 2)
        d.write(_TX_LOG_WORDS, used + count + 2)
        self.persist.persist(_TX_LOG_WORDS)

    def tx_commit(self) -> None:
        if not self.in_transaction:
            raise IllegalStateException("commit outside a transaction")
        self.clock.charge(NATIVE_CALL_NS)
        d = self.device
        # Drain the data epoch before discarding the undo log: if the
        # cleared flag persisted while a deferred data line reverted,
        # recovery would skip the rollback and expose a torn transaction.
        with self.obs.span("pcj.tx.commit"):
            self.persist.fence()
            d.write(_TX_ACTIVE, 0)
            d.write(_TX_LOG_WORDS, 0)
            self.persist.persist(_TX_ACTIVE, 2)
        self.obs.inc("pcj.tx.commits")

    def tx_abort(self) -> None:
        """Apply the undo log in reverse and close the transaction."""
        d = self.device
        entries: List[Tuple[int, int, np.ndarray]] = []
        cursor = 0
        used = d.read(_TX_LOG_WORDS)
        while cursor < used:
            off = d.read(self._tx_log_off + cursor)
            count = d.read(self._tx_log_off + cursor + 1)
            data = d.read_block(self._tx_log_off + cursor + 2, count)
            entries.append((off, count, data))
            cursor += count + 2
        for off, count, data in reversed(entries):
            d.write_block(off, data)
            self.persist.flush(off, count)  # drained by tx_commit's fence
        self.tx_commit()
        self.obs.inc("pcj.tx.aborts")

    def recover(self) -> None:
        """Pool-open recovery: roll back a transaction cut short by a crash."""
        with self.obs.span("pcj.recover",
                           in_transaction=self.in_transaction):
            if self.in_transaction:
                self.tx_abort()
        self.obs.inc("pcj.recoveries")

    def _tx_write(self, offset: int, value: int) -> None:
        """Flushed single-word write, undo-logged inside a transaction.

        Inside a transaction the flush stays enqueued until tx_commit
        drains it (the undo entry above already covers a crash before
        then); outside, the epoch commits immediately.
        """
        if self.in_transaction:
            self.tx_add_range(offset, 1)
            self.device.write(offset, value)
            self.persist.flush(offset)
        else:
            self.device.write(offset, value)
            self.persist.persist(offset)

    # ------------------------------------------------------------------
    # Type table ("type information memorization")
    # ------------------------------------------------------------------
    def intern_type(self, name: str) -> int:
        """Find or persist a type descriptor; returns its type id.

        The walk reads descriptors from NVM (the real PCJ resolves types
        through its ObjectDirectory on each allocation) — this is the
        metadata cost the paper measures at 36.8% of a create.
        """
        self.clock.charge(DIRECTORY_LOOKUP_NS)
        cached = self._type_cache.get(name)
        if cached is not None:
            # Even cached, PCJ validates the descriptor: one header read.
            entry = self._type_table_off + cached * _TYPE_ENTRY_WORDS
            self.device.read(entry)
            return cached
        d = self.device
        count = d.read(_TYPE_COUNT)
        from repro.core.name_table import _pack_name, _unpack_name
        for type_id in range(count):
            entry = self._type_table_off + type_id * _TYPE_ENTRY_WORDS
            length = d.read(entry)
            existing = _unpack_name(d.read_block(entry + 1, 8), length)
            if existing == name:
                self._type_cache[name] = type_id
                return type_id
        if count >= _TYPE_CAPACITY:
            raise OutOfMemoryError("PCJ type table full")
        entry = self._type_table_off + count * _TYPE_ENTRY_WORDS
        words, length = _pack_name(name)
        d.write(entry, length)
        d.write_block(entry + 1, words)
        # Entry epoch before count epoch: the count must never claim an
        # entry that is not yet durable.
        self.persist.persist(entry, _TYPE_ENTRY_WORDS)
        d.write(_TYPE_COUNT, count + 1)
        self.persist.persist(_TYPE_COUNT)
        self._type_cache[name] = count
        return count

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def pmalloc(self, payload_words: int, type_id: int) -> int:
        """Allocate header + payload; returns the *payload* offset."""
        if payload_words < 1:
            payload_words = 1  # room for the free-list link
        self.clock.charge(NATIVE_CALL_NS)
        d = self.device
        total = HEADER_WORDS + payload_words
        # First-fit over the persistent free list.
        prev = 0
        cursor = d.read(_FREE_HEAD)
        while cursor:
            chunk_payload = d.read(cursor + HDR_SIZE)
            if chunk_payload >= payload_words:
                next_free = d.read(cursor + HEADER_WORDS)
                if prev:
                    self._tx_write(prev + HEADER_WORDS, next_free)
                else:
                    self._tx_write(_FREE_HEAD, next_free)
                break
            prev = cursor
            cursor = d.read(cursor + HEADER_WORDS)
        if not cursor:
            top = d.read(_HEAP_TOP)
            if top + total > d.size_words:
                raise OutOfMemoryError("PCJ pool exhausted")
            cursor = top
            self._tx_write(_HEAP_TOP, top + total)
            # Fresh memory beyond the old top needs no undo image.
            d.write(cursor + HDR_SIZE, payload_words)
            self.persist.flush(cursor + HDR_SIZE)
            if not self.in_transaction:
                self.persist.commit_epoch()
        # Header init; the caller persists type/version/refcount fields
        # under the "metadata" and "gc" scopes (same cache line), so no
        # separate flush is issued here.
        d.write(cursor + HDR_TYPE, type_id)
        d.write(cursor + HDR_REFCOUNT, 0)
        d.write(cursor + HDR_VERSION, 0)
        return cursor + HEADER_WORDS

    def pfree(self, payload_offset: int) -> None:
        header = payload_offset - HEADER_WORDS
        d = self.device
        head = d.read(_FREE_HEAD)
        d.write(payload_offset, head)  # free-list link through the payload
        self.persist.flush(payload_offset)
        d.write(_FREE_HEAD, header)
        self.persist.flush(_FREE_HEAD)
        self.persist.commit_epoch()

    # -- header accessors -------------------------------------------------------
    def header_word(self, payload_offset: int, index: int) -> int:
        return self.device.read(payload_offset - HEADER_WORDS + index)

    def set_header_word(self, payload_offset: int, index: int,
                        value: int, logged: bool = False) -> None:
        offset = payload_offset - HEADER_WORDS + index
        if logged:
            self._tx_write(offset, value)
        else:
            self.device.write(offset, value)
            self.persist.flush(offset)
            if not self.in_transaction:
                self.persist.commit_epoch()

    def payload_size(self, payload_offset: int) -> int:
        return self.header_word(payload_offset, HDR_SIZE)

    # ------------------------------------------------------------------
    # Root directory
    # ------------------------------------------------------------------
    @publish_point("PCJ root-directory entry")
    def set_root(self, name: str, payload_offset: int) -> None:
        # Publishing store: the root entry makes *payload_offset*
        # recoverable.  The entry pair is fenced here; durability of the
        # payload object itself is the caller's obligation.
        key = _hash64(name)
        d = self.device
        if key in self._root_cache:
            index = self._root_cache[key]
        else:
            index = d.read(_ROOT_COUNT)
            if index >= _ROOT_CAPACITY:
                raise OutOfMemoryError("PCJ root directory full")
            d.write(_ROOT_COUNT, index + 1)
            self.persist.flush(_ROOT_COUNT)
            self._root_cache[key] = index
        entry = self._root_table_off + index * _ROOT_ENTRY_WORDS
        d.write(entry, key)
        d.write(entry + 1, payload_offset)
        self.persist.flush(entry, _ROOT_ENTRY_WORDS)
        self.persist.commit_epoch()

    def get_root(self, name: str) -> Optional[int]:
        key = _hash64(name)
        d = self.device
        for index in range(d.read(_ROOT_COUNT)):
            entry = self._root_table_off + index * _ROOT_ENTRY_WORDS
            if d.read(entry) == key:
                value = d.read(entry + 1)
                return value or None
        return None

    # ------------------------------------------------------------------
    # Object directory (proxy <-> native object resolution metadata)
    # ------------------------------------------------------------------
    def directory_register(self, payload_offset: int) -> None:
        """Record a new object's descriptor mapping.

        Real PCJ keeps per-object metadata so Java proxies can be
        re-associated with their native objects; this persistent insert is
        part of the "type information memorization" the paper measures at
        36.8% of a create.
        """
        d = self.device
        count = d.read(_GC_REG_COUNT)  # shares the registry region
        slot = self._gc_reg_off + ((count + 499) % _GC_REG_CAPACITY)
        d.write(slot, payload_offset)
        self.persist.persist(slot)

    # ------------------------------------------------------------------
    # GC registry (reference-counting bookkeeping)
    # ------------------------------------------------------------------
    def gc_register(self, payload_offset: int) -> None:
        """Record a newly created object for the reference-counting GC.

        This is the "add garbage collection related information to the newly
        created object" step the paper measures at 14.8% of a create.
        """
        d = self.device
        count = d.read(_GC_REG_COUNT)
        slot = self._gc_reg_off + (count % _GC_REG_CAPACITY)
        d.write(slot, payload_offset)
        self.persist.flush(slot)
        d.write(_GC_REG_COUNT, count + 1)
        self.persist.flush(_GC_REG_COUNT)
        self.persist.commit_epoch()

    # ------------------------------------------------------------------
    # Introspection for tests/benchmarks
    # ------------------------------------------------------------------
    @property
    def heap_top(self) -> int:
        return self.device.read(_HEAP_TOP)

    @property
    def heap_offset(self) -> int:
        return self._heap_off

    def free_list_length(self) -> int:
        count = 0
        cursor = self.device.read(_FREE_HEAD)
        while cursor:
            count += 1
            cursor = self.device.read(cursor + HEADER_WORDS)
        return count
