"""PCJ's persistent collections: arrays, tuples, array lists, hashmaps.

These are the data structures the Figure 15 microbenchmarks exercise
("tuples, generic arrays and hashmaps").  Every mutation rides the full
off-heap ACID envelope of :class:`~repro.pcj.base.PersistentObject` —
transaction, undo log, type-metadata validation, reference counting — which
is precisely why PJH's on-heap equivalents outrun them.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ArrayIndexOutOfBoundsException, IllegalArgumentException
from repro.pcj.base import PersistentObject
from repro.pcj.nvml import HDR_TYPE, MemoryPool
from repro.pcj.types import pcj_equals, pcj_hash


def _wrap(pool: MemoryPool, offset: int) -> Optional[PersistentObject]:
    if not offset:
        return None
    cls = pool.type_classes.get(pool.header_word(offset, HDR_TYPE),
                                PersistentObject)
    return cls.from_offset(pool, offset)


class PersistentArray(PersistentObject):
    """Fixed-length array of references: payload [length, slot...]."""

    TYPE_NAME = "PersistentArray"

    def __init__(self, pool: MemoryPool, length: int) -> None:
        if length < 0:
            raise IllegalArgumentException(f"negative length {length}")
        self._pending_length = length
        super().__init__(pool, 1 + length)

    def _init_payload(self) -> None:
        device = self.pool.device
        device.write(self.offset, self._pending_length)
        self.pool.persist.flush(self.offset)  # drained by the create tx

    def length(self) -> int:
        return self._read_word(0)

    def _check(self, index: int) -> None:
        n = self.pool.device.read(self.offset)
        if index < 0 or index >= n:
            raise ArrayIndexOutOfBoundsException(
                f"index {index} for PersistentArray of length {n}")

    def get(self, index: int) -> Optional[PersistentObject]:
        self._check(index)
        return _wrap(self.pool, self._read_word(1 + index))

    def get_offset(self, index: int) -> int:
        self._check(index)
        return self._read_word(1 + index)

    def set(self, index: int, value: Optional[PersistentObject]) -> None:
        self._check(index)
        self._write_word(1 + index, value.offset if value else 0,
                         old_is_ref=True, new_is_ref=True)

    def _release_children(self) -> None:
        n = self.pool.device.read(self.offset)
        for i in range(n):
            self._dec_offset(self.pool,
                             self.pool.device.read(self.offset + 1 + i))


class PersistentLongArray(PersistentObject):
    """Fixed-length array of primitive longs ("Primitive" in Fig. 15)."""

    TYPE_NAME = "PersistentLongArray"

    def __init__(self, pool: MemoryPool, length: int) -> None:
        if length < 0:
            raise IllegalArgumentException(f"negative length {length}")
        self._pending_length = length
        super().__init__(pool, 1 + length)

    def _init_payload(self) -> None:
        device = self.pool.device
        device.write(self.offset, self._pending_length)
        self.pool.persist.flush(self.offset)  # drained by the create tx

    def length(self) -> int:
        return self._read_word(0)

    def _check(self, index: int) -> None:
        n = self.pool.device.read(self.offset)
        if index < 0 or index >= n:
            raise ArrayIndexOutOfBoundsException(
                f"index {index} for PersistentLongArray of length {n}")

    def get(self, index: int) -> int:
        self._check(index)
        return self._read_word(1 + index)

    def set(self, index: int, value: int) -> None:
        self._check(index)
        self._write_word(1 + index, int(value))


class PersistentTuple(PersistentObject):
    """Fixed-arity tuple of references ("Tuple" in Fig. 15)."""

    TYPE_NAME = "PersistentTuple"

    def __init__(self, pool: MemoryPool, arity: int) -> None:
        if arity <= 0:
            raise IllegalArgumentException(f"tuple arity must be > 0")
        self._pending_arity = arity
        super().__init__(pool, 1 + arity)

    def _init_payload(self) -> None:
        device = self.pool.device
        device.write(self.offset, self._pending_arity)
        self.pool.persist.flush(self.offset)  # drained by the create tx

    def arity(self) -> int:
        return self._read_word(0)

    def _check(self, index: int) -> None:
        n = self.pool.device.read(self.offset)
        if index < 0 or index >= n:
            raise ArrayIndexOutOfBoundsException(
                f"position {index} for {n}-tuple")

    def get(self, index: int) -> Optional[PersistentObject]:
        self._check(index)
        return _wrap(self.pool, self._read_word(1 + index))

    def set(self, index: int, value: Optional[PersistentObject]) -> None:
        self._check(index)
        self._write_word(1 + index, value.offset if value else 0,
                         old_is_ref=True, new_is_ref=True)

    def _release_children(self) -> None:
        n = self.pool.device.read(self.offset)
        for i in range(n):
            self._dec_offset(self.pool,
                             self.pool.device.read(self.offset + 1 + i))


class PersistentArrayList(PersistentObject):
    """Growable list of references ("ArrayList" in Fig. 15).

    Payload: [size, backing-array offset].  Growth allocates a doubled
    backing :class:`PersistentArray` and copies element by element — each
    copy a full ACID write, as the off-heap design demands.
    """

    TYPE_NAME = "PersistentArrayList"
    _INITIAL_CAPACITY = 8

    def __init__(self, pool: MemoryPool) -> None:
        super().__init__(pool, 2)
        backing = PersistentArray(pool, self._INITIAL_CAPACITY)
        self._write_word(1, backing.offset, new_is_ref=True)
        backing.dec_ref()  # ownership transferred to the list

    def size(self) -> int:
        return self._read_word(0)

    def _backing(self) -> PersistentArray:
        return PersistentArray.from_offset(self.pool, self._read_word(1))

    def _check(self, index: int) -> None:
        n = self.pool.device.read(self.offset)
        if index < 0 or index >= n:
            raise ArrayIndexOutOfBoundsException(
                f"index {index} for list of size {n}")

    def add(self, value: Optional[PersistentObject]) -> None:
        size = self.size()
        backing = self._backing()
        if size >= backing.length():
            bigger = PersistentArray(self.pool, max(1, backing.length()) * 2)
            for i in range(size):
                bigger.set(i, backing.get(i))
            self._write_word(1, bigger.offset,
                             old_is_ref=True, new_is_ref=True)
            bigger.dec_ref()  # ownership transferred to the list
            backing = bigger
        backing.set(size, value)
        self._write_word(0, size + 1)

    def get(self, index: int) -> Optional[PersistentObject]:
        self._check(index)
        return self._backing().get(index)

    def set(self, index: int, value: Optional[PersistentObject]) -> None:
        self._check(index)
        self._backing().set(index, value)

    def _release_children(self) -> None:
        self._dec_offset(self.pool, self.pool.device.read(self.offset + 1))


class _HashEntry(PersistentObject):
    """Chained hashmap entry: [hash, key, value, next]."""

    TYPE_NAME = "PersistentHashEntry"

    def __init__(self, pool: MemoryPool) -> None:
        super().__init__(pool, 4)

    def _release_children(self) -> None:
        device = self.pool.device
        self._dec_offset(self.pool, device.read(self.offset + 1))
        self._dec_offset(self.pool, device.read(self.offset + 2))
        self._dec_offset(self.pool, device.read(self.offset + 3))


class PersistentHashmap(PersistentObject):
    """Chained hash map over persistent keys/values ("Hashmap" in Fig. 15).

    Payload: [size, bucket-array offset].  Keys compare by content for the
    boxed types and by identity otherwise (see
    :func:`repro.pcj.types.pcj_equals`).
    """

    TYPE_NAME = "PersistentHashmap"
    _INITIAL_BUCKETS = 16
    _LOAD_FACTOR = 0.75

    def __init__(self, pool: MemoryPool) -> None:
        super().__init__(pool, 2)
        buckets = PersistentArray(pool, self._INITIAL_BUCKETS)
        self._write_word(1, buckets.offset, new_is_ref=True)
        buckets.dec_ref()  # ownership transferred to the map

    def size(self) -> int:
        return self._read_word(0)

    def _buckets(self) -> PersistentArray:
        return PersistentArray.from_offset(self.pool, self._read_word(1))

    def put(self, key: PersistentObject,
            value: Optional[PersistentObject]) -> None:
        pool = self.pool
        buckets = self._buckets()
        h = pcj_hash(pool, key.offset)
        index = h % buckets.length()
        cursor = buckets.get_offset(index)
        while cursor:
            entry_key = pool.device.read(cursor + 1)
            if pcj_equals(pool, entry_key, key.offset):
                entry = _HashEntry.from_offset(pool, cursor)
                entry._write_word(2, value.offset if value else 0,
                                  old_is_ref=True, new_is_ref=True)
                return
            cursor = pool.device.read(cursor + 3)
        entry = _HashEntry(pool)
        entry._write_word(0, h)
        entry._write_word(1, key.offset, new_is_ref=True)
        entry._write_word(2, value.offset if value else 0, new_is_ref=True)
        entry._write_word(3, buckets.get_offset(index), new_is_ref=True)
        # Old head's chain ref transfers from the bucket to entry.next: the
        # bucket store below decrements it again, netting zero.
        buckets.set(index, entry)
        entry.dec_ref()  # ownership transferred to the bucket chain
        new_size = self.size() + 1
        self._write_word(0, new_size)
        if new_size > buckets.length() * self._LOAD_FACTOR:
            self._rehash(buckets)

    def _rehash(self, buckets: PersistentArray) -> None:
        pool = self.pool
        # Pin every entry so chain rewrites cannot free one mid-traversal.
        protected = []
        for i in range(buckets.length()):
            cursor = buckets.get_offset(i)
            while cursor:
                entry = _HashEntry.from_offset(pool, cursor)
                entry.inc_ref()
                protected.append(entry)
                cursor = pool.device.read(cursor + 3)
        bigger = PersistentArray(pool, buckets.length() * 2)
        for entry in protected:
            h = pool.device.read(entry.offset)
            target = h % bigger.length()
            entry._write_word(3, bigger.get_offset(target),
                              old_is_ref=True, new_is_ref=True)
            bigger.set(target, entry)
        self._write_word(1, bigger.offset, old_is_ref=True, new_is_ref=True)
        bigger.dec_ref()  # ownership transferred to the map
        for entry in protected:
            entry.dec_ref()  # unpin

    def get(self, key: PersistentObject) -> Optional[PersistentObject]:
        pool = self.pool
        buckets = self._buckets()
        h = pcj_hash(pool, key.offset)
        cursor = buckets.get_offset(h % buckets.length())
        while cursor:
            if pcj_equals(pool, pool.device.read(cursor + 1), key.offset):
                return _wrap(pool, pool.device.read(cursor + 2))
            cursor = pool.device.read(cursor + 3)
        return None

    def contains_key(self, key: PersistentObject) -> bool:
        return self.get(key) is not None

    def remove(self, key: PersistentObject) -> bool:
        pool = self.pool
        buckets = self._buckets()
        h = pcj_hash(pool, key.offset)
        index = h % buckets.length()
        prev = 0
        cursor = buckets.get_offset(index)
        while cursor:
            next_off = pool.device.read(cursor + 3)
            if pcj_equals(pool, pool.device.read(cursor + 1), key.offset):
                entry = _HashEntry.from_offset(pool, cursor)
                successor = _wrap(pool, next_off)
                if successor is not None:
                    successor.inc_ref()  # pin across the relink
                if prev:
                    # prev.next: entry -> successor.  The old ref to entry
                    # transfers; the explicit dec below drops it.
                    prev_entry = _HashEntry.from_offset(pool, prev)
                    prev_entry._write_word(3, next_off,
                                           old_is_ref=False, new_is_ref=True)
                    entry._write_word(3, 0, old_is_ref=True)
                    entry.dec_ref()  # chain's ref; frees the entry
                else:
                    entry._write_word(3, 0, old_is_ref=True)
                    buckets.set(index, successor)  # decs entry -> freed
                if successor is not None:
                    successor.dec_ref()  # unpin
                self._write_word(0, self.size() - 1)
                return True
            prev = cursor
            cursor = next_off
        return False

    def _release_children(self) -> None:
        self._dec_offset(self.pool, self.pool.device.read(self.offset + 1))
