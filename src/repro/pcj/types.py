"""PCJ's boxed persistent primitives (paper §2.2, Figure 5).

``PersistentInteger``, ``PersistentLong``, ``PersistentString`` et al. are
the types user classes must be rewritten against — "the type of id and name
should be modified into PersistentInteger and PersistentString
respectively" — which is the reengineering burden Espresso removes.
"""

from __future__ import annotations

from repro.pcj.base import PersistentObject
from repro.pcj.nvml import MemoryPool
from repro.runtime.objects import bits_to_float, float_to_bits


class PersistentLong(PersistentObject):
    """Boxed 64-bit integer (the Figure 6 microbenchmark type)."""

    TYPE_NAME = "PersistentLong"

    def __init__(self, pool: MemoryPool, value: int = 0) -> None:
        self._pending = int(value)
        super().__init__(pool, 1)

    def _init_payload(self) -> None:
        self.pool.device.write(self.offset, self._pending)
        self.pool.persist.flush(self.offset)  # drained by the create tx

    def long_value(self) -> int:
        return self._read_word(0)

    def set(self, value: int) -> None:
        self._write_word(0, int(value))


class PersistentInteger(PersistentLong):
    TYPE_NAME = "PersistentInteger"

    def int_value(self) -> int:
        return self.long_value()


class PersistentBoolean(PersistentLong):
    TYPE_NAME = "PersistentBoolean"

    def __init__(self, pool: MemoryPool, value: bool = False) -> None:
        super().__init__(pool, 1 if value else 0)

    def boolean_value(self) -> bool:
        return bool(self.long_value())


class PersistentDouble(PersistentObject):
    TYPE_NAME = "PersistentDouble"

    def __init__(self, pool: MemoryPool, value: float = 0.0) -> None:
        self._pending = float_to_bits(float(value))
        super().__init__(pool, 1)

    def _init_payload(self) -> None:
        self.pool.device.write(self.offset, self._pending)
        self.pool.persist.flush(self.offset)  # drained by the create tx

    def double_value(self) -> float:
        return bits_to_float(self._read_word(0))

    def set(self, value: float) -> None:
        self._write_word(0, float_to_bits(float(value)))


class PersistentString(PersistentObject):
    """Immutable persistent string: [length, one char per word]."""

    TYPE_NAME = "PersistentString"

    def __init__(self, pool: MemoryPool, text: str = "") -> None:
        self._pending = text
        super().__init__(pool, 1 + len(text))

    def _init_payload(self) -> None:
        device = self.pool.device
        device.write(self.offset, len(self._pending))
        for i, ch in enumerate(self._pending):
            device.write(self.offset + 1 + i, ord(ch))
        self.pool.persist.flush(self.offset, 1 + len(self._pending))

    def length(self) -> int:
        return self._read_word(0)

    def str_value(self) -> str:
        n = self._read_word(0)
        with self.pool.clock.scope("data"):
            return "".join(
                chr(self.pool.device.read(self.offset + 1 + i))
                for i in range(n))


def pcj_hash(pool: MemoryPool, offset: int) -> int:
    """Content hash of a persistent object (for hashmap keys).

    Boxed values hash by content; anything else hashes by identity
    (its pool offset), matching reference semantics.
    """
    from repro.pcj.nvml import HDR_TYPE
    cls = pool.type_classes.get(pool.header_word(offset, HDR_TYPE))
    if cls is not None and issubclass(cls, PersistentLong):
        return pool.device.read(offset) & 0x7FFF_FFFF
    if cls is PersistentString:
        n = pool.device.read(offset)
        h = 0
        for i in range(n):
            h = (31 * h + pool.device.read(offset + 1 + i)) & 0x7FFF_FFFF
        return h
    return offset & 0x7FFF_FFFF


def pcj_equals(pool: MemoryPool, a: int, b: int) -> bool:
    """Content equality for boxed values, identity otherwise."""
    if a == b:
        return True
    from repro.pcj.nvml import HDR_TYPE
    ta = pool.header_word(a, HDR_TYPE)
    tb = pool.header_word(b, HDR_TYPE)
    if ta != tb:
        return False
    cls = pool.type_classes.get(ta)
    if cls is not None and issubclass(cls, PersistentLong):
        return pool.device.read(a) == pool.device.read(b)
    if cls is PersistentString:
        na = pool.device.read(a)
        if na != pool.device.read(b):
            return False
        return all(pool.device.read(a + 1 + i) == pool.device.read(b + 1 + i)
                   for i in range(na))
    return False
