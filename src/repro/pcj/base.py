"""PersistentObject: the root of PCJ's separate type system (paper §2.2).

"PCJ implements a new type system based on a persistent type called
PersistentObject, and only objects whose type is a subtype of
PersistentObject can be stored in NVM."

Every field/element access goes through the pool with ACID semantics (a
transaction, undo logging, synchronisation) and reference-counting upkeep —
the off-heap design whose costs Figure 6 breaks down.  The clock scopes in
:meth:`PersistentObject.__init__` mirror that figure's categories exactly:
``transaction`` / ``gc`` / ``metadata`` / ``allocation`` / ``data``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import IllegalArgumentException
from repro.pcj.nvml import (
    DIRECTORY_LOOKUP_NS,
    HDR_REFCOUNT,
    HDR_TYPE,
    HDR_VERSION,
    NATIVE_CALL_NS,
    MemoryPool,
)


class PersistentObject:
    """Base of all PCJ types: a handle to an off-heap allocation."""

    TYPE_NAME = "PersistentObject"

    def __init__(self, pool: MemoryPool, payload_words: int,
                 _existing_offset: Optional[int] = None) -> None:
        self.pool = pool
        if _existing_offset is not None:
            self.offset = _existing_offset
            return
        clock = pool.clock
        with clock.scope("transaction"):
            pool.tx_begin()
        try:
            with clock.scope("metadata"):
                # Register the new proxy in the object directory and intern
                # its type descriptor ("type information memorization").
                clock.charge(NATIVE_CALL_NS + DIRECTORY_LOOKUP_NS)
                type_id = pool.intern_type(self.TYPE_NAME)
            with clock.scope("allocation"):
                self.offset = pool.pmalloc(payload_words, type_id)
            with clock.scope("metadata"):
                # Type information memorization: the descriptor id and a
                # version stamp are (re)written and persisted per object,
                # and the object is registered in the directory.
                pool.set_header_word(self.offset, HDR_TYPE, type_id)
                pool.set_header_word(self.offset, HDR_VERSION, 1)
                pool.directory_register(self.offset)
            with clock.scope("gc"):
                pool.set_header_word(self.offset, HDR_REFCOUNT, 1)
                pool.gc_register(self.offset)
            pool.type_classes.setdefault(
                pool.header_word(self.offset, HDR_TYPE), type(self))
            # Subclasses write their payload, then the transaction commits.
            with clock.scope("data"):
                self._init_payload()
        except BaseException:
            with clock.scope("transaction"):
                pool.tx_abort()
            raise
        else:
            with clock.scope("transaction"):
                pool.tx_commit()

    def _init_payload(self) -> None:
        """Subclass hook: write initial payload (runs inside the create tx)."""

    # ------------------------------------------------------------------
    # Identity / reattachment
    # ------------------------------------------------------------------
    @classmethod
    def from_offset(cls, pool: MemoryPool, offset: int) -> "PersistentObject":
        obj = cls.__new__(cls)
        PersistentObject.__init__(obj, pool, 0, _existing_offset=offset)
        return obj

    def same_object(self, other: Optional["PersistentObject"]) -> bool:
        return other is not None and self.offset == other.offset

    # ------------------------------------------------------------------
    # Reference counting (PCJ's GC)
    # ------------------------------------------------------------------
    @property
    def refcount(self) -> int:
        return self.pool.header_word(self.offset, HDR_REFCOUNT)

    def inc_ref(self) -> None:
        with self.pool.clock.scope("gc"):
            self.pool.set_header_word(
                self.offset, HDR_REFCOUNT, self.refcount + 1,
                logged=self.pool.in_transaction)

    def dec_ref(self) -> None:
        with self.pool.clock.scope("gc"):
            count = self.refcount - 1
            self.pool.set_header_word(self.offset, HDR_REFCOUNT, count,
                                      logged=self.pool.in_transaction)
            if count <= 0:
                self._release_children()
                self.pool.pfree(self.offset)

    def _release_children(self) -> None:
        """Subclass hook: dec_ref every referenced child before freeing."""

    @staticmethod
    def _dec_offset(pool: MemoryPool, offset: int) -> None:
        """Decrement the refcount of a raw payload offset (free at zero).

        The object's Python class is recovered through the pool's volatile
        type-class map so that typed ``_release_children`` hooks run and
        reference counting stays transitive.
        """
        if not offset:
            return
        type_id = pool.header_word(offset, HDR_TYPE)
        cls = pool.type_classes.get(type_id, PersistentObject)
        cls.from_offset(pool, offset).dec_ref()

    # ------------------------------------------------------------------
    # Guarded word access (the per-operation ACID envelope)
    # ------------------------------------------------------------------
    def _word(self, index: int) -> int:
        size = self.pool.payload_size(self.offset)
        if index < 0 or index >= size:
            raise IllegalArgumentException(
                f"payload index {index} outside [0, {size})")
        return self.pool.device.read(self.offset + index)

    def _read_word(self, index: int) -> int:
        """ACID read: JNI crossing, directory resolution, descriptor
        validation, then the actual word read."""
        clock = self.pool.clock
        with clock.scope("metadata"):
            clock.charge(NATIVE_CALL_NS + DIRECTORY_LOOKUP_NS)
            self.pool.header_word(self.offset, HDR_TYPE)
            self.pool.header_word(self.offset, HDR_VERSION)
        with clock.scope("data"):
            return self._word(index)

    def _write_word(self, index: int, value: int,
                    old_is_ref: bool = False, new_is_ref: bool = False) -> None:
        """ACID write: tx + undo log + refcount upkeep + flush."""
        clock = self.pool.clock
        pool = self.pool
        with clock.scope("transaction"):
            pool.tx_begin()
        try:
            with clock.scope("metadata"):
                clock.charge(NATIVE_CALL_NS + DIRECTORY_LOOKUP_NS)
                pool.header_word(self.offset, HDR_TYPE)
                pool.set_header_word(
                    self.offset, HDR_VERSION,
                    pool.header_word(self.offset, HDR_VERSION) + 1,
                    logged=True)
            old = self._word(index)
            with clock.scope("transaction"):
                pool.tx_add_range(self.offset + index, 1)
            with clock.scope("data"):
                pool.device.write(self.offset + index, value)
                # Deferred into the transaction's epoch: tx_commit drains
                # it (repeated writes to the same line dedupe until then).
                pool.persist.flush(self.offset + index)
            if new_is_ref and value:
                PersistentObject.from_offset(pool, value).inc_ref()
            if old_is_ref and old and old != value:
                self._dec_offset(pool, old)
        except BaseException:
            with clock.scope("transaction"):
                pool.tx_abort()
            raise
        else:
            with clock.scope("transaction"):
                pool.tx_commit()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(offset={self.offset:#x})"
