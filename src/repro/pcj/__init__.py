"""PCJ — Persistent Collections for Java (the paper's fine-grained baseline).

A from-scratch reimplementation of the design the paper critiques in §2.2:
a separate ``PersistentObject`` type system over off-heap objects managed by
an NVML-like pool, with per-operation ACID transactions and a
reference-counting collector.  Figure 6's cost breakdown and Figure 15's
PJH-vs-PCJ speedups are measured against this package.
"""

from repro.pcj.base import PersistentObject
from repro.pcj.collections import (
    PersistentArray,
    PersistentArrayList,
    PersistentHashmap,
    PersistentLongArray,
    PersistentTuple,
)
from repro.pcj.nvml import MemoryPool
from repro.pcj.types import (
    PersistentBoolean,
    PersistentDouble,
    PersistentInteger,
    PersistentLong,
    PersistentString,
)

__all__ = [
    "MemoryPool",
    "PersistentArray",
    "PersistentArrayList",
    "PersistentBoolean",
    "PersistentDouble",
    "PersistentHashmap",
    "PersistentInteger",
    "PersistentLong",
    "PersistentLongArray",
    "PersistentObject",
    "PersistentString",
    "PersistentTuple",
]
