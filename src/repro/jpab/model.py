"""JPAB entity models (paper Table 2).

Four test shapes from the JPA Performance Benchmark [33]:

* **BasicTest** — plain user-defined classes (``BasicPerson``);
* **ExtTest** — classes with inheritance relationships
  (``ExtPerson`` <- ``ExtEmployee`` <- ``ExtManager``, single-table);
* **CollectionTest** — classes containing collection members
  (``CollectionPerson`` with an @ElementCollection of phone numbers);
* **NodeTest** — classes with foreign-key-like references
  (``Node`` with a ManyToOne ``next``).
"""

from __future__ import annotations

from repro.h2.values import SqlType
from repro.jpa.annotations import Basic, ElementCollection, Id, ManyToOne, entity


@entity(table="BasicPerson")
class BasicPerson:
    id = Id(SqlType.BIGINT)
    first_name = Basic(SqlType.VARCHAR)
    last_name = Basic(SqlType.VARCHAR)
    phone = Basic(SqlType.VARCHAR)

    def __init__(self, id: int, first_name: str, last_name: str,
                 phone: str) -> None:
        self.id = id
        self.first_name = first_name
        self.last_name = last_name
        self.phone = phone


@entity(table="ExtPerson")
class ExtPerson:
    id = Id(SqlType.BIGINT)
    first_name = Basic(SqlType.VARCHAR)
    last_name = Basic(SqlType.VARCHAR)

    def __init__(self, id: int, first_name: str, last_name: str) -> None:
        self.id = id
        self.first_name = first_name
        self.last_name = last_name


@entity()
class ExtEmployee(ExtPerson):
    salary = Basic(SqlType.DOUBLE)
    department = Basic(SqlType.VARCHAR)

    def __init__(self, id: int, first_name: str, last_name: str,
                 salary: float, department: str) -> None:
        super().__init__(id, first_name, last_name)
        self.salary = salary
        self.department = department


@entity()
class ExtManager(ExtEmployee):
    bonus = Basic(SqlType.DOUBLE)

    def __init__(self, id: int, first_name: str, last_name: str,
                 salary: float, department: str, bonus: float) -> None:
        super().__init__(id, first_name, last_name, salary, department)
        self.bonus = bonus


@entity(table="CollectionPerson")
class CollectionPerson:
    id = Id(SqlType.BIGINT)
    name = Basic(SqlType.VARCHAR)
    phones = ElementCollection(SqlType.VARCHAR)

    def __init__(self, id: int, name: str, phones) -> None:
        self.id = id
        self.name = name
        self.phones = list(phones)


@entity(table="Node")
class Node:
    id = Id(SqlType.BIGINT)
    name = Basic(SqlType.VARCHAR)
    next = ManyToOne("Node")

    def __init__(self, id: int, name: str, next: "Node | None" = None) -> None:
        self.id = id
        self.name = name
        self.next = next


ALL_ENTITIES = [BasicPerson, ExtPerson, ExtEmployee, ExtManager,
                CollectionPerson, Node]
