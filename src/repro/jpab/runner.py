"""JPAB runner: throughput per operation, for either provider.

The paper's Figure 16 reports JPAB throughput of H2-JPA vs H2-PJO for the
four tests x four CRUD operations; Figure 17 breaks BasicTest down into
Execution (database) / Transformation / Other time.  This runner produces
both: per-operation simulated time + the clock's category breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.h2.engine import Database
from repro.jpa.entity_manager import JpaEntityManager
from repro.nvm.clock import Clock
from repro.obs import NULL_OBS, Observatory
from repro.pjo.provider import PjoEntityManager

from repro.jpab.workload import CrudDriver, JpabTest

OPERATIONS = ["Create", "Retrieve", "Update", "Delete"]
_RUN_ORDER = ["Create", "Retrieve", "Update", "Delete"]


@dataclass
class OperationResult:
    operation: str
    ops: int
    sim_ns: float
    breakdown: Dict[str, float] = field(default_factory=dict)
    # Per-device NVM counter deltas for this phase (flushes, fences,
    # flushes_deduped, epochs, reads, writes), keyed by device label.
    nvm: Dict[str, Dict[str, int]] = field(default_factory=dict)
    # Observatory span/counter deltas for this phase (empty when the
    # run used the no-op recorder).
    obs: Dict[str, object] = field(default_factory=dict)
    # Ref-store barrier activity for this phase: barriers run ("checks")
    # vs skipped via an analyzer certificate ("elided").  Zero for
    # providers without an Espresso VM.
    barrier: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Operations per simulated millisecond."""
        if self.sim_ns <= 0:
            return 0.0
        return self.ops / (self.sim_ns / 1e6)


@dataclass
class TestResult:
    provider: str
    test: str
    operations: Dict[str, OperationResult] = field(default_factory=dict)


def make_jpa_em(clock: Clock, entities,
                obs: Observatory = NULL_OBS) -> JpaEntityManager:
    database = Database(size_words=1 << 21, clock=clock, obs=obs)
    em = JpaEntityManager(database)
    em.create_schema(entities)
    return em


def make_pjo_em(clock: Clock, entities, heap_dir,
                field_tracking: bool = True,
                deduplication: bool = True,
                obs: Observatory = NULL_OBS,
                certify: bool = False,
                alloc_buffer_words: Optional[int] = None) -> PjoEntityManager:
    from repro.api import Espresso
    jvm = Espresso(heap_dir, clock=clock, observatory=obs)
    if alloc_buffer_words is not None:
        # Pin the TLAB size before any allocation (0 = the per-object
        # §4.1 top-persist protocol, the pre-buffer baseline).
        jvm.vm.alloc_buffer_words = alloc_buffer_words
    jvm.create_heap("jpab", 32 * 1024 * 1024)
    em = PjoEntityManager(jvm, field_tracking=field_tracking,
                          deduplication=deduplication)
    em.create_schema(entities)
    if certify:
        # Run the static closure analysis over the freshly defined dbp
        # schema and install the barrier-elision certificate.  The db.*
        # classes are persist-only by construction: the PJO provider
        # allocates them exclusively with pnew.
        from repro.analysis.closure import certify_session
        db_names = {name for name in jvm.vm.metaspace.names()
                    if name.startswith("db.")}
        certify_session(jvm, persist_only=db_names)
    return em


def _nvm_devices(em) -> Dict[str, object]:
    """Label -> NvmDevice map for whichever provider backs *em*."""
    database = getattr(em, "database", None)
    if database is not None:
        return {"h2": database.device}
    jvm = getattr(em, "jvm", None)
    if jvm is not None:
        return {name: jvm.heaps.heap(name).device
                for name in jvm.heaps.mounted_names()}
    return {}


def run_jpab_test(test: JpabTest, em_factory: Callable[[Clock], object],
                  count: int, provider: str,
                  observatory: Optional[Observatory] = None) -> TestResult:
    """One JPAB test end to end (Create -> Retrieve -> Update -> Delete).

    When *observatory* is a live recorder the factory should have routed
    it into the provider (see :func:`make_jpa_em` / :func:`make_pjo_em`);
    each operation then carries its span/counter deltas in ``result.obs``.
    """
    from repro.bench.harness import device_counters, snapshot_devices

    clock = Clock()
    em = em_factory(clock)
    driver = CrudDriver(em, test, count)
    result = TestResult(provider=provider, test=test.name)
    devices = _nvm_devices(em)
    obs = observatory if observatory is not None else NULL_OBS
    vm = getattr(getattr(em, "jvm", None), "vm", None)
    for operation in _RUN_ORDER:
        action = getattr(driver, operation.lower())
        start = clock.now_ns
        snapshot = clock.breakdown()
        nvm_before = snapshot_devices(devices)
        checks_before = vm.barrier_checks if vm is not None else 0
        elided_before = vm.barrier_elided if vm is not None else 0
        obs_before = obs.phase_snapshot() if obs.enabled else None
        with obs.span(f"jpab.{operation.lower()}", test=test.name,
                      provider=provider):
            ops = action()
        result.operations[operation] = OperationResult(
            operation=operation,
            ops=ops,
            sim_ns=clock.now_ns - start,
            breakdown=clock.breakdown_since(snapshot),
            nvm=device_counters(devices, since=nvm_before),
            obs=obs.phase_since(obs_before) if obs_before is not None else {},
            barrier=({"checks": vm.barrier_checks - checks_before,
                      "elided": vm.barrier_elided - elided_before}
                     if vm is not None else {}),
        )
    return result
