"""JPAB CRUD drivers: the same workload against either provider.

JPAB runs "normal CRUD operations" (paper §6.3) against a JPA-compatible
EntityManager.  Each test defines how to construct and mutate its entities;
the driver supplies the four operations — Create (batched transactional
persists), Retrieve (finds against a cleared identity map), Update (find,
modify, commit) and Delete (find, remove, commit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence, Type

from repro.jpa.entity_manager import AbstractEntityManager

from repro.jpab.model import (
    BasicPerson,
    CollectionPerson,
    ExtEmployee,
    ExtManager,
    ExtPerson,
    Node,
)

BATCH = 10  # entities per transaction, JPAB-style


@dataclass(frozen=True)
class JpabTest:
    """One of the four JPAB tests: its entities and object factories."""

    name: str
    description: str
    entities: Sequence[Type]
    find_class: Type
    make: Callable[[int], Any]
    mutate: Callable[[Any, int], None]


def _make_basic(i: int) -> BasicPerson:
    return BasicPerson(i, f"First{i}", f"Last{i}", f"+1-555-{i:06d}")


def _mutate_basic(person: BasicPerson, i: int) -> None:
    person.phone = f"+1-999-{i:06d}"


def _make_ext(i: int):
    if i % 3 == 0:
        return ExtPerson(i, f"First{i}", f"Last{i}")
    if i % 3 == 1:
        return ExtEmployee(i, f"First{i}", f"Last{i}", 1000.0 + i, f"dept{i % 7}")
    return ExtManager(i, f"First{i}", f"Last{i}", 2000.0 + i, f"dept{i % 7}",
                      500.0 + i)


def _mutate_ext(person, i: int) -> None:
    person.last_name = f"Updated{i}"
    if isinstance(person, ExtEmployee):
        person.salary = 3000.0 + i


def _make_collection(i: int) -> CollectionPerson:
    return CollectionPerson(i, f"Person{i}",
                            [f"+1-555-{i:06d}-{j}" for j in range(3)])


def _mutate_collection(person: CollectionPerson, i: int) -> None:
    # Assignment (not in-place mutation) so the enhancer sees the write.
    person.phones = list(person.phones) + [f"+1-777-{i:06d}"]


def _make_node(i: int) -> Node:
    # Chains of BATCH nodes: node i points at node i-1 within its batch.
    return Node(i, f"node{i}")


def _mutate_node(node: Node, i: int) -> None:
    node.name = f"renamed{i}"


BASIC_TEST = JpabTest(
    "BasicTest", "Testing over basic user-defined classes",
    [BasicPerson], BasicPerson, _make_basic, _mutate_basic)
EXT_TEST = JpabTest(
    "ExtTest", "Testing over classes with inheritance relationships",
    [ExtPerson, ExtEmployee, ExtManager], ExtPerson, _make_ext, _mutate_ext)
COLLECTION_TEST = JpabTest(
    "CollectionTest", "Testing over classes containing collection members",
    [CollectionPerson], CollectionPerson, _make_collection,
    _mutate_collection)
NODE_TEST = JpabTest(
    "NodeTest", "Testing over classes with foreign-key-like references",
    [Node], Node, _make_node, _mutate_node)

ALL_TESTS = [BASIC_TEST, EXT_TEST, COLLECTION_TEST, NODE_TEST]


class CrudDriver:
    """Runs the four JPAB operations for one test on one EntityManager."""

    def __init__(self, em: AbstractEntityManager, test: JpabTest,
                 count: int) -> None:
        self.em = em
        self.test = test
        self.count = count

    def create(self) -> int:
        em, test = self.em, self.test
        done = 0
        previous = None
        for start in range(0, self.count, BATCH):
            tx = em.get_transaction()
            tx.begin()
            previous = None  # chains do not cross transactions
            for i in range(start, min(start + BATCH, self.count)):
                obj = test.make(i)
                if isinstance(obj, Node):
                    obj.next = previous
                    previous = obj
                em.persist(obj)
                done += 1
            tx.commit()
        return done

    def retrieve(self) -> int:
        em, test = self.em, self.test
        em.clear()  # force real loads, not identity-map hits
        found = 0
        for i in range(self.count):
            obj = em.find(test.find_class, i)
            if obj is not None:
                found += 1
        return found

    def update(self) -> int:
        em, test = self.em, self.test
        em.clear()
        done = 0
        for start in range(0, self.count, BATCH):
            tx = em.get_transaction()
            tx.begin()
            for i in range(start, min(start + BATCH, self.count)):
                obj = em.find(test.find_class, i)
                if obj is not None:
                    test.mutate(obj, i)
                    done += 1
            tx.commit()
        return done

    def delete(self) -> int:
        em, test = self.em, self.test
        em.clear()
        done = 0
        for start in range(0, self.count, BATCH):
            tx = em.get_transaction()
            tx.begin()
            for i in range(start, min(start + BATCH, self.count)):
                obj = em.find(test.find_class, i)
                if obj is not None:
                    em.remove(obj)
                    done += 1
            tx.commit()
        return done
