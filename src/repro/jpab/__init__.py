"""JPAB — the JPA Performance Benchmark port (paper §6.3, Table 2)."""

from repro.jpab.model import (
    ALL_ENTITIES,
    BasicPerson,
    CollectionPerson,
    ExtEmployee,
    ExtManager,
    ExtPerson,
    Node,
)
from repro.jpab.runner import (
    OPERATIONS,
    OperationResult,
    TestResult,
    make_jpa_em,
    make_pjo_em,
    run_jpab_test,
)
from repro.jpab.workload import (
    ALL_TESTS,
    BASIC_TEST,
    COLLECTION_TEST,
    CrudDriver,
    EXT_TEST,
    JpabTest,
    NODE_TEST,
)

__all__ = [
    "ALL_ENTITIES",
    "ALL_TESTS",
    "BASIC_TEST",
    "BasicPerson",
    "COLLECTION_TEST",
    "CollectionPerson",
    "CrudDriver",
    "EXT_TEST",
    "ExtEmployee",
    "ExtManager",
    "ExtPerson",
    "JpabTest",
    "NODE_TEST",
    "Node",
    "OPERATIONS",
    "OperationResult",
    "TestResult",
    "make_jpa_em",
    "make_pjo_em",
    "run_jpab_test",
]
