"""The session core is fully re-entrant: many live Espresso instances.

The fleet layer (repro.fleet) mounts K shard sessions in one process, so
two concurrently open sessions must share *nothing* unless explicitly
told to (a common Clock is the one sanctioned shared object).  Pinned
here: device stats, persist-domain epochs, observatories, clocks,
safety certificates and @persistent_type registries are all
per-instance, and the lint gate (ESP305) keeps the session/core layers
free of module-level mutable state.
"""

from pathlib import Path

from repro.analysis.srclint import lint_paths
from repro.api import Espresso, EspressoConfig
from repro.nvm.clock import Clock
from repro.obs import Observatory
from repro.runtime.klass import FieldKind, field

SRC = Path(__file__).resolve().parents[2] / "src"


def _session(root, name, obs=None):
    cfg = EspressoConfig(observatory=obs)
    jvm = Espresso(root / name, config=cfg)
    jvm.define_class("Node", [field("v", FieldKind.INT),
                              field("next", FieldKind.REF)])
    jvm.create_heap("h", 256 * 1024)
    return jvm


def _churn(jvm, n=8):
    prev = None
    for i in range(n):
        node = jvm.pnew("Node")
        jvm.set_field(node, "v", i)
        if prev is not None:
            jvm.set_field(node, "next", prev)
        jvm.flush_reachable(node)
        prev = node
    jvm.set_root("list", prev)


def test_two_sessions_have_independent_device_stats_and_epochs(tmp_path):
    a = _session(tmp_path, "a")
    b = _session(tmp_path, "b")
    before = b.heaps.heap("h").device.stats.snapshot()

    _churn(a)

    stats_a = a.heaps.heap("h").device.stats
    delta_b = b.heaps.heap("h").device.stats.delta(before)
    assert stats_a.flushes > 0 and stats_a.epochs > 0
    # b saw none of a's traffic: no writes, no flushes, no fence epochs.
    assert delta_b.as_dict() == {"reads": 0, "writes": 0, "flushes": 0,
                                 "fences": 0, "flushes_deduped": 0,
                                 "epochs": 0, "flushes_elided": 0,
                                 "fences_elided": 0}


def test_two_sessions_have_independent_clocks_and_observatories(tmp_path):
    obs_a, obs_b = Observatory(), Observatory()
    a = _session(tmp_path, "a", obs_a)
    b = _session(tmp_path, "b", obs_b)
    assert a.clock is not b.clock
    b_now = b.clock.now_ns
    b_counters = obs_b.metrics.counters_snapshot()

    _churn(a)
    a.persistent_gc()

    assert a.clock.now_ns > 0
    assert b.clock.now_ns == b_now                      # b's time unmoved
    assert obs_b.metrics.counters_since(b_counters) == {}
    assert any(k.startswith("gc.") or k.startswith("pgc.")
               for k in obs_a.metrics.counters_snapshot())


def test_shared_clock_is_opt_in(tmp_path):
    clock = Clock()
    a = Espresso(tmp_path / "a", config=EspressoConfig(clock=clock))
    b = Espresso(tmp_path / "b", config=EspressoConfig(clock=clock))
    assert a.clock is clock and b.clock is clock


def test_certificates_and_type_registries_are_per_session(tmp_path):
    a = _session(tmp_path, "a")
    b = _session(tmp_path, "b")
    marker = object()
    a.config.safety_certificate = marker
    a.vm.safety_certificate = marker
    a.persistent_type("Node")
    assert b.vm.safety_certificate is None
    assert b.config.safety_certificate is None
    assert "Node" not in b.config.persistent_types
    assert a.config.persistent_types is not b.config.persistent_types


def test_esp305_clean_on_session_and_core_layers():
    """The re-entrancy contract is lint-enforced, not just test-enforced."""
    findings = lint_paths([SRC], rules=("ESP305",))
    assert findings == []
