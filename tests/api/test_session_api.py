"""The redesigned Espresso session API: surface, aliases, config carry.

Three contracts pinned here:

* the canonical public surface (names + signatures) is a reviewed
  artifact — adding, removing or reshaping a method must show up as a
  diff in ``EXPECTED_SURFACE``;
* every Java-spelled Table 1 alias still works, warns exactly once per
  process with ``DeprecationWarning``, and delegates to its snake_case
  canonical twin;
* ``restart()`` / ``restart(crash=True)`` carry the *full* session
  config — clock, latency, heap config, alias awareness, observatory,
  ``gc_workers``, ``mutators`` — instead of silently resetting knobs to
  defaults (``crash_and_restart()`` remains as a warning shim).
"""

import inspect
import warnings
from pathlib import Path

import pytest

from repro.api import Espresso, EspressoConfig
from repro.nvm.clock import Clock
from repro.nvm.latency import LatencyConfig
from repro.obs import NULL_OBS, Observatory
from repro.runtime.dram_heap import HeapConfig
from repro.runtime.klass import FieldKind, field

# The canonical surface: public method name -> parameter names
# (self excluded).  Java aliases are listed separately below.
EXPECTED_SURFACE = {
    "open": ["heap_dir", "name", "legacy", "size_bytes", "safety",
             "region_words", "config"],
    "session": ["heap_dir", "name", "size_bytes", "safety",
                "region_words", "config"],
    "define_class": ["name", "fields", "super_klass"],
    "new": ["klass"],
    "new_array": ["element", "length"],
    "new_string": ["text"],
    "new_multi_array": ["element", "dims"],
    "pnew": ["klass", "heap"],
    "pnew_array": ["element", "length", "heap"],
    "pnew_string": ["text", "heap"],
    "pnew_multi_array": ["element", "dims", "heap"],
    "get_declared_field": ["handle", "field_name"],
    "set_field": ["handle", "name", "value"],
    "get_field": ["handle", "name"],
    "array_get": ["handle", "index"],
    "array_set": ["handle", "index", "value"],
    "array_length": ["handle"],
    "read_string": ["handle"],
    "checkcast": ["handle", "target"],
    "instance_of": ["handle", "target"],
    "create_heap": ["name", "size_bytes", "safety", "region_words"],
    "load_heap": ["name", "safety", "salvage"],
    "exists_heap": ["name"],
    "set_root": ["root_name", "value", "heap"],
    "get_root": ["root_name", "heap"],
    "flush_field": ["handle", "field_name"],
    "flush_array_element": ["handle", "index"],
    "flush_object": ["handle"],
    "flush_reachable": ["handle"],
    "system_gc": [],
    "persistent_gc": ["heap"],
    "persistent_type": ["target"],
    "reset_deprecation_warnings": [],
    "register_task": ["name", "fn"],
    "resumable_task": ["name", "heap"],
    "shutdown": [],
    "crash": [],
    "restart": ["crash"],
    "crash_and_restart": [],
    "mutator_gang": ["seed", "mutators"],
}

JAVA_ALIASES = {
    "createHeap": "create_heap",
    "loadHeap": "load_heap",
    "existsHeap": "exists_heap",
    "setRoot": "set_root",
    "getRoot": "get_root",
}


def _params(func):
    return [p for p in inspect.signature(func).parameters if p != "self"]


def test_api_surface_snapshot():
    surface = {}
    for name, member in vars(Espresso).items():
        if name.startswith("_") or name in JAVA_ALIASES:
            continue
        if isinstance(member, property):
            continue
        func = member.__func__ if isinstance(member, classmethod) else member
        if callable(func):
            params = _params(func)
            if isinstance(member, classmethod):
                params = [p for p in params if p != "cls"]
            surface[name] = params
    assert surface == EXPECTED_SURFACE


def test_java_aliases_share_canonical_signatures():
    for java, snake in JAVA_ALIASES.items():
        assert _params(getattr(Espresso, java)) \
            == _params(getattr(Espresso, snake)), java


def test_properties_exposed():
    assert isinstance(Espresso.clock, property)
    assert isinstance(Espresso.obs, property)


def test_config_dataclass_fields():
    assert [f.name for f in EspressoConfig.__dataclass_fields__.values()] \
        == ["clock", "latency", "heap_config", "alias_aware", "observatory",
            "gc_workers", "mutators", "safety_certificate",
            "elision_certificate", "alloc_buffer_words", "resumable",
            "task_registry", "persistent_types"]


def test_each_alias_warns_once_and_delegates(tmp_path):
    jvm = Espresso(tmp_path / "heaps")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        jvm.createHeap("h", 64 * 1024)
        assert jvm.existsHeap("h")
        assert not jvm.existsHeap("nope")        # second call: no new warning
        node = jvm.define_class("N", [field("v", FieldKind.INT)])
        n = jvm.pnew(node)
        jvm.setRoot("r", n)
        assert jvm.getRoot("r") is not None
        jvm2 = jvm.restart()
        jvm2.loadHeap("h")
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    messages = sorted(str(w.message).split("(")[0] for w in deprecations)
    # one warning per distinct alias, regardless of call count
    assert len(deprecations) == 5, messages
    for java, snake in JAVA_ALIASES.items():
        assert any(java in str(w.message) and snake in str(w.message)
                   for w in deprecations), java


def test_alias_warns_again_after_reset(tmp_path):
    jvm = Espresso(tmp_path / "heaps")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        jvm.existsHeap("x")
        jvm.reset_deprecation_warnings()
        jvm.existsHeap("x")
    assert len([w for w in caught
                if issubclass(w.category, DeprecationWarning)]) == 2


def test_alias_warnings_deduped_per_session_not_per_process(tmp_path):
    """Two live sessions each warn once: the dedup set is per instance."""
    a = Espresso(tmp_path / "a")
    b = Espresso(tmp_path / "b")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        a.existsHeap("x")
        b.existsHeap("x")
        a.existsHeap("x")
        b.existsHeap("x")
    assert len([w for w in caught
                if issubclass(w.category, DeprecationWarning)]) == 2


def test_alias_raises_on_every_call_under_error_filter(tmp_path):
    """``-W error::DeprecationWarning`` must fail every aliased call:
    marking the dedup set before the warn would swallow all later
    errors and silently let legacy spellings back in."""
    jvm = Espresso(tmp_path / "heaps")
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        for _ in range(2):
            with pytest.raises(DeprecationWarning, match="existsHeap"):
                jvm.existsHeap("x")
        with pytest.raises(DeprecationWarning, match="size_bytes="):
            Espresso.open(tmp_path / "h2", "box", 128 * 1024)
        with pytest.raises(DeprecationWarning, match="size_bytes="):
            Espresso.open(tmp_path / "h3", "box", 128 * 1024)
    # The swallowed-error calls never reached the dedup set, so the
    # session still owes its one ordinary warning.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        jvm.existsHeap("x")
    assert len([w for w in caught
                if issubclass(w.category, DeprecationWarning)]) == 1


def test_snake_case_calls_never_warn(tmp_path):
    jvm = Espresso(tmp_path / "heaps")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        jvm.create_heap("h", 64 * 1024)
        jvm.exists_heap("h")
        node = jvm.define_class("N", [field("v", FieldKind.INT)])
        n = jvm.pnew(node)
        jvm.set_root("r", n)
        jvm.get_root("r")
    assert [w for w in caught
            if issubclass(w.category, DeprecationWarning)] == []


def test_open_creates_then_loads(tmp_path):
    jvm = Espresso.open(tmp_path / "heaps", "box", size_bytes=128 * 1024)
    node = jvm.define_class("N", [field("v", FieldKind.INT)])
    n = jvm.pnew(node)
    jvm.set_field(n, "v", 41)
    jvm.flush_reachable(n)
    jvm.set_root("r", n)
    jvm.shutdown()

    jvm2 = Espresso.open(tmp_path / "heaps", "box")  # exists: no size needed
    jvm2.define_class("N", [field("v", FieldKind.INT)])
    assert jvm2.get_field(jvm2.get_root("r"), "v") == 41


def test_open_positional_size_bytes_warns_once(tmp_path):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        jvm = Espresso.open(tmp_path / "heaps", "box", 128 * 1024)
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "size_bytes=" in str(deprecations[0].message)
    assert jvm.exists_heap("box")


def test_open_missing_heap_without_size_raises(tmp_path):
    from repro.errors import IllegalArgumentException
    with pytest.raises(IllegalArgumentException):
        Espresso.open(tmp_path / "heaps", "nope")


def test_session_context_manager_creates_then_loads(tmp_path):
    with Espresso.session(tmp_path / "heaps", "box",
                          size_bytes=128 * 1024) as jvm:
        node = jvm.define_class("N", [field("v", FieldKind.INT)])
        n = jvm.pnew(node)
        jvm.set_field(n, "v", 43)
        jvm.flush_reachable(n)
        jvm.set_root("r", n)
    # clean exit shut the session down; reopening sees the data
    with Espresso.session(tmp_path / "heaps", "box") as jvm2:
        jvm2.define_class("N", [field("v", FieldKind.INT)])
        assert jvm2.get_field(jvm2.get_root("r"), "v") == 43


def test_open_heap_is_the_way_in(tmp_path):
    import repro
    with repro.open_heap(tmp_path / "heaps", "box",
                         size_bytes=128 * 1024) as jvm:
        assert jvm.exists_heap("box")


def test_restart_carries_full_config(tmp_path):
    clock = Clock()
    latency = LatencyConfig(nvm_read_ns=999, nvm_write_ns=999,
                            clflush_ns=999, sfence_ns=999)
    heap_config = HeapConfig(eden_words=4096)
    obs = Observatory()
    jvm = Espresso(tmp_path / "heaps",
                   config=EspressoConfig(clock=clock, latency=latency,
                                         heap_config=heap_config,
                                         alias_aware=False,
                                         observatory=obs))
    jvm.create_heap("h", 64 * 1024)
    jvm2 = jvm.restart()
    assert jvm2.clock is clock                      # explicit clock: shared
    assert jvm2.config.latency is latency
    assert jvm2.config.heap_config is heap_config
    assert jvm2.config.alias_aware is False
    assert jvm2.obs is obs                          # observatory carried
    assert jvm2.vm.alias_aware is False


def test_crash_restart_carries_full_config(tmp_path):
    obs = Observatory()
    latency = LatencyConfig(nvm_read_ns=7, nvm_write_ns=7,
                            clflush_ns=7, sfence_ns=7)
    jvm = Espresso(tmp_path / "heaps", latency=latency, alias_aware=False,
                   observatory=obs, gc_workers=3, mutators=4)
    jvm.create_heap("h", 64 * 1024)
    jvm2 = jvm.restart(crash=True)
    assert jvm2.config.latency is latency
    assert jvm2.config.alias_aware is False
    assert jvm2.obs is obs
    assert jvm2.config.gc_workers == 3
    assert jvm2.config.mutators == 4
    # the carried knob sizes the default gang of the restarted session
    assert jvm2.mutator_gang().n == 4
    assert jvm2.mutator_gang(mutators=2).n == 2


def test_restart_carries_mutators_without_crash(tmp_path):
    jvm = Espresso(tmp_path / "heaps", mutators=8)
    jvm.create_heap("h", 64 * 1024)
    jvm2 = jvm.restart()
    assert jvm2.config.mutators == 8
    assert jvm2.mutator_gang().n == 8


def test_crash_and_restart_shim_warns_once_and_delegates(tmp_path):
    obs = Observatory()
    jvm = Espresso(tmp_path / "heaps", observatory=obs, mutators=2)
    jvm.create_heap("h", 64 * 1024)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        jvm2 = jvm.crash_and_restart()
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "restart(crash=True)" in str(deprecations[0].message)
    assert jvm2.obs is obs
    assert jvm2.config.mutators == 2


def test_restarted_observatory_rebinds_to_new_clock(tmp_path):
    obs = Observatory()
    jvm = Espresso(tmp_path / "heaps", observatory=obs)
    jvm.create_heap("h", 64 * 1024)
    jvm2 = jvm.restart()
    # config.clock was None, so the successor made a fresh Clock; the
    # carried observatory must follow it (last-bind-wins).
    assert obs.clock is jvm2.clock


def test_default_session_uses_null_obs(tmp_path):
    jvm = Espresso(tmp_path / "heaps")
    assert jvm.obs is NULL_OBS
    assert jvm.obs.enabled is False


def test_heap_dir_kept_as_path(tmp_path):
    jvm = Espresso(str(tmp_path / "heaps"))
    assert isinstance(jvm.heap_dir, Path)
