"""Tests for the em.query predicate language on both providers."""

import pytest

from repro.errors import IllegalArgumentException, SqlError
from repro.jpab import make_jpa_em, make_pjo_em
from repro.jpab.model import ALL_ENTITIES, BasicPerson, Node
from repro.nvm.clock import Clock


def make_em(provider, tmp_path):
    if provider == "jpa":
        return make_jpa_em(Clock(), ALL_ENTITIES)
    return make_pjo_em(Clock(), ALL_ENTITIES, tmp_path / "heaps")


def seed(em):
    tx = em.get_transaction()
    tx.begin()
    em.persist(BasicPerson(1, "Ada", "Lovelace", "+44"))
    em.persist(BasicPerson(2, "Alan", "Turing", "+44"))
    em.persist(BasicPerson(3, "Grace", "Hopper", "+1"))
    em.persist(BasicPerson(4, "Nil", "Phone", None))
    hub = Node(100, "hub")
    em.persist(Node(101, "spoke-a", next=hub))
    em.persist(Node(102, "spoke-b", next=hub))
    em.persist(Node(103, "floater"))
    tx.commit()
    em.clear()


@pytest.mark.parametrize("provider", ["jpa", "pjo"])
class TestQueryLanguage:
    def test_equality_with_params(self, provider, tmp_path):
        em = make_em(provider, tmp_path)
        seed(em)
        found = em.query(BasicPerson, "phone = ?", ("+44",))
        assert sorted(p.id for p in found) == [1, 2]

    def test_and_with_comparison(self, provider, tmp_path):
        em = make_em(provider, tmp_path)
        seed(em)
        found = em.query(BasicPerson, "phone = ? AND id > ?", ("+44", 1))
        assert [p.id for p in found] == [2]

    def test_or(self, provider, tmp_path):
        em = make_em(provider, tmp_path)
        seed(em)
        found = em.query(BasicPerson,
                         "first_name = 'Ada' OR first_name = 'Grace'")
        assert sorted(p.id for p in found) == [1, 3]

    def test_like(self, provider, tmp_path):
        em = make_em(provider, tmp_path)
        seed(em)
        found = em.query(BasicPerson, "last_name LIKE '%ng'")
        assert [p.last_name for p in found] == ["Turing"]

    def test_is_null(self, provider, tmp_path):
        em = make_em(provider, tmp_path)
        seed(em)
        assert [p.id for p in em.query(BasicPerson, "phone IS NULL")] == [4]
        assert sorted(p.id for p in
                      em.query(BasicPerson, "phone IS NOT NULL")) == [1, 2, 3]

    def test_null_comparisons_are_unknown(self, provider, tmp_path):
        em = make_em(provider, tmp_path)
        seed(em)
        # NULL phone matches neither the predicate nor its negation.
        eq = {p.id for p in em.query(BasicPerson, "phone = '+44'")}
        ne = {p.id for p in em.query(BasicPerson, "NOT (phone = '+44')")}
        assert 4 not in eq and 4 not in ne

    def test_between_and_in(self, provider, tmp_path):
        em = make_em(provider, tmp_path)
        seed(em)
        assert sorted(p.id for p in
                      em.query(BasicPerson, "id BETWEEN 2 AND 3")) == [2, 3]
        assert sorted(p.id for p in
                      em.query(BasicPerson, "id IN (1, 4, 99)")) == [1, 4]

    def test_reference_compares_by_fk(self, provider, tmp_path):
        em = make_em(provider, tmp_path)
        seed(em)
        spokes = em.query(Node, "next = ?", (100,))
        assert sorted(n.id for n in spokes) == [101, 102]
        floaters = em.query(Node, "next IS NULL AND id > ?", (100,))
        assert [n.id for n in floaters] == [103]

    def test_arithmetic(self, provider, tmp_path):
        em = make_em(provider, tmp_path)
        seed(em)
        found = em.query(BasicPerson, "id * 2 = 6")
        assert [p.id for p in found] == [3]

    def test_unknown_field_rejected(self, provider, tmp_path):
        em = make_em(provider, tmp_path)
        seed(em)
        with pytest.raises(IllegalArgumentException):
            em.query(BasicPerson, "nope = 1")

    def test_malformed_predicate_rejected(self, provider, tmp_path):
        em = make_em(provider, tmp_path)
        with pytest.raises(SqlError):
            em.query(BasicPerson, "id = = 3")

    def test_results_are_managed(self, provider, tmp_path):
        em = make_em(provider, tmp_path)
        seed(em)
        tx = em.get_transaction()
        tx.begin()
        ada = em.query(BasicPerson, "id = 1")[0]
        ada.phone = "+0"
        tx.commit()
        em.clear()
        assert em.find(BasicPerson, 1).phone == "+0"


def test_providers_agree_on_query_results(tmp_path):
    jpa = make_em("jpa", tmp_path / "a")
    pjo = make_em("pjo", tmp_path / "b")
    seed(jpa)
    seed(pjo)
    for predicate, params in [
        ("phone = ?", ("+44",)),
        ("id > 1 AND id < 4", ()),
        ("last_name LIKE 'H%' OR phone IS NULL", ()),
        ("id + 1 = 3", ()),
    ]:
        a = sorted(p.id for p in jpa.query(BasicPerson, predicate, params))
        b = sorted(p.id for p in pjo.query(BasicPerson, predicate, params))
        assert a == b, predicate
