"""Query API tests: find_by/find_all/count on both providers."""

import pytest

from repro.errors import IllegalArgumentException
from repro.jpab import make_jpa_em, make_pjo_em
from repro.jpab.model import ALL_ENTITIES, BasicPerson, ExtEmployee, ExtPerson
from repro.nvm.clock import Clock


def providers(tmp_path):
    yield "jpa", make_jpa_em(Clock(), ALL_ENTITIES)
    yield "pjo", make_pjo_em(Clock(), ALL_ENTITIES, tmp_path / "heaps")


def seed(em):
    tx = em.get_transaction()
    tx.begin()
    em.persist(BasicPerson(1, "Ada", "Lovelace", "+44"))
    em.persist(BasicPerson(2, "Alan", "Turing", "+44"))
    em.persist(BasicPerson(3, "Grace", "Hopper", "+1"))
    em.persist(ExtPerson(10, "Plain", "Person"))
    em.persist(ExtEmployee(11, "Emp", "Loyee", 100.0, "eng"))
    tx.commit()
    em.clear()


@pytest.mark.parametrize("provider", ["jpa", "pjo"])
def test_find_by(tmp_path, provider):
    em = dict(providers(tmp_path))[provider]
    seed(em)
    found = em.find_by(BasicPerson, "phone", "+44")
    assert sorted(p.id for p in found) == [1, 2]
    assert all(isinstance(p, BasicPerson) for p in found)


@pytest.mark.parametrize("provider", ["jpa", "pjo"])
def test_find_by_no_matches(tmp_path, provider):
    em = dict(providers(tmp_path))[provider]
    seed(em)
    assert em.find_by(BasicPerson, "phone", "+99") == []


@pytest.mark.parametrize("provider", ["jpa", "pjo"])
def test_find_all(tmp_path, provider):
    em = dict(providers(tmp_path))[provider]
    seed(em)
    assert sorted(p.id for p in em.find_all(BasicPerson)) == [1, 2, 3]


@pytest.mark.parametrize("provider", ["jpa", "pjo"])
def test_find_all_filters_by_subclass(tmp_path, provider):
    em = dict(providers(tmp_path))[provider]
    seed(em)
    # ExtPerson matches the whole hierarchy; ExtEmployee only itself.
    assert sorted(p.id for p in em.find_all(ExtPerson)) == [10, 11]
    assert [p.id for p in em.find_all(ExtEmployee)] == [11]


@pytest.mark.parametrize("provider", ["jpa", "pjo"])
def test_count(tmp_path, provider):
    em = dict(providers(tmp_path))[provider]
    seed(em)
    assert em.count(BasicPerson) == 3
    assert em.count(ExtPerson) == 2  # hierarchy table count


@pytest.mark.parametrize("provider", ["jpa", "pjo"])
def test_find_by_unknown_field(tmp_path, provider):
    em = dict(providers(tmp_path))[provider]
    with pytest.raises(IllegalArgumentException):
        em.find_by(BasicPerson, "no_such_field", 1)


@pytest.mark.parametrize("provider", ["jpa", "pjo"])
def test_query_results_are_managed(tmp_path, provider):
    """Mutating a query result and committing persists the change."""
    em = dict(providers(tmp_path))[provider]
    seed(em)
    tx = em.get_transaction()
    tx.begin()
    ada = em.find_by(BasicPerson, "first_name", "Ada")[0]
    ada.phone = "+999"
    tx.commit()
    em.clear()
    assert em.find(BasicPerson, 1).phone == "+999"


@pytest.mark.parametrize("provider", ["jpa", "pjo"])
def test_find_by_and_find_agree(tmp_path, provider):
    em = dict(providers(tmp_path))[provider]
    seed(em)
    by_query = em.find_by(BasicPerson, "first_name", "Grace")[0]
    by_pk = em.find(BasicPerson, 3)
    assert by_query is by_pk  # identity map: one managed instance
