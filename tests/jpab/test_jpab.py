"""JPAB workload tests: both providers run the same benchmark correctly."""

import pytest

from repro.jpab import (
    ALL_TESTS,
    BASIC_TEST,
    CrudDriver,
    make_jpa_em,
    make_pjo_em,
    run_jpab_test,
)
from repro.nvm.clock import Clock

COUNT = 20


def jpa_factory(clock):
    return make_jpa_em(clock, _entities_of_current_test)


def _em_for(provider, test, clock, tmp_path):
    if provider == "jpa":
        return make_jpa_em(clock, test.entities)
    return make_pjo_em(clock, test.entities, tmp_path / "heaps")


@pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
@pytest.mark.parametrize("provider", ["jpa", "pjo"])
def test_full_crud_cycle(test, provider, tmp_path):
    clock = Clock()
    em = _em_for(provider, test, clock, tmp_path)
    driver = CrudDriver(em, test, COUNT)
    assert driver.create() == COUNT
    assert driver.retrieve() == COUNT
    assert driver.update() == COUNT
    # Updates are visible.
    em.clear()
    obj = em.find(test.find_class, 3)
    assert obj is not None
    assert driver.delete() == COUNT
    em.clear()
    assert em.find(test.find_class, 3) is None


@pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
def test_providers_agree_on_data(test, tmp_path):
    """Both providers materialise identical entities from the workload."""
    clock_a, clock_b = Clock(), Clock()
    em_jpa = make_jpa_em(clock_a, test.entities)
    em_pjo = make_pjo_em(clock_b, test.entities, tmp_path / "heaps")
    for em in (em_jpa, em_pjo):
        CrudDriver(em, test, COUNT).create()
        em.clear()
    for i in range(COUNT):
        a = em_jpa.find(test.find_class, i)
        b = em_pjo.find(test.find_class, i)
        assert type(a) is type(b)
        meta_fields = [name for name, _ in a._espresso_meta.columns]
        for name in meta_fields:
            assert getattr(a, name) == getattr(b, name), (i, name)


def test_run_jpab_test_produces_throughput(tmp_path):
    result = run_jpab_test(
        BASIC_TEST,
        lambda clock: make_pjo_em(clock, BASIC_TEST.entities,
                                  tmp_path / "heaps"),
        count=15, provider="H2-PJO")
    assert set(result.operations) == {"Create", "Retrieve", "Update",
                                      "Delete"}
    for op in result.operations.values():
        assert op.ops == 15
        assert op.sim_ns > 0
        assert op.throughput > 0


def test_pjo_faster_than_jpa_on_basictest(tmp_path):
    """The headline Figure 16 direction: H2-PJO beats H2-JPA everywhere."""
    jpa = run_jpab_test(BASIC_TEST,
                        lambda c: make_jpa_em(c, BASIC_TEST.entities),
                        count=25, provider="H2-JPA")
    pjo = run_jpab_test(BASIC_TEST,
                        lambda c: make_pjo_em(c, BASIC_TEST.entities,
                                              tmp_path / "heaps"),
                        count=25, provider="H2-PJO")
    for op in ("Create", "Retrieve", "Update", "Delete"):
        assert pjo.operations[op].throughput > jpa.operations[op].throughput, \
            f"{op}: PJO should outperform JPA"
