"""Property test: random CRUD sequences agree across providers and a model.

Hypothesis drives random persist/update/remove/find sequences against the
JPA provider, the PJO provider and a plain Python dict; all three must
agree after every committed transaction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpab import make_jpa_em, make_pjo_em
from repro.jpab.model import BasicPerson
from repro.nvm.clock import Clock


operations = st.lists(
    st.tuples(st.sampled_from(["persist", "update", "remove"]),
              st.integers(0, 8),          # pk
              st.text(min_size=0, max_size=8)),  # phone payload
    min_size=1, max_size=25)


def apply_ops(em, ops):
    """Apply one batch per op (each its own transaction); return the model."""
    model = {}
    for op, pk, payload in ops:
        tx = em.get_transaction()
        tx.begin()
        if op == "persist":
            if pk not in model:
                em.persist(BasicPerson(pk, f"F{pk}", f"L{pk}", payload))
                model[pk] = payload
        elif op == "update":
            if pk in model:
                entity = em.find(BasicPerson, pk)
                entity.phone = payload
                model[pk] = payload
        else:  # remove
            if pk in model:
                em.remove(em.find(BasicPerson, pk))
                del model[pk]
        tx.commit()
    return model


def observed_state(em):
    em.clear()
    return {p.id: p.phone for p in em.find_all(BasicPerson)}


@settings(max_examples=15, deadline=None)
@given(ops=operations)
def test_property_providers_and_model_agree(tmp_path_factory, ops):
    jpa = make_jpa_em(Clock(), [BasicPerson])
    pjo = make_pjo_em(Clock(), [BasicPerson],
                      tmp_path_factory.mktemp("equiv"))
    model_a = apply_ops(jpa, ops)
    model_b = apply_ops(pjo, ops)
    assert model_a == model_b
    assert observed_state(jpa) == model_a
    assert observed_state(pjo) == model_a


@settings(max_examples=8, deadline=None)
@given(ops=operations)
def test_property_pjo_state_survives_restart(tmp_path_factory, ops):
    from repro.api import Espresso
    from repro.pjo.provider import PjoEntityManager
    heap_dir = tmp_path_factory.mktemp("equiv-restart")
    jvm = Espresso(heap_dir)
    jvm.create_heap("jpab", 16 * 1024 * 1024)
    em = PjoEntityManager(jvm)
    em.create_schema([BasicPerson])
    model = apply_ops(em, ops)
    jvm.shutdown()

    jvm2 = Espresso(heap_dir)
    jvm2.load_heap("jpab")
    em2 = PjoEntityManager(jvm2)
    assert observed_state(em2) == model
