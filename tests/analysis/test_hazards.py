"""Persist-order hazard analysis over recorded event traces.

Raw traces seed the three hazard classes; a live session's recorded
trace (the real allocation + publication protocol) must come back clean.
"""

from repro.analysis.hazards import analyze_trace
from repro.api import Espresso
from repro.nvm.persist import PersistEventLog
from repro.runtime.klass import FieldKind, field

# Offsets are device-relative words; LINE_WORDS is 8, so offset 0 is
# line 0 and offset 64 is line 8.
TARGET = 0      # object header at line 0
SLOT = 64       # pointer slot at line 8


def codes(report):
    return [d.code for d in report.findings]


class TestSeededTraces:
    def test_publish_before_persist_flagged(self):
        """The seeded hazard: pointer durable, target header not."""
        trace = [
            ("store", TARGET, 2),          # init target header
            ("store", SLOT, 1),            # write the pointer
            ("publish", SLOT, TARGET),
            ("flush", SLOT // 8),          # flush only the slot line
            ("fence",),                    # pointer durable, header not
        ]
        report = analyze_trace(trace)
        assert codes(report) == ["ESP201"]
        assert f"slot {SLOT} -> target {TARGET}" in report.findings[0].where

    def test_same_fence_publication_is_still_a_hazard(self):
        """Header and pointer in one epoch: REORDERED may persist the
        pointer first, so 'same fence' does not satisfy happens-before."""
        trace = [
            ("store", TARGET, 2),
            ("store", SLOT, 1),
            ("publish", SLOT, TARGET),
            ("flush", TARGET // 8),
            ("flush", SLOT // 8),
            ("fence",),
        ]
        assert codes(analyze_trace(trace)) == ["ESP201"]

    def test_header_persisted_first_is_clean(self):
        trace = [
            ("store", TARGET, 2),
            ("flush", TARGET // 8),
            ("fence",),                    # header durable in epoch 1
            ("store", SLOT, 1),
            ("publish", SLOT, TARGET),
            ("flush", SLOT // 8),
            ("fence",),                    # pointer durable in epoch 2
        ]
        report = analyze_trace(trace)
        assert report.clean
        assert report.stats["publishes"] == 1

    def test_fenceless_flush_flagged(self):
        trace = [
            ("store", TARGET, 1),
            ("flush", TARGET // 8),        # flushed, never fenced
        ]
        assert codes(analyze_trace(trace)) == ["ESP202"]

    def test_flush_of_clean_line_ignored(self):
        trace = [("flush", 3)]             # nothing dirty on line 3
        assert analyze_trace(trace).clean

    def test_write_after_publish_flagged(self):
        trace = [
            ("store", TARGET, 2),
            ("flush", TARGET // 8),
            ("fence",),
            ("store", SLOT, 1),
            ("publish", SLOT, TARGET),
            ("flush", SLOT // 8),
            ("fence",),
            ("store", TARGET, 1),          # rewrite the published header
        ]
        report = analyze_trace(trace)
        assert "ESP203" in codes(report)

    def test_rewritten_header_repersisted_is_clean(self):
        trace = [
            ("store", TARGET, 2),
            ("flush", TARGET // 8),
            ("fence",),
            ("store", SLOT, 1),
            ("publish", SLOT, TARGET),
            ("flush", SLOT // 8),
            ("fence",),
            ("store", TARGET, 1),
            ("flush", TARGET // 8),
            ("fence",),                    # re-persisted: no hazard
        ]
        assert analyze_trace(trace).clean

    def test_unpublished_slot_never_flagged(self):
        """A flush-before-publish of the slot line must not count as the
        pointer's persistence (the flush snapshotted a pre-store value)."""
        trace = [
            ("store", SLOT, 1),
            ("flush", SLOT // 8),
            ("fence",),
            ("store", TARGET, 2),
            ("store", SLOT, 1),
            ("publish", SLOT, TARGET),
        ]
        report = analyze_trace(trace)
        # Slot never re-flushed after publish: the pointer never became
        # durable, so no ESP201 — but the dirty lines were never fenced.
        assert "ESP201" not in codes(report)


class TestFrameTraces:
    """ESP204: the resume protocol's frame-top publish ordering."""

    FRAME = 128     # frame record at line 16, 64 words = lines 16..23
    TOP = 42        # metadata frame-top word at line 5

    def test_record_persisted_first_is_clean(self):
        trace = [
            ("store", self.FRAME, 64),
            *[("flush", line) for line in range(16, 24)],
            ("fence",),                    # whole record durable, epoch 1
            ("frame", self.TOP, self.FRAME, 64),
            ("store", self.TOP, 1),
            ("flush", self.TOP // 8),
            ("fence",),                    # top durable, epoch 2
        ]
        report = analyze_trace(trace)
        assert report.clean, [d.render() for d in report.findings]
        assert report.stats["frame_publishes"] == 1

    def test_top_before_record_flagged(self):
        """Publishing the top in the same epoch as (or before) the frame
        record is the hazard the push protocol exists to avoid."""
        trace = [
            ("store", self.FRAME, 64),
            ("frame", self.TOP, self.FRAME, 64),
            ("store", self.TOP, 1),
            ("flush", self.TOP // 8),
            ("fence",),                    # top durable, record not
        ]
        report = analyze_trace(trace)
        assert codes(report) == ["ESP204"]
        assert f"frame-top {self.TOP} -> frame {self.FRAME}" \
            in report.findings[0].where

    def test_partially_persisted_record_flagged(self):
        """Every line of the record counts, not just the first."""
        trace = [
            ("store", self.FRAME, 64),
            ("flush", 16),                 # only the record's first line
            ("fence",),
            ("frame", self.TOP, self.FRAME, 64),
            ("store", self.TOP, 1),
            ("flush", self.TOP // 8),
            ("fence",),
        ]
        assert codes(analyze_trace(trace)) == ["ESP204"]

    def test_checkpoint_rewrite_of_published_frame_is_exempt(self):
        """Checkpoints rewrite published frames by design: no ESP203."""
        trace = [
            ("store", self.FRAME, 64),
            *[("flush", line) for line in range(16, 24)],
            ("fence",),
            ("frame", self.TOP, self.FRAME, 64),
            ("store", self.TOP, 1),
            ("flush", self.TOP // 8),
            ("fence",),
            # A checkpoint: step slot + pc rewritten in the record...
            ("store", self.FRAME + 26, 2),
            ("store", self.FRAME + 21, 1),
            ("flush", (self.FRAME + 26) // 8),
            ("flush", (self.FRAME + 21) // 8),
            ("fence",),
        ]
        assert analyze_trace(trace).clean

    def test_object_publish_rewrite_still_flagged(self):
        """The exemption is frame-specific: an object publish followed by
        an unpersisted header rewrite keeps firing ESP203."""
        trace = [
            ("store", TARGET, 2),
            ("flush", TARGET // 8),
            ("fence",),
            ("store", SLOT, 1),
            ("publish", SLOT, TARGET),
            ("flush", SLOT // 8),
            ("fence",),
            ("store", TARGET, 1),          # header rewritten, never fenced
        ]
        assert codes(analyze_trace(trace)) == ["ESP203"]


class TestEventLogRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        log = PersistEventLog("t")
        log.record_store(TARGET, 2)
        log.record_flush(0)
        log.record_fence()
        log.record_publish(SLOT, TARGET)
        path = tmp_path / "trace.json"
        log.save(path)
        loaded = PersistEventLog.load(path)
        assert loaded.events == log.events


class TestLiveTrace:
    def test_real_session_protocol_is_hazard_free(self, tmp_path):
        """pnew + set_field + flush_reachable replays clean: the heap's
        allocation protocol persists every header before any pointer to
        it can be published."""
        jvm = Espresso(tmp_path)
        node = jvm.define_class("Node", [field("v", FieldKind.INT),
                                         field("next", FieldKind.REF)])
        jvm.create_heap("h", 256 * 1024)
        heap = jvm.heaps.heap("h")
        log = heap.enable_event_log()
        head = jvm.pnew(node)
        for i in range(5):
            n = jvm.pnew(node)
            jvm.set_field(n, "v", i)
            jvm.set_field(n, "next", jvm.get_field(head, "next"))
            jvm.set_field(head, "next", n)
            jvm.flush_reachable(head)
        jvm.set_root("head", head)
        heap.disable_event_log()
        report = analyze_trace(log)
        assert report.stats["publishes"] >= 5
        assert report.findings == [], [d.render() for d in report.findings]

    def test_elision_suspended_while_tracing(self, tmp_path):
        """An installed certificate must not hide publishes from the
        trace: the publish tap disables elision."""
        from repro.analysis.closure import certify_session
        jvm = Espresso(tmp_path)
        jvm.define_class("Person", [
            field("name", FieldKind.REF, declared="java.lang.String")])
        jvm.create_heap("h", 256 * 1024)
        certify_session(jvm, persist_only={"Person"})
        heap = jvm.heaps.heap("h")
        log = heap.enable_event_log()
        p = jvm.pnew("Person")
        jvm.set_field(p, "name", jvm.pnew_string("x"))
        jvm.flush_reachable(p)
        heap.disable_event_log()
        assert any(e[0] == "publish" for e in log.events)
        assert analyze_trace(log).clean

    def test_resume_protocol_is_hazard_free(self, tmp_path):
        """A resumable task's full lifetime — pushes, checkpoints, child
        frames, pops, finalize — replays with zero ESP2xx findings: the
        frame protocol persists every record before publishing the top."""
        from repro.api import EspressoConfig

        jvm = Espresso(tmp_path,
                       config=EspressoConfig(resumable=True))
        jvm.define_class("RNode", [field("v", FieldKind.INT),
                                   field("next", FieldKind.REF)])
        jvm.create_heap("h", 512 * 1024)

        @jvm.register_task("build")
        def build(task, s, n):
            prev = None
            total = 0
            for i in range(n):
                prev = task.step(_mk_node, s, i, prev)
                total += task.call("weigh", i)
            s.set_root("list", prev)
            return total

        @jvm.register_task("weigh")
        def weigh(task, s, i):
            return task.step(lambda: i * i)

        heap = jvm.heaps.heap("h")
        log = heap.enable_event_log()
        assert jvm.resumable_task("build").run(3) == 5
        heap.disable_event_log()
        report = analyze_trace(log)
        # One root + three child frames published through the log.
        assert report.stats["frame_publishes"] >= 4
        assert report.findings == [], [d.render() for d in report.findings]


def _mk_node(s, i, prev):
    node = s.pnew("RNode")
    s.set_field(node, "v", i)
    if prev is not None:
        s.set_field(node, "next", prev)
    s.flush_reachable(node)
    return node


class TestRacyPublish:
    """ESP205: cross-mutator publishes need a persist edge."""

    def test_cross_mutator_publish_same_epoch_is_racy(self):
        """Mutator 1 publishes a pointer whose target only mutator 0
        flushed, with no fence between: under another interleaving the
        publish may land before the flush."""
        trace = [
            ("store", TARGET, 2, 0),
            ("flush", TARGET // 8, 0),     # m0 flushed the header...
            ("store", SLOT, 1, 1),
            ("publish", SLOT, TARGET, 1),  # ...but m1 publishes, no fence
            ("flush", SLOT // 8, 1),
            ("fence",),
        ]
        report = analyze_trace(trace)
        assert "ESP205" in codes(report)
        esp205 = [d for d in report.findings if d.code == "ESP205"][0]
        assert "mutator 1" in esp205.message
        assert report.stats["mutators"] == 2

    def test_same_mutator_program_order_is_clean(self):
        trace = [
            ("store", TARGET, 2, 0),
            ("flush", TARGET // 8, 0),
            ("fence",),
            ("store", SLOT, 1, 0),
            ("publish", SLOT, TARGET, 0),  # same mutator: program order
            ("flush", SLOT // 8, 0),
            ("fence",),
        ]
        assert analyze_trace(trace).clean

    def test_fence_between_flush_and_publish_is_clean(self):
        trace = [
            ("store", TARGET, 2, 0),
            ("flush", TARGET // 8, 0),
            ("fence",),                    # global persist edge
            ("store", SLOT, 1, 1),
            ("publish", SLOT, TARGET, 1),  # cross-mutator, but ordered
            ("flush", SLOT // 8, 1),
            ("fence",),
        ]
        assert analyze_trace(trace).clean

    def test_untagged_traces_never_fire_esp205(self):
        """Single-mutator (legacy) traces carry no tags; the racy-publish
        rule stays out of their way even when the shape matches."""
        trace = [
            ("store", TARGET, 2),
            ("flush", TARGET // 8),
            ("store", SLOT, 1),
            ("publish", SLOT, TARGET),
            ("flush", SLOT // 8),
            ("fence",),
        ]
        report = analyze_trace(trace)
        assert "ESP205" not in codes(report)
        assert report.stats["mutators"] == 0

    def test_live_gang_trace_is_hazard_free(self, tmp_path):
        """The shipped lock-free map protocol under a contended 3-mutator
        gang replays with zero findings — including ESP205."""
        from repro.workloads.concurrent_kv import ConcurrentKvWorkload

        jvm = Espresso(tmp_path / "heaps", mutators=3)
        jvm.create_heap("kv", 2 * 1024 * 1024)
        heap = jvm.heaps.heap("kv")
        log = heap.enable_event_log()
        workload = ConcurrentKvWorkload(jvm, mutators=3,
                                        ops_per_mutator=6, seed=4)
        workload.run(event_log=log)
        heap.disable_event_log()
        report = analyze_trace(log)
        assert report.stats["mutators"] == 3
        assert report.stats["publishes"] > 0
        assert report.findings == [], [d.render() for d in report.findings]
