"""ESP502 fixture: durable-metadata store with no transaction at all.

``ut_splice`` mutates structure-critical words directly — a crash
mid-splice leaves the table half-rewritten with nothing to roll back.
"""

from repro.nvm.publish import durable_metadata


class UnloggedTable:
    def __init__(self, device, base):
        self.device = device
        self.base = base

    @durable_metadata("unlogged-table splice")
    def ut_splice(self, index, value):
        self.device.write(self.base + index, value)   # BAD: no undo log
