"""Clean look-alike of the ESP503 fixtures: flush immediately fenced.

Identical to LeakyCache except the epoch is committed before return.
"""


class FencedCache:
    def __init__(self, pd):
        self.pd = pd

    def fc_touch(self, address):
        self.pd.clflush(address)
        self.pd.commit_epoch()
