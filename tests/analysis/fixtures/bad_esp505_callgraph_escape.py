"""ESP505 fixture: a deferred fence that no caller ever drains.

``ep_enqueue`` is a well-formed fence-parameter API (its own
fence-less exit is the documented contract, not a finding), but the
call-graph root ``ep_root`` asks for ``fence=False`` and then returns
without ever committing an epoch — the pending flush escapes the
analyzed world.
"""


class EscapingPool:
    def __init__(self, pd):
        self.pd = pd

    def ep_enqueue(self, address, fence=True):
        self.pd.clflush(address)
        if fence:
            self.pd.commit_epoch()

    def ep_root(self, address):
        self.ep_enqueue(address, fence=False)   # BAD: nobody fences
