"""Clean look-alike of the ESP505 fixture: the root drains the fence.

Same fence-parameter helper as EscapingPool, but the root batches the
deferred flush and commits the epoch itself before returning.
"""


class DrainingPool:
    def __init__(self, pd):
        self.pd = pd

    def dp_enqueue(self, address, fence=True):
        self.pd.clflush(address)
        if fence:
            self.pd.commit_epoch()

    def dp_root(self, address, spare):
        self.dp_enqueue(address, fence=False)
        self.dp_enqueue(spare, fence=False)
        self.pd.commit_epoch()           # drains both deferred flushes
