"""Clean look-alike of the ESP502 fixtures: every store is logged.

Same splice as UnloggedTable, but wrapped in begin/log_slot/commit —
the undo entry covers a crash at any point of the mutation.
"""

from repro.nvm.publish import durable_metadata


class LoggedTable:
    def __init__(self, device, txn, base):
        self.device = device
        self.txn = txn
        self.base = base

    @durable_metadata("logged-table splice")
    def lt_splice(self, index, value):
        self.txn.begin()
        self.txn.log_slot(self.base + index)
        self.device.write(self.base + index, value)
        self.txn.commit()
