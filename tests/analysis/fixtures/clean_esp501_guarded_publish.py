"""Clean look-alike of the ESP501 fixtures: persist-then-publish.

Same shape as the bad logs, but the payload is flushed *and* fenced
(``persist``) before the head store — the textbook discipline.
"""

from repro.nvm.publish import publish_point

HEAD = 0


class GuardedLog:
    def __init__(self, device, pd):
        self.device = device
        self.pd = pd

    @publish_point("guarded-log head")
    def gl_set_head(self, value):
        self.device.write(HEAD, value)

    def gl_append(self, offset, record, value):
        self.device.write_block(offset, record)
        self.pd.persist(offset)          # flush + fence dominate ...
        self.gl_set_head(value)          # ... the publish: clean
