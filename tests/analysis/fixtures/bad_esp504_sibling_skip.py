"""ESP504 fixture: one conditional arm persists, its sibling does not.

Both arms store to the device, but only the ``durable`` arm follows up
with ``persist`` — the other path silently skips durability.
"""


class SkewedStore:
    def __init__(self, device, pd):
        self.device = device
        self.pd = pd

    def sk_store(self, address, value, durable):
        if durable:
            self.device.write(address, value)
            self.pd.persist(address)
        else:
            self.device.write(address, value)   # BAD: no persist here
