"""ESP503 fixture: the fence is gated on non-parameter state.

Unlike a ``fence=False`` API parameter (a caller-visible contract), the
``self.mode`` test hides the fence-less path inside the object — async
mode silently leaves the flush pending at exit.
"""


class ModalCache:
    def __init__(self, pd, mode):
        self.pd = pd
        self.mode = mode

    def mc_flush_maybe(self, address):
        self.pd.clflush(address)
        if self.mode == "sync":
            self.pd.commit_epoch()
        # BAD: async mode returns with the flush still pending
