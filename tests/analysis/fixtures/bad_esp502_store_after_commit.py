"""ESP502 fixture: a trailing store after the transaction committed.

The first store is properly logged; the count update sneaks in after
``commit`` closed the undo window, so it is unprotected.
"""

from repro.nvm.publish import durable_metadata

COUNT = 8


class LateStoreTable:
    def __init__(self, device, txn, base):
        self.device = device
        self.txn = txn
        self.base = base

    @durable_metadata("late-store-table resize")
    def ls_resize(self, index, value, count):
        self.txn.begin()
        self.txn.log_slot(self.base + index)
        self.device.write(self.base + index, value)
        self.txn.commit()
        self.device.write(self.base + COUNT, count)   # BAD: outside txn
