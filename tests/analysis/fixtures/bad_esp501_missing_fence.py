"""ESP501 fixture: payload flushed but not fenced before the publish.

``hg_append`` gets the payload into the flush queue, but the fence
only lands *after* the head store — the store can become durable ahead
of the still-queued payload flush.
"""

from repro.nvm.publish import publish_point

HEAD = 0


class HalfGuardedLog:
    def __init__(self, device, pd):
        self.device = device
        self.pd = pd

    @publish_point("half-guarded-log head")
    def hg_set_head(self, value):
        self.device.write(HEAD, value)

    def hg_append(self, offset, record, value):
        self.device.write_block(offset, record)
        self.pd.clflush(offset)
        self.hg_set_head(value)          # BAD: flush not yet fenced
        self.pd.commit_epoch()           # fence arrives too late
