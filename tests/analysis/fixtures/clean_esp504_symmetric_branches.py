"""Clean look-alike of the ESP504 fixture: both arms persist.

The conditional chooses *where* to store, not *whether* to persist —
each sibling carries its own flush+fence, so neither skips durability.
"""


class BalancedStore:
    def __init__(self, device, pd):
        self.device = device
        self.pd = pd

    def bs_store(self, address, spare, value, primary):
        if primary:
            self.device.write(address, value)
            self.pd.persist(address)
        else:
            self.device.write(spare, value)
            self.pd.persist(spare)
