"""ESP503 fixture: a flush enqueued and never fenced on any path.

``lc_touch`` queues the line but returns without committing the epoch;
the flush may sit in the queue forever.
"""


class LeakyCache:
    def __init__(self, pd):
        self.pd = pd

    def lc_touch(self, address):
        self.pd.clflush(address)          # BAD: never fenced
