"""ESP501 fixture: publish reached with no flush or fence at all.

``ul_append`` stores the record payload and immediately calls the
declared publish point — the payload is in the write-back cache only,
so a crash right after the head store recovers a dangling pointer.
"""

from repro.nvm.publish import publish_point

HEAD = 0


class UnguardedLog:
    def __init__(self, device, pd):
        self.device = device
        self.pd = pd

    @publish_point("unguarded-log head")
    def ul_set_head(self, value):
        self.device.write(HEAD, value)

    def ul_append(self, offset, record, value):
        self.device.write_block(offset, record)
        self.ul_set_head(value)          # BAD: payload never persisted
