"""Persistent-closure analysis: classification and certificates."""

import pytest

from repro.analysis.closure import (
    ARRAY_FIELD,
    analyze_closure,
    analyze_vm,
    certify_session,
)
from repro.api import Espresso
from repro.runtime.klass import (
    FieldKind,
    Klass,
    STRING_KLASS_NAME,
    field,
)


def classification_of(report, class_name, field_name):
    for f in report.fields:
        if f.class_name == class_name and f.field_name == field_name:
            return f
    raise AssertionError(f"no classification for {class_name}.{field_name}")


class TestClassification:
    def test_escaping_field_flagged_esp101(self):
        """Seeded escaping graph: declared type with no persistable subtype."""
        volatile = Klass("Volatile")
        holder = Klass("P", [field("v", FieldKind.REF, declared="Volatile")])
        report = analyze_closure([volatile, holder],
                                 persistable={"P"}, persist_only={"P"})
        f = classification_of(report, "P", "v")
        assert f.classification == "escaping"
        codes = [d.code for d in report.diagnostics()]
        assert codes == ["ESP101"]
        assert report.diagnostics()[0].where == "P.v"

    def test_closed_field_certified(self):
        target = Klass("Q")
        holder = Klass("P", [field("q", FieldKind.REF, declared="Q")])
        report = analyze_closure([target, holder],
                                 persist_only={"P", "Q"})
        f = classification_of(report, "P", "q")
        assert f.classification == "closed"
        cert = report.certificate()
        assert cert.covers("P", "q")
        assert report.diagnostics() == []  # ESP101-free by default

    def test_subclass_outside_persist_only_opens_field(self):
        """cone(Q) = {Q, R}; R can be DRAM-allocated, so the field stays
        open (a store of an R instance could be volatile)."""
        target = Klass("Q")
        sub = Klass("R", super_klass=target)
        holder = Klass("P", [field("q", FieldKind.REF, declared="Q")])
        report = analyze_closure([target, sub, holder],
                                 persist_only={"P", "Q"})
        f = classification_of(report, "P", "q")
        assert f.classification == "open"
        assert "R" in f.reason
        assert not report.certificate().covers("P", "q")

    def test_object_declared_field_is_open(self):
        holder = Klass("P", [field("any", FieldKind.REF)])
        report = analyze_closure([holder], persist_only={"P"})
        assert classification_of(report, "P", "any").classification == "open"

    def test_primitive_array_field_is_closed(self):
        """[J holds no pointers; its cone is a leaf."""
        holder = Klass("P", [field("data", FieldKind.REF, declared="[J")])
        report = analyze_closure([holder], persist_only={"P"})
        assert classification_of(report, "P", "data").classification \
            == "closed"

    def test_ref_array_covariance_widens_cone(self):
        """A [LQ; field must consider [LR; for every subclass R."""
        target = Klass("Q")
        sub = Klass("R", super_klass=target)
        holder = Klass("P", [field("qs", FieldKind.REF, declared="[LQ;")])
        report = analyze_closure([target, sub, holder],
                                 persist_only={"P", "Q", "R"})
        f = classification_of(report, "P", "qs")
        assert "[LR;" in f.cone
        assert f.classification == "closed"

    def test_array_klass_element_pseudo_field(self):
        target = Klass("Q")
        array = Klass("[LQ;", is_array=True, element_kind=FieldKind.REF,
                      element_klass=target)
        report = analyze_closure([target, array],
                                 persist_only={"Q", "[LQ;"})
        f = classification_of(report, "[LQ;", ARRAY_FIELD)
        assert f.classification == "closed"

    def test_certificate_skips_closed_field_of_open_holder(self):
        """Elision needs the holder persist-only too: a DRAM holder's
        stores never reach persistent memory, but a mixed holder cone
        cannot be keyed by class name alone."""
        target = Klass("Q")
        holder = Klass("P", [field("q", FieldKind.REF, declared="Q")])
        report = analyze_closure([target, holder], persistable={"P", "Q"},
                                 persist_only={"Q"})
        assert classification_of(report, "P", "q").classification == "closed"
        assert not report.certificate().covers("P", "q")


class TestLiveSession:
    def test_analyze_vm_classifies_declared_string(self, tmp_path):
        jvm = Espresso(tmp_path)
        jvm.define_class("Person", [
            field("id", FieldKind.INT),
            field("name", FieldKind.REF, declared=STRING_KLASS_NAME)])
        report = analyze_vm(jvm.vm, persist_only={
            "Person", STRING_KLASS_NAME, "[J"})
        assert classification_of(report, "Person", "name").classification \
            == "closed"
        # String.value ([J) rides along from the bootstrapped metaspace.
        assert classification_of(
            report, STRING_KLASS_NAME, "value").classification == "closed"

    def test_certify_session_installs_on_vm_and_config(self, tmp_path):
        jvm = Espresso(tmp_path)
        jvm.define_class("Person", [
            field("name", FieldKind.REF, declared=STRING_KLASS_NAME)])
        cert = certify_session(jvm, persist_only={"Person"})
        assert jvm.vm.safety_certificate is cert
        assert jvm.config.safety_certificate is cert
        assert cert.covers("Person", "name")
        assert cert.covers(STRING_KLASS_NAME, "value")

    def test_dbp_schema_closes_varchar_and_reference_columns(self, tmp_path):
        """The fig17 feedback loop: BasicTest's db.* schema certifies."""
        from repro.jpab import BASIC_TEST
        from repro.pjo.provider import PjoEntityManager
        jvm = Espresso(tmp_path)
        jvm.create_heap("jpab", 4 * 1024 * 1024)
        em = PjoEntityManager(jvm)
        em.create_schema(BASIC_TEST.entities)
        db_names = {name for name in jvm.vm.metaspace.names()
                    if name.startswith("db.")}
        cert = certify_session(jvm, persist_only=db_names)
        assert cert.covers("db.BasicPerson", "first_name")
        assert len(cert) >= 4
        report = analyze_vm(jvm.vm, persist_only=db_names | {
            STRING_KLASS_NAME, "[J"})
        assert [d for d in report.diagnostics() if d.code == "ESP101"] == []
