"""Golden tests for the ESP5xx static persist-order verifier.

The fixture corpus under ``fixtures/`` pins the rule semantics from
both sides: every ``bad_*`` module must be flagged with *exactly* its
one seeded rule (full recall), and every ``clean_*`` look-alike must
produce zero findings (zero false positives).  A second set of tests
pins the in-tree contract: the repo's own durable subsystems are clean
under the checked-in assumptions file, with no stale assumption
entries, and the family-aware ``--update-baseline`` flow refuses to
baseline error findings.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.static_order import (
    Assumptions,
    analyze_paths,
    load_assumptions,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = str(REPO_ROOT / "src")
FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> the single rule it seeds (recall side of the golden
#: contract); every other fixture file must stay silent (precision side).
EXPECTED = {
    "bad_esp501_unguarded_publish.py": "ESP501",
    "bad_esp501_missing_fence.py": "ESP501",
    "bad_esp502_unlogged_store.py": "ESP502",
    "bad_esp502_store_after_commit.py": "ESP502",
    "bad_esp503_pending_exit.py": "ESP503",
    "bad_esp503_modal_fence.py": "ESP503",
    "bad_esp504_sibling_skip.py": "ESP504",
    "bad_esp505_callgraph_escape.py": "ESP505",
}

#: rules that survive --no-interprocedural (no call summaries, so the
#: whole-call-graph rules ESP501/ESP505 are disabled as unsound).
INTRA_RULES = {"ESP502", "ESP503", "ESP504"}


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *map(str, args)],
        capture_output=True, text=True, env=env)


def codes_by_file(result):
    out = {}
    for diag in result.diagnostics():
        out.setdefault(diag.where.split("::")[0], set()).add(diag.code)
    return out


@pytest.fixture(scope="module")
def fixture_result():
    return analyze_paths(paths=[FIXTURES], assumptions=Assumptions.empty(),
                         interprocedural=True)


def test_fixture_corpus_is_large_enough():
    bad = sorted(p.name for p in FIXTURES.glob("bad_*.py"))
    clean = sorted(p.name for p in FIXTURES.glob("clean_*.py"))
    assert len(bad) >= 8 and len(clean) >= 4
    assert set(bad) == set(EXPECTED)


def test_full_recall_every_seeded_violation_found(fixture_result):
    found = codes_by_file(fixture_result)
    for name, code in EXPECTED.items():
        assert found.get(name) == {code}, \
            f"{name}: expected exactly {{{code}}}, got {found.get(name)}"


def test_zero_false_positives_on_clean_lookalikes(fixture_result):
    found = codes_by_file(fixture_result)
    flagged_clean = {name for name in found if name.startswith("clean_")}
    assert flagged_clean == set()
    # ... and nothing outside the seeded files at all.
    assert set(found) == set(EXPECTED)


def test_all_five_rules_are_exercised(fixture_result):
    codes = {d.code for d in fixture_result.diagnostics()}
    assert codes == {"ESP501", "ESP502", "ESP503", "ESP504", "ESP505"}


def test_fast_mode_keeps_only_intraprocedural_rules():
    fast = analyze_paths(paths=[FIXTURES], assumptions=Assumptions.empty(),
                         interprocedural=False)
    found = codes_by_file(fast)
    assert {c for cs in found.values() for c in cs} <= INTRA_RULES
    for name, code in EXPECTED.items():
        if code in INTRA_RULES:
            assert found.get(name) == {code}


def test_in_tree_durable_subsystems_are_clean():
    """The acceptance contract: zero findings on the repo's own durable
    code under the checked-in assumptions file, and every assumption
    entry is actually used (no rot)."""
    assumptions = load_assumptions(REPO_ROOT / "analysis-assumptions.json")
    result = analyze_paths(repo_root=REPO_ROOT, assumptions=assumptions,
                           interprocedural=True)
    assert [d.render() for d in result.diagnostics()] == []
    summary = result.summary()
    assert summary["unused_assumptions"] == []
    assert summary["suppressed"] > 0          # the file is load-bearing
    assert summary["functions"] > 300         # the scope is non-trivial
    assert len(summary["publish_points"]) >= 5


def test_assumptions_without_why_are_rejected(tmp_path):
    path = tmp_path / "assume.json"
    path.write_text(json.dumps(
        {"suppress": [{"fingerprint": "ESP501:x.py::C.f"}]}))
    with pytest.raises(ValueError):
        load_assumptions(path)
    path.write_text(json.dumps(
        {"assume": [{"function": "x.py::C.f",
                     "contract": "defers-fence", "why": ""}]}))
    with pytest.raises(ValueError):
        load_assumptions(path)


def test_update_baseline_refuses_error_findings(tmp_path):
    baseline = tmp_path / "baseline.json"
    proc = run_cli("--static-order", "--paths", FIXTURES,
                   "--rules", "ESP301", "--baseline", baseline,
                   "--update-baseline")
    assert proc.returncode == 2
    assert "refusing to update" in proc.stdout
    assert not baseline.exists()


def test_update_baseline_is_family_aware(tmp_path):
    """Updating from a warnings-only run keeps other families'
    fingerprints and replaces only the ESP5xx ones."""
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "mod.py").write_text(
        "class C:\n"
        "    def touch(self, address):\n"
        "        self.pd.flush(address)\n")
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(
        {"fingerprints": ["ESP401:line 9", "ESP503:stale.py::Old.gone"]}))
    proc = run_cli("--static-order", "--paths", tree,
                   "--rules", "ESP301", "--baseline", baseline,
                   "--update-baseline")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    kept = set(json.loads(baseline.read_text())["fingerprints"])
    assert "ESP401:line 9" in kept                    # family 4 did not run
    assert "ESP503:stale.py::Old.gone" not in kept    # family 5 replaced
    assert "ESP503:mod.py::C.touch" in kept
