"""The analyzer is deterministic: byte-identical JSON across runs and
across unrelated session knobs (gc_workers)."""

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.closure import analyze_vm
from repro.analysis.diagnostics import AnalysisReport
from repro.api import Espresso
from repro.runtime.klass import FieldKind, field

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = str(REPO_ROOT / "src")


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *map(str, args)],
        capture_output=True, text=True, env=env)


def schema_report_json(tmp_path, gc_workers: int) -> str:
    jvm = Espresso(tmp_path, gc_workers=gc_workers)
    jvm.define_class("Leaf", [field("data", FieldKind.REF, declared="[J")])
    jvm.define_class("Person", [
        field("id", FieldKind.INT),
        field("name", FieldKind.REF, declared="java.lang.String"),
        field("leaf", FieldKind.REF, declared="Leaf")])
    closure = analyze_vm(jvm.vm, persist_only={
        "Person", "Leaf", "java.lang.String", "[J"})
    report = AnalysisReport()
    report.add_pass("closure", closure.diagnostics(include_open=True),
                    closure.summary())
    return report.to_json()


def test_cli_json_is_byte_identical_across_runs(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "a.py").write_text("device.clflush(0)\nt = time.time()\n")
    runs = [run_cli("--paths", tree, "--json") for _ in range(2)]
    assert runs[0].returncode == runs[1].returncode == 1
    assert runs[0].stdout == runs[1].stdout
    assert runs[0].stdout  # non-empty: the comparison is meaningful


def test_closure_report_identical_across_gc_workers(tmp_path):
    first = schema_report_json(tmp_path / "w1", gc_workers=1)
    second = schema_report_json(tmp_path / "w4", gc_workers=4)
    assert first == second


def test_closure_report_identical_across_runs(tmp_path):
    first = schema_report_json(tmp_path / "a", gc_workers=2)
    second = schema_report_json(tmp_path / "b", gc_workers=2)
    assert first == second
    assert '"closure"' in first


FIXTURES = REPO_ROOT / "tests" / "analysis" / "fixtures"


def run_static_order_cli(hashseed=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    if hashseed is not None:
        env["PYTHONHASHSEED"] = str(hashseed)
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--static-order",
         "--paths", str(FIXTURES), "--rules", "ESP305", "--json"],
        capture_output=True, text=True, env=env)


def test_static_order_json_byte_identical_across_runs():
    runs = [run_static_order_cli() for _ in range(2)]
    assert runs[0].returncode == runs[1].returncode == 1
    assert runs[0].stdout == runs[1].stdout
    assert '"static_order"' in runs[0].stdout


def test_static_order_json_stable_across_hashseed():
    """Set iteration inside the engine (states, pending sets, summaries)
    must never leak into the report: vary PYTHONHASHSEED explicitly."""
    outputs = {run_static_order_cli(hashseed=s).stdout for s in (0, 1, 4242)}
    assert len(outputs) == 1
    assert '"ESP505"' in outputs.pop()


def test_static_order_in_tree_report_identical_across_runs():
    """The full interprocedural in-tree run (fixpoint over ~650
    functions) serialises identically twice in-process."""
    from repro.analysis.static_order import load_assumptions, analyze_paths

    def report_json():
        assumptions = load_assumptions(REPO_ROOT / "analysis-assumptions.json")
        result = analyze_paths(repo_root=REPO_ROOT, assumptions=assumptions)
        report = AnalysisReport()
        report.add_pass("static_order", result.diagnostics(),
                        result.summary())
        return report.to_json()

    assert report_json() == report_json()


def test_certificate_fingerprint_reproducible(tmp_path):
    from repro.analysis.closure import certify_session

    def fingerprint(where):
        jvm = Espresso(where)
        jvm.define_class("Person", [
            field("name", FieldKind.REF, declared="java.lang.String")])
        return certify_session(jvm, persist_only={"Person"}).fingerprint

    assert fingerprint(tmp_path / "x") == fingerprint(tmp_path / "y")
