"""AST-based source lint: rules ESP301/302/303/305 and the CLI around them."""

import json
import os
import subprocess
import sys
import warnings
from pathlib import Path

from repro.analysis.srclint import (
    ALL_RULES,
    PERSIST_RULES,
    SESSION_RULES,
    TIME_RULES,
    lint_paths,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = str(REPO_ROOT / "src")


def write_tree(root: Path, files: dict) -> Path:
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
    return root


class TestEsp305ModuleState:
    """ESP305: module-level mutable state in the session/core layers."""

    CORE = "repro/core/thing.py"

    def _lint(self, tmp_path, source, rel=None):
        write_tree(tmp_path, {rel or self.CORE: source})
        return lint_paths([tmp_path], rules=SESSION_RULES)

    def test_mutated_module_set_flagged(self, tmp_path):
        findings = self._lint(tmp_path, (
            "_SEEN = set()\n"
            "def remember(x):\n"
            "    _SEEN.add(x)\n"))
        assert [f.code for f in findings] == ["ESP305"]
        assert findings[0].lineno == 3
        assert "_SEEN" in findings[0].reason

    def test_item_store_and_delete_flagged(self, tmp_path):
        findings = self._lint(tmp_path, (
            "_CACHE = {}\n"
            "def put(k, v):\n"
            "    _CACHE[k] = v\n"
            "def drop(k):\n"
            "    del _CACHE[k]\n"))
        assert [f.code for f in findings] == ["ESP305", "ESP305"]

    def test_global_statement_flagged(self, tmp_path):
        findings = self._lint(tmp_path, (
            "_COUNT = 0\n"
            "def bump():\n"
            "    global _COUNT\n"
            "    _COUNT += 1\n"))
        assert [f.code for f in findings] == ["ESP305"]
        assert "global" in findings[0].reason

    def test_readonly_lookup_table_is_legal(self, tmp_path):
        assert self._lint(tmp_path, (
            "_KIND = {1: \'int\', 2: \'ref\'}\n"
            "def kind(code):\n"
            "    return _KIND[code]\n")) == []

    def test_frozenset_and_tuple_are_legal(self, tmp_path):
        assert self._lint(tmp_path, (
            "ALLOWED = frozenset({\'a\', \'b\'})\n"
            "ORDER = (\'a\', \'b\')\n")) == []

    def test_instance_state_is_legal(self, tmp_path):
        assert self._lint(tmp_path, (
            "class Session:\n"
            "    def __init__(self):\n"
            "        self.seen = set()\n"
            "    def remember(self, x):\n"
            "        self.seen.add(x)\n")) == []

    def test_only_applies_to_session_core_layers(self, tmp_path):
        source = "_SEEN = set()\ndef f(x):\n    _SEEN.add(x)\n"
        assert self._lint(tmp_path, source, rel="repro/jpa/model.py") == []
        assert self._lint(tmp_path, source, rel="repro/fleet/router.py") != []
        assert self._lint(tmp_path, source, rel="repro/api.py") != []
        assert self._lint(tmp_path, source,
                          rel="repro/tools/lint_persist.py") != []
        assert self._lint(tmp_path, source,
                          rel="repro/workloads/concurrent_kv.py") != []
        assert self._lint(tmp_path, source,
                          rel="repro/bench/harness.py") != []

    def test_default_rules_include_esp305(self, tmp_path):
        write_tree(tmp_path, {self.CORE:
                              "_SEEN = set()\ndef f(x):\n    _SEEN.add(x)\n"})
        assert [f.code for f in lint_paths([tmp_path])] == ["ESP305"]


def run_cli(*args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *map(str, args)],
        capture_output=True, text=True, env=env, cwd=cwd)


class TestRules:
    def test_repo_source_is_clean(self):
        roots = [REPO_ROOT / "src"]
        if (REPO_ROOT / "examples").is_dir():
            roots.append(REPO_ROOT / "examples")
        assert lint_paths(roots, rules=ALL_RULES) == []

    def test_raw_clflush_flagged(self, tmp_path):
        write_tree(tmp_path, {"a.py": "device.clflush(0)\n"})
        findings = lint_paths([tmp_path])
        assert [f.code for f in findings] == ["ESP301"]
        assert findings[0].reason == "raw clflush call"
        assert findings[0].lineno == 1

    def test_raw_device_fence_flagged(self, tmp_path):
        write_tree(tmp_path, {"a.py": "device.fence()\n"})
        assert [f.code for f in lint_paths([tmp_path])] == ["ESP302"]

    def test_wallclock_read_flagged(self, tmp_path):
        write_tree(tmp_path, {"a.py": "import time\nt = time.time()\n"})
        findings = lint_paths([tmp_path])
        assert [f.code for f in findings] == ["ESP303"]
        assert findings[0].reason == "wall-clock time.time"

    def test_strings_and_comments_are_immune(self, tmp_path):
        """The advantage over the regex lint: no false positives on
        mentions inside strings, comments, or docstrings."""
        write_tree(tmp_path, {"a.py": (
            '"""Docs mention device.clflush(0) and time.time()."""\n'
            "# device.fence() in a comment\n"
            's = "time.monotonic()"\n')})
        assert lint_paths([tmp_path]) == []

    def test_domain_fence_is_legal(self, tmp_path):
        write_tree(tmp_path, {"a.py": "domain.fence()\nheap.fence()\n"})
        assert lint_paths([tmp_path]) == []

    def test_exempt_paths_skipped_per_rule_family(self, tmp_path):
        write_tree(tmp_path, {
            "repro/nvm/x.py": "device.clflush(0)\nt = time.time()\n",
            "repro/nvm/clock.py": "t = time.time()\n",
        })
        findings = lint_paths([tmp_path])
        # nvm/ is exempt from the persist rules but NOT the time rule;
        # clock.py is exempt from the time rule.
        assert [(f.path, f.code) for f in findings] \
            == [("repro/nvm/x.py", "ESP303")]

    def test_rule_restriction(self, tmp_path):
        write_tree(tmp_path, {"a.py": "clflush(0)\nt = time.time()\n"})
        assert [f.code for f in lint_paths([tmp_path], rules=TIME_RULES)] \
            == ["ESP303"]
        assert [f.code for f in lint_paths([tmp_path], rules=PERSIST_RULES)] \
            == ["ESP301"]

    def test_syntax_error_files_skipped(self, tmp_path):
        write_tree(tmp_path, {"bad.py": "def broken(:\n"})
        assert lint_paths([tmp_path]) == []


class TestCli:
    def test_exit_1_on_findings(self, tmp_path):
        write_tree(tmp_path, {"a.py": "device.clflush(0)\n"})
        proc = run_cli("--paths", tmp_path)
        assert proc.returncode == 1
        assert "ESP301" in proc.stdout

    def test_exit_0_on_clean_tree(self, tmp_path):
        write_tree(tmp_path, {"a.py": "x = 1\n"})
        proc = run_cli("--paths", tmp_path)
        assert proc.returncode == 0
        assert "clean" in proc.stdout

    def test_rules_flag_filters(self, tmp_path):
        write_tree(tmp_path, {"a.py": "device.clflush(0)\nt = time.time()\n"})
        proc = run_cli("--paths", tmp_path, "--rules", "ESP303")
        assert proc.returncode == 1
        assert "ESP303" in proc.stdout and "ESP301" not in proc.stdout

    def test_unknown_rule_is_a_usage_error(self, tmp_path):
        proc = run_cli("--paths", tmp_path, "--rules", "ESP999")
        assert proc.returncode != 0
        assert "unknown lint rule" in proc.stderr + proc.stdout

    def test_json_output_parses(self, tmp_path):
        write_tree(tmp_path, {"a.py": "device.clflush(0)\n"})
        proc = run_cli("--paths", tmp_path, "--json")
        payload = json.loads(proc.stdout)
        assert payload["total_findings"] == 1
        assert payload["passes"]["lint"][0]["code"] == "ESP301"

    def test_baseline_suppresses_known_findings(self, tmp_path):
        tree = write_tree(tmp_path / "tree", {"a.py": "device.clflush(0)\n"})
        baseline = tmp_path / "baseline.json"
        proc = run_cli("--paths", tree, "--write-baseline", baseline)
        assert proc.returncode == 0
        assert json.loads(baseline.read_text())["fingerprints"]
        proc = run_cli("--paths", tree, "--baseline", baseline)
        assert proc.returncode == 0
        assert "suppressed by baseline" in proc.stdout

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for code in ("ESP101", "ESP201", "ESP301"):
            assert code in proc.stdout


class TestLegacyWrappers:
    def test_find_violations_legacy_shape(self, tmp_path):
        from repro.tools.lint_persist import find_violations
        write_tree(tmp_path, {"a.py": "device.clflush(0)\n"})
        assert find_violations(tmp_path) \
            == [("a.py", 1, "device.clflush(0)", "raw clflush call")]

    def test_find_violations_does_not_warn(self, tmp_path):
        """pytest promotes DeprecationWarning to error: the library entry
        point must stay silent (only the CLI warns)."""
        from repro.tools.lint_time import find_violations
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            find_violations(tmp_path)

    def test_legacy_main_warns_once(self, tmp_path, capsys):
        from repro.tools import lint_persist
        lint_persist.reset_deprecation_warning()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert lint_persist.main([str(tmp_path)]) == 0
            assert lint_persist.main([str(tmp_path)]) == 0
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "repro.analysis" in str(deprecations[0].message)
        capsys.readouterr()

    def test_legacy_main_raises_on_every_call_under_error_filter(
            self, tmp_path, capsys):
        """``-W error::DeprecationWarning`` must fail every invocation,
        not only the first: marking the one-shot flag before the warn
        would swallow all later errors."""
        import pytest

        from repro.tools import lint_persist, lint_time
        for mod in (lint_persist, lint_time):
            mod.reset_deprecation_warning()
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                for _ in range(2):
                    with pytest.raises(DeprecationWarning,
                                       match="repro.analysis"):
                        mod.main([str(tmp_path)])
        capsys.readouterr()

    def test_legacy_main_output_format(self, tmp_path, capsys):
        from repro.tools import lint_time
        lint_time.reset_deprecation_warning()
        write_tree(tmp_path, {"a.py": "t = time.time()\n"})
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert lint_time.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "a.py:1: wall-clock time.time: t = time.time()" in out
        assert "lint-time: 1 violation(s)" in out
