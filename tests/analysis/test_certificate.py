"""Barrier-elision certificates: coverage, revocation, and the proof
that elision never changes durable state."""

import pytest

from repro.analysis.certificate import SafetyCertificate
from repro.analysis.closure import certify_session
from repro.api import Espresso
from repro.core.safety import SafetyLevel
from repro.errors import UnsafePointerError
from repro.runtime.klass import FieldKind, field

HEAP_BYTES = 256 * 1024


def person_session(tmp_path, safety=SafetyLevel.USER_GUARANTEED,
                   certify=True):
    jvm = Espresso(tmp_path)
    jvm.define_class("Person", [
        field("id", FieldKind.INT),
        field("name", FieldKind.REF, declared="java.lang.String")])
    jvm.create_heap("h", HEAP_BYTES, safety=safety)
    if safety is SafetyLevel.TYPE_BASED:
        policy = jvm.heaps.heap("h").safety
        for name in ("Person", "java.lang.String", "[J",
                     "java.lang.Object"):
            policy.allow(name)
    if certify:
        certify_session(jvm, persist_only={"Person"})
    return jvm


def store_names(jvm, n=10):
    for i in range(n):
        p = jvm.pnew("Person")
        jvm.set_field(p, "id", i)
        jvm.set_field(p, "name", jvm.pnew_string(f"name-{i}"))
        jvm.flush_reachable(p)
        jvm.set_root(f"p{i}", p)


class TestUnit:
    def test_covers_only_certified_fields(self):
        cert = SafetyCertificate([("P", "q")], {"P", "Q"})
        assert cert.covers("P", "q")
        assert not cert.covers("P", "other")
        assert not cert.covers("Q", "q")

    def test_dram_allocation_revokes_dependents(self):
        cert = SafetyCertificate([("P", "q"), ("P", "r")], {"P", "Q", "R"},
                                 {("P", "q"): {"P", "Q"},
                                  ("P", "r"): {"P", "R"}})
        cert.note_dram_allocation("Q")
        assert not cert.covers("P", "q")
        assert cert.covers("P", "r")  # independent entry survives
        assert cert.revocations
        reason, class_name, hit = cert.revocations[0]
        assert class_name == "Q" and ("P", "q") in hit

    def test_unrelated_dram_allocation_is_ignored(self):
        cert = SafetyCertificate([("P", "q")], {"P", "Q"},
                                 {("P", "q"): {"P", "Q"}})
        cert.note_dram_allocation("Elsewhere")
        assert cert.covers("P", "q")
        assert cert.revocations == []

    def test_late_subclass_revokes_ancestor_cones(self):
        """Defining R <: Q after certification widens cone(Q): the
        verified premise 'cone(Q) = {Q}' no longer holds."""
        cert = SafetyCertificate([("P", "q")], {"P", "Q"},
                                 {("P", "q"): {"P", "Q"}})
        cert.note_class_defined("R", ["Q", "java.lang.Object"])
        assert not cert.covers("P", "q")

    def test_persist_only_subclass_does_not_revoke(self):
        cert = SafetyCertificate([("P", "q")], {"P", "Q", "R"},
                                 {("P", "q"): {"P", "Q"}})
        cert.note_class_defined("R", ["Q", "java.lang.Object"])
        assert cert.covers("P", "q")

    def test_fingerprint_stable_and_revocation_free(self):
        a = SafetyCertificate([("P", "q")], {"P", "Q"})
        b = SafetyCertificate([("P", "q")], {"Q", "P"})
        assert a.fingerprint == b.fingerprint
        b.note_dram_allocation("P")
        assert a.fingerprint == b.fingerprint  # identity, not state


class TestSessionElision:
    def test_certified_session_elides_barriers(self, tmp_path):
        jvm = person_session(tmp_path)
        store_names(jvm)
        assert jvm.vm.barrier_elided > 0

    def test_uncertified_session_checks_everything(self, tmp_path):
        jvm = person_session(tmp_path, certify=False)
        store_names(jvm)
        assert jvm.vm.barrier_elided == 0
        assert jvm.vm.barrier_checks > 0

    def test_dram_allocation_disables_elision(self, tmp_path):
        jvm = person_session(tmp_path)
        jvm.vm.new("Person")  # violates the persist-only premise
        cert = jvm.vm.safety_certificate
        assert not cert.covers("Person", "name")
        assert cert.covers("java.lang.String", "value")  # untouched entry
        p = jvm.pnew("Person")
        name = jvm.pnew_string("x")
        before = jvm.vm.barrier_elided
        checks_before = jvm.vm.barrier_checks
        jvm.set_field(p, "name", name)  # revoked: full barrier again
        assert jvm.vm.barrier_elided == before
        assert jvm.vm.barrier_checks == checks_before + 1
        assert cert.revocations

    def test_late_subclass_disables_elision_for_its_cone(self, tmp_path):
        jvm = person_session(tmp_path)
        person = jvm.vm.metaspace.lookup("Person")
        jvm.define_class("Employee", [], super_klass=person)
        cert = jvm.vm.safety_certificate
        assert any("subclass-defined:Employee" in r[0]
                   for r in cert.revocations)

    def test_type_based_rejection_survives_certification(self, tmp_path):
        """Elision never certifies what the policy would reject: an
        uncovered field keeps the full barrier."""
        jvm = person_session(tmp_path, safety=SafetyLevel.TYPE_BASED)
        p = jvm.pnew("Person")
        with pytest.raises(UnsafePointerError):
            jvm.set_field(p, "name", jvm.new_string("volatile"))

    def test_certificate_survives_restart_via_config(self, tmp_path):
        from dataclasses import replace
        jvm = person_session(tmp_path)
        store_names(jvm, 3)
        config = jvm.config
        jvm.shutdown()
        jvm2 = Espresso(tmp_path, config=replace(config))
        jvm2.define_class("Person", [
            field("id", FieldKind.INT),
            field("name", FieldKind.REF, declared="java.lang.String")])
        jvm2.load_heap("h")
        assert jvm2.vm.safety_certificate is not None
        p = jvm2.get_root("p0")
        jvm2.set_field(p, "name", jvm2.pnew_string("again"))
        assert jvm2.vm.barrier_elided > 0


class TestDurableStateParity:
    @pytest.mark.parametrize("safety", [SafetyLevel.USER_GUARANTEED,
                                        SafetyLevel.ZEROING,
                                        SafetyLevel.TYPE_BASED])
    def test_elision_changes_no_durable_byte(self, tmp_path, safety):
        """Acceptance gate: with and without the certificate the durable
        image is byte-identical and fsck-clean at every safety level."""
        from repro.tools.fsck import fsck_heap
        images = {}
        for certify in (False, True):
            jvm = person_session(tmp_path / str(certify), safety=safety,
                                 certify=certify)
            store_names(jvm)
            heap = jvm.heaps.heap("h")
            report = fsck_heap(heap)
            assert report.clean, report.errors
            images[certify] = heap.device.durable_image().tobytes()
            if certify:
                assert jvm.vm.barrier_elided > 0
        assert images[False] == images[True]
