"""Flush/fence-elision analysis: the prover, the certificate, the
commit-time consumption in PersistDomain, and the revocation rules."""

import pytest

from repro.analysis.elision import (
    PJH_SCOPES,
    FlushElisionCertificate,
    analyze_elision,
    certify_elision,
)
from repro.nvm.clock import Clock
from repro.nvm.device import LINE_WORDS, NvmDevice
from repro.nvm.persist import PersistDomain, PersistEventLog


def _log(*events):
    log = PersistEventLog(name="synthetic")
    log.events.extend(events)
    return log


# ----------------------------------------------------------------------
# The trace prover (ESP401/ESP402)
# ----------------------------------------------------------------------
class TestAnalyzeElision:
    def test_reflush_without_store_is_redundant(self):
        report = analyze_elision(_log(
            ("store", 0, 8), ("flush", 0), ("fence",),
            ("flush", 0), ("fence",)))
        assert report.redundant_flushes == {0: 1}
        assert report.redundant_fences == 0
        assert report.flushes == 2 and report.fences == 2

    def test_store_between_flushes_clears_redundancy(self):
        report = analyze_elision(_log(
            ("store", 0, 1), ("flush", 0), ("fence",),
            ("store", 3, 1),            # same line: durable copy stale again
            ("flush", 0), ("fence",)))
        assert report.redundant_flushes == {}

    def test_store_spanning_lines_invalidates_all_of_them(self):
        report = analyze_elision(_log(
            ("flush", 0), ("flush", 1), ("fence",),
            ("store", LINE_WORDS - 1, 2),   # crosses the line-0/1 boundary
            ("flush", 0), ("flush", 1)))
        assert report.redundant_flushes == {}

    def test_fence_with_no_flush_since_previous_is_redundant(self):
        report = analyze_elision(_log(
            ("flush", 0), ("fence",), ("fence",), ("store", 0, 1),
            ("fence",)))
        assert report.redundant_fences == 2

    def test_mutator_tagged_events_are_understood(self):
        # Multi-mutator traces carry a trailing mutator index on stores,
        # flushes and publishes; the replay must not trip on it.
        report = analyze_elision(_log(
            ("store", 0, 8, 0), ("flush", 0, 0), ("fence",),
            ("flush", 0, 1), ("fence",)))
        assert report.redundant_flushes == {0: 1}

    def test_diagnostics_codes_and_determinism(self):
        report = analyze_elision(_log(
            ("flush", 3), ("flush", 3), ("flush", 1), ("flush", 1),
            ("fence",), ("fence",)))
        diags = report.diagnostics()
        assert [d.code for d in diags] == ["ESP401", "ESP401", "ESP402"]
        assert [d.where for d in diags[:2]] == ["line 1", "line 3"]
        assert all(d.severity == "info" for d in diags)


# ----------------------------------------------------------------------
# The certificate object
# ----------------------------------------------------------------------
class TestCertificate:
    def test_scope_matching_covers_forks_not_siblings(self):
        cert = FlushElisionCertificate(["pjh:acct"])
        assert cert.covers_domain("pjh:acct")
        assert cert.covers_domain("pjh:acct:gc-w0")
        assert not cert.covers_domain("pjh:acct2")
        assert not cert.covers_domain("pjh-meta")

    def test_revocation_is_permanent_and_audited(self):
        cert = FlushElisionCertificate(["pjh:h"])
        cert.revoke("premise violated", "pjh:h")
        assert not cert.active
        assert not cert.covers_domain("pjh:h")
        assert cert.revocations == [("premise violated", "pjh:h")]

    def test_fingerprint_depends_on_scopes_and_evidence(self):
        a = FlushElisionCertificate(["pjh:h"], trace_name="t",
                                    evidence={"flushes": 10})
        b = FlushElisionCertificate(["pjh:h"], trace_name="t",
                                    evidence={"flushes": 10})
        c = FlushElisionCertificate(["pjh:h"], trace_name="t",
                                    evidence={"flushes": 11})
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint

    def test_report_certificate_carries_evidence(self):
        report = analyze_elision(_log(
            ("store", 0, 8), ("flush", 0), ("fence",), ("flush", 0),
            ("fence",), ("fence",)))
        cert = report.certificate(["pjh:h"])
        assert cert.evidence == {"flushes": 2, "fences": 3,
                                 "redundant_flushes": 1,
                                 "redundant_fences": 1}
        assert cert.trace_name == "synthetic"


# ----------------------------------------------------------------------
# Commit-time consumption in PersistDomain
# ----------------------------------------------------------------------
@pytest.fixture
def device():
    return NvmDevice(1 << 12, Clock())


@pytest.fixture
def domain(device):
    domain = PersistDomain(device, name="pjh:t")
    domain.elision = FlushElisionCertificate(["pjh:t"])
    return domain


class TestCommitEpochElision:
    def test_durably_equal_line_is_elided_with_its_fence(self, device,
                                                         domain):
        device.write(0, 7)
        domain.persist(0)                      # makes line 0 durable
        flushes, fences = device.stats.flushes, device.stats.fences
        device.write(0, 7)                     # rewrite the same value
        domain.flush(0)
        assert domain.commit_epoch() == 1      # drained, but by proof
        assert device.stats.flushes == flushes
        assert device.stats.fences == fences
        assert device.stats.flushes_elided == 1
        assert device.stats.fences_elided == 1
        assert domain.elision.flushes_elided == 1
        assert domain.elision.fences_elided == 1
        assert domain.pending_lines == 0

    def test_changed_line_still_flushes(self, device, domain):
        device.write(0, 7)
        domain.persist(0)
        device.write(0, 8)                     # durable copy now stale
        domain.flush(0)
        domain.commit_epoch()
        assert device.stats.flushes_elided == 0
        assert domain.read_durable(0) == 8

    def test_mixed_epoch_elides_only_the_redundant_line(self, device,
                                                        domain):
        device.write(0, 1)
        device.write(LINE_WORDS, 2)
        domain.persist(0)
        domain.persist(LINE_WORDS)
        fences = device.stats.fences
        device.write(0, 1)                     # redundant
        device.write(LINE_WORDS, 3)            # genuinely new
        domain.flush(0)
        domain.flush(LINE_WORDS)
        domain.commit_epoch()
        assert device.stats.flushes_elided == 1
        # The epoch still had real work, so its fence was issued.
        assert device.stats.fences == fences + 1
        assert device.stats.fences_elided == 0
        assert domain.read_durable(LINE_WORDS) == 3

    def test_fence_kept_when_an_unfenced_flush_awaits_ordering(
            self, device, domain):
        device.write(0, 1)
        domain.persist(0)
        device.write(LINE_WORDS, 5)
        device.clflush(LINE_WORDS, 1, asynchronous=True)  # no fence yet
        fences = device.stats.fences
        device.write(0, 1)                     # redundant epoch
        domain.flush(0)
        domain.commit_epoch()
        assert device.stats.flushes_elided == 1
        # The fully-elided epoch still fenced: an earlier flush needed it.
        assert device.stats.fences == fences + 1
        assert device.stats.fences_elided == 0

    def test_elision_suspended_while_event_log_traces(self, device, domain):
        device.write(0, 7)
        domain.persist(0)
        device.event_log = PersistEventLog("tap")
        flushes = device.stats.flushes
        device.write(0, 7)
        domain.flush(0)
        domain.commit_epoch()
        assert device.stats.flushes == flushes + 1   # traced = uncertified
        assert device.stats.flushes_elided == 0
        assert [e[0] for e in device.event_log.events] == \
            ["store", "flush", "fence"]

    def test_revoked_certificate_changes_nothing(self, device, domain):
        device.write(0, 7)
        domain.persist(0)
        domain.elision.revoke("test")
        flushes = device.stats.flushes
        device.write(0, 7)
        domain.flush(0)
        domain.commit_epoch()
        assert device.stats.flushes == flushes + 1
        assert device.stats.flushes_elided == 0

    def test_fork_inherits_the_certificate(self, domain):
        child = domain.fork("gc-w0")
        assert child.elision is domain.elision
        assert child.elision.covers_domain(child.name)

    def test_uncovered_domain_never_elides(self, device):
        other = PersistDomain(device, name="h2-wal")
        other.elision = FlushElisionCertificate(["pjh:t"])
        device.write(0, 7)
        other.persist(0)
        device.write(0, 7)
        other.flush(0)
        other.commit_epoch()
        assert device.stats.flushes_elided == 0


# ----------------------------------------------------------------------
# certify_elision: the hazard gate and session installation
# ----------------------------------------------------------------------
class TestCertifyElision:
    def test_refuses_a_trace_with_hazard_errors(self):
        # A pointer made durable while its target never was: ESP201.
        log = _log(("store", 0, 8),
                   ("publish", 16 * LINE_WORDS, 0),
                   ("flush", 16), ("fence",))
        with pytest.raises(ValueError, match="hazard error"):
            certify_elision(None, log, scopes=("pjh:t",), install=False)

    def test_explicit_scopes_need_no_session(self):
        log = _log(("store", 0, 8), ("flush", 0), ("fence",),
                   ("flush", 0), ("fence",))
        cert = certify_elision(None, log,
                               scopes=("pjh:t",) + PJH_SCOPES,
                               install=False)
        assert cert.active
        assert cert.covers_domain("pjh:t")
        assert cert.evidence["redundant_flushes"] == 1

    def test_session_install_reaches_every_component_domain(self, tmp_path):
        from repro.api import Espresso

        jvm = Espresso(tmp_path)
        jvm.create_heap("h", 256 * 1024)
        heap = jvm.heaps.heap("h")
        log = heap.enable_event_log("probe")
        from repro.runtime.klass import FieldKind, field
        jvm.define_class("Box", [field("v", FieldKind.INT)])
        box = jvm.pnew("Box")
        jvm.flush_reachable(box)
        jvm.flush_reachable(box)            # provably redundant
        heap.disable_event_log()
        cert = certify_elision(jvm, log)
        assert jvm.vm.elision_certificate is cert
        assert jvm.config.elision_certificate is cert
        for component in (heap.persist, heap.metadata.persist,
                          heap.name_table.persist,
                          heap.klass_segment.persist, heap.frames.persist):
            assert component.elision is cert
            assert cert.covers_domain(component.name)

    def test_certificate_survives_restart_via_config(self, tmp_path):
        from repro.api import Espresso
        from repro.runtime.klass import FieldKind, field

        jvm = Espresso(tmp_path)
        jvm.create_heap("h", 256 * 1024)
        jvm.define_class("Box", [field("v", FieldKind.INT)])
        heap = jvm.heaps.heap("h")
        log = heap.enable_event_log("probe")
        box = jvm.pnew("Box")
        jvm.flush_reachable(box)
        heap.disable_event_log()
        cert = certify_elision(jvm, log)
        jvm = jvm.restart()
        jvm.load_heap("h")
        assert jvm.vm.elision_certificate is cert
        assert jvm.heaps.heap("h").persist.elision is cert
