"""Exit-code contract of the fsck command line (`python -m repro.tools.fsck`).

The contract is part of the tool's public surface and is relied on by
scripts and CI:

* ``0`` — heap loads and is structurally clean;
* ``1`` — usage error (wrong argument count); usage text on stdout;
* ``2`` — heap is corrupt or unloadable; errors on stdout;
* ``3`` — (``--check-escapes``) clean but holding NVM->DRAM out-pointers;
* ``4`` — (``--check-frames``) clean but the resumable-task frame
  segment is inconsistent.

These tests run the real subprocess so the contract is pinned end to
end (module entry point, argv parsing, SystemExit plumbing), not just
the in-process ``main()`` function.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import Espresso, EspressoConfig
from repro.errors import SimulatedCrash
from repro.runtime.klass import FieldKind, field

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def run_fsck(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.tools.fsck", *map(str, args)],
        capture_output=True, text=True, env=env)


@pytest.fixture
def heap_dir(tmp_path):
    jvm = Espresso(tmp_path)
    node = jvm.define_class("Node", [field("v", FieldKind.INT),
                                     field("next", FieldKind.REF)])
    jvm.create_heap("h", 256 * 1024)
    head = jvm.pnew(node)
    jvm.set_field(head, "v", 7)
    jvm.flush_reachable(head)
    jvm.set_root("head", head)
    jvm.shutdown()
    return tmp_path


def corrupt(heap_dir):
    jvm = Espresso(heap_dir)
    image = jvm.heaps.names.load_image("h")
    image[0] ^= 0xFF  # break the metadata magic
    jvm.heaps.names.save_image("h", image)


def test_exit_0_on_clean_heap(heap_dir):
    proc = run_fsck(heap_dir, "h")
    assert proc.returncode == 0
    assert "clean" in proc.stdout


def test_exit_1_on_missing_args():
    proc = run_fsck()
    assert proc.returncode == 1
    assert "fsck" in proc.stdout  # usage text, not a traceback
    assert proc.stderr == ""


def test_exit_1_on_extra_args(heap_dir):
    proc = run_fsck(heap_dir, "h", "surplus")
    assert proc.returncode == 1


def test_exit_2_on_corrupt_heap(heap_dir):
    corrupt(heap_dir)
    proc = run_fsck(heap_dir, "h")
    assert proc.returncode == 2
    assert "ERROR" in proc.stdout


def test_json_on_corrupt_heap_still_exits_2(heap_dir):
    corrupt(heap_dir)
    proc = run_fsck("--json", heap_dir, "h")
    assert proc.returncode == 2
    payload = json.loads(proc.stdout)
    assert payload["clean"] is False
    assert payload["errors"]


def test_json_on_clean_heap_exits_0(heap_dir):
    proc = run_fsck("--json", heap_dir, "h")
    assert proc.returncode == 0
    payload = json.loads(proc.stdout)
    assert payload["clean"] is True
    assert payload["errors"] == []


@pytest.fixture
def escape_heap_dir(tmp_path):
    """A structurally clean UG heap holding one NVM->DRAM out-pointer."""
    jvm = Espresso(tmp_path)
    node = jvm.define_class("Node", [field("v", FieldKind.INT),
                                     field("next", FieldKind.REF)])
    jvm.create_heap("h", 256 * 1024)
    head = jvm.pnew(node)
    jvm.set_field(head, "next", jvm.vm.new(node))  # DRAM ref: legal under UG
    jvm.flush_reachable(head)
    jvm.set_root("head", head)
    jvm.shutdown()
    return tmp_path


def test_escapes_ignored_without_flag(escape_heap_dir):
    proc = run_fsck(escape_heap_dir, "h")
    assert proc.returncode == 0
    assert "clean" in proc.stdout


def test_check_escapes_exits_3(escape_heap_dir):
    proc = run_fsck("--check-escapes", escape_heap_dir, "h")
    assert proc.returncode == 3
    assert "ESCAPE" in proc.stdout
    assert "out-pointer" in proc.stdout


def test_check_escapes_clean_heap_exits_0(heap_dir):
    proc = run_fsck("--check-escapes", heap_dir, "h")
    assert proc.returncode == 0
    assert "clean" in proc.stdout


def test_check_escapes_json_payload(escape_heap_dir):
    proc = run_fsck("--json", "--check-escapes", escape_heap_dir, "h")
    assert proc.returncode == 3
    payload = json.loads(proc.stdout)
    assert payload["clean"] is True
    assert payload["out_pointers"] == 1
    assert len(payload["escape_slots"]) == 1
    assert payload["escape_slots"][0] > 0  # heap-relative slot offset


def test_check_escapes_still_exits_2_when_corrupt(escape_heap_dir):
    corrupt(escape_heap_dir)
    proc = run_fsck("--check-escapes", escape_heap_dir, "h")
    assert proc.returncode == 2


@pytest.fixture
def frame_heap_dir(tmp_path):
    """A loadable heap crashed mid-task: live frames, checkpointed slots.

    Returns ``(heap_dir, root_frame_offset)`` so tests can corrupt a
    specific frame word in the saved image.
    """
    # alloc_buffer_words=0 keeps the historical failpoint-hit arithmetic
    # below exact (buffered allocation adds a refill hit per buffer).
    jvm = Espresso(tmp_path, config=EspressoConfig(resumable=True,
                                                   alloc_buffer_words=0))
    jvm.define_class("Node", [field("v", FieldKind.INT),
                              field("next", FieldKind.REF)])

    @jvm.register_task("build")
    def build(task, s, n):
        prev = None
        for i in range(n):
            def mk(i=i, prev=prev):
                node = s.pnew("Node")
                s.set_field(node, "v", i)
                if prev is not None:
                    s.set_field(node, "next", prev)
                s.flush_reachable(node)
                return node
            prev = task.step(mk)
        s.set_root("list", prev)
        return n

    jvm.create_heap("h", 256 * 1024)
    root_frame = jvm.heaps.heap("h").frames.offset
    # Root push costs 2 failpoint hits, each step checkpoint 1 more:
    # hit 5 lands after step slots 0..2 are durably checkpointed.
    jvm.vm.failpoints.crash_on_global_hit(5)
    with pytest.raises(SimulatedCrash):
        jvm.resumable_task("build").run(4)
    jvm.crash()  # saves the durable image mid-task
    return tmp_path, root_frame


def corrupt_frame_slot(frame_heap_dir):
    """Dangle a checkpointed KIND_REF step slot in the saved image."""
    from repro.core.frame_segment import F_SLOTS
    heap_dir, root_frame = frame_heap_dir
    jvm = Espresso(heap_dir)
    image = jvm.heaps.names.load_image("h")
    image[root_frame + F_SLOTS + 1] = 999_999  # slot 0's word, no object there
    jvm.heaps.names.save_image("h", image)
    return heap_dir


def test_frames_ignored_without_flag(frame_heap_dir):
    heap_dir = corrupt_frame_slot(frame_heap_dir)
    proc = run_fsck(heap_dir, "h")
    assert proc.returncode == 0
    assert "clean" in proc.stdout


def test_check_frames_exits_4(frame_heap_dir):
    heap_dir = corrupt_frame_slot(frame_heap_dir)
    proc = run_fsck("--check-frames", heap_dir, "h")
    assert proc.returncode == 4
    assert "FRAME" in proc.stdout
    assert "dangles" in proc.stdout


def test_check_frames_live_stack_is_clean(frame_heap_dir):
    """A mid-task heap with an intact frame stack passes the check."""
    heap_dir, _root_frame = frame_heap_dir
    proc = run_fsck("--check-frames", heap_dir, "h")
    assert proc.returncode == 0
    assert "clean" in proc.stdout


def test_check_frames_clean_heap_exits_0(heap_dir):
    proc = run_fsck("--check-frames", heap_dir, "h")
    assert proc.returncode == 0
    assert "clean" in proc.stdout


def test_check_frames_json_payload(frame_heap_dir):
    heap_dir = corrupt_frame_slot(frame_heap_dir)
    proc = run_fsck("--json", "--check-frames", heap_dir, "h")
    assert proc.returncode == 4
    payload = json.loads(proc.stdout)
    assert payload["clean"] is True          # object graph is fine
    assert payload["frames_clean"] is False
    assert payload["frames"] >= 1
    assert payload["frame_errors"]


def test_check_frames_still_exits_2_when_corrupt(frame_heap_dir):
    heap_dir = corrupt_frame_slot(frame_heap_dir)
    corrupt(heap_dir)
    proc = run_fsck("--check-frames", heap_dir, "h")
    assert proc.returncode == 2


# --- --all-heaps: aggregate fleet-style checking, worst exit code wins ------


@pytest.fixture
def multi_heap_dir(tmp_path):
    """Three independent clean heaps under one directory."""
    jvm = Espresso(tmp_path)
    node = jvm.define_class("Node", [field("v", FieldKind.INT),
                                     field("next", FieldKind.REF)])
    for name in ("alpha", "beta", "gamma"):
        jvm.create_heap(name, 256 * 1024)
        head = jvm.pnew(node, heap=name)
        jvm.set_field(head, "v", 7)
        jvm.flush_reachable(head)
        jvm.set_root("head", head, heap=name)
    jvm.shutdown()
    return tmp_path


def corrupt_named(heap_dir, name):
    jvm = Espresso(heap_dir)
    image = jvm.heaps.names.load_image(name)
    image[0] ^= 0xFF
    jvm.heaps.names.save_image(name, image)


def test_all_heaps_exit_0_when_every_heap_clean(multi_heap_dir):
    proc = run_fsck("--all-heaps", multi_heap_dir)
    assert proc.returncode == 0
    for name in ("alpha", "beta", "gamma"):
        assert f"--- {name} ---" in proc.stdout
    assert "3 heap(s) scanned, 0 dirty" in proc.stdout


def test_all_heaps_exit_1_on_extra_positional(multi_heap_dir):
    proc = run_fsck("--all-heaps", multi_heap_dir, "alpha")
    assert proc.returncode == 1
    assert "fsck" in proc.stdout  # usage text, not a traceback


def test_all_heaps_exit_1_on_empty_directory(tmp_path):
    proc = run_fsck("--all-heaps", tmp_path)
    assert proc.returncode == 1
    assert "no heaps" in proc.stdout


def test_all_heaps_exit_2_when_one_heap_corrupt(multi_heap_dir):
    corrupt_named(multi_heap_dir, "beta")
    proc = run_fsck("--all-heaps", multi_heap_dir)
    assert proc.returncode == 2
    assert "ERROR" in proc.stdout
    assert "3 heap(s) scanned, 1 dirty" in proc.stdout


def test_all_heaps_exit_3_on_escapes(escape_heap_dir):
    proc = run_fsck("--all-heaps", "--check-escapes", escape_heap_dir)
    assert proc.returncode == 3
    assert "ESCAPE" in proc.stdout


def test_all_heaps_exit_4_on_frame_damage(frame_heap_dir):
    heap_dir = corrupt_frame_slot(frame_heap_dir)
    proc = run_fsck("--all-heaps", "--check-frames", heap_dir)
    assert proc.returncode == 4
    assert "FRAME" in proc.stdout


def test_all_heaps_corruption_outranks_escapes(escape_heap_dir):
    """Worst-wins: a corrupt sibling beats a clean-but-escaping heap."""
    jvm = Espresso(escape_heap_dir)
    jvm.create_heap("sick", 256 * 1024)
    jvm.shutdown()
    corrupt_named(escape_heap_dir, "sick")
    proc = run_fsck("--all-heaps", "--check-escapes", escape_heap_dir)
    assert proc.returncode == 2


def test_all_heaps_json_aggregates_per_heap(multi_heap_dir):
    corrupt_named(multi_heap_dir, "gamma")
    proc = run_fsck("--json", "--all-heaps", multi_heap_dir)
    assert proc.returncode == 2
    payload = json.loads(proc.stdout)
    assert payload["scanned"] == 3
    assert payload["worst"] == 2
    assert set(payload["heaps"]) == {"alpha", "beta", "gamma"}
    assert payload["heaps"]["alpha"]["exit_code"] == 0
    assert payload["heaps"]["gamma"]["exit_code"] == 2
    assert payload["heaps"]["gamma"]["clean"] is False


def test_all_heaps_covers_a_real_fleet(tmp_path):
    """The flag's reason to exist: one command over a whole fleet."""
    from repro.fleet import FleetConfig, FleetRouter
    fleet = FleetRouter.create(
        tmp_path / "fleet",
        config=FleetConfig(shards=2, shard_size_bytes=512 * 1024))
    fleet.put("alice", "k", "v")
    fleet.shutdown()
    proc = run_fsck("--json", "--all-heaps", tmp_path / "fleet")
    assert proc.returncode == 0
    payload = json.loads(proc.stdout)
    assert set(payload["heaps"]) == {"__fleet__", "shard-0", "shard-1"}
    assert payload["worst"] == 0
