"""The lint-time rule, enforced as part of tier-1."""

from pathlib import Path

from repro.tools.lint_time import EXEMPT, find_violations

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


def test_no_wall_clock_reads_outside_clock_layer():
    violations = find_violations(SRC_ROOT)
    assert violations == [], "\n".join(
        f"{rel}:{lineno}: {reason}: {line}"
        for rel, lineno, line, reason in violations)


def test_exemptions_are_the_clock_and_obs_layers_only():
    # The exemption list is part of the contract: widening it should be a
    # conscious, reviewed decision.
    assert EXEMPT == ("repro/nvm/clock.py", "repro/obs/",
                      "repro/tools/lint_time.py")


def test_linter_flags_wall_clock_reads(tmp_path):
    bad = tmp_path / "repro" / "bench" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n"
                   "start = time.time()\n"
                   "t = time.perf_counter_ns()\n"
                   "m = time.monotonic()\n")
    violations = find_violations(tmp_path)
    assert [(v[0], v[1], v[3]) for v in violations] == [
        ("repro/bench/bad.py", 2, "wall-clock time.time"),
        ("repro/bench/bad.py", 3, "wall-clock time.perf_counter"),
        ("repro/bench/bad.py", 4, "wall-clock time.monotonic"),
    ]


def test_linter_ignores_comments_and_exempt_files(tmp_path):
    (tmp_path / "repro" / "nvm").mkdir(parents=True)
    (tmp_path / "repro" / "nvm" / "clock.py").write_text(
        "import time\nt = time.time()\n")
    (tmp_path / "repro" / "obs").mkdir(parents=True)
    (tmp_path / "repro" / "obs" / "x.py").write_text("t = time.monotonic()\n")
    (tmp_path / "repro" / "core").mkdir(parents=True)
    (tmp_path / "repro" / "core" / "y.py").write_text(
        "# never call time.time() here; use the Clock\nnow = clock.now_ns\n")
    assert find_violations(tmp_path) == []
