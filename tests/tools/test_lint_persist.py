"""The lint-persist rule, enforced as part of tier-1."""

from pathlib import Path

from repro.tools.lint_persist import EXEMPT, find_violations

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


def test_no_raw_flush_calls_outside_persist_layer():
    violations = find_violations(SRC_ROOT)
    assert violations == [], "\n".join(
        f"{rel}:{lineno}: {reason}: {line}"
        for rel, lineno, line, reason in violations)


def test_exemptions_are_the_persist_and_fault_layers_only():
    # The exemption list is part of the contract: widening it should be a
    # conscious, reviewed decision.
    assert EXEMPT == ("repro/nvm/", "repro/faults/",
                      "repro/tools/lint_persist.py")


def test_linter_flags_a_raw_clflush(tmp_path):
    bad = tmp_path / "repro" / "h2" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(device):\n    device.clflush(0)\n"
                   "    device.fence()\n")
    violations = find_violations(tmp_path)
    assert [(v[0], v[1], v[3]) for v in violations] == [
        ("repro/h2/bad.py", 2, "raw clflush call"),
        ("repro/h2/bad.py", 3, "raw fence on a device"),
    ]


def test_linter_ignores_comments_and_exempt_dirs(tmp_path):
    (tmp_path / "repro" / "nvm").mkdir(parents=True)
    (tmp_path / "repro" / "nvm" / "x.py").write_text("d.clflush(0)\n")
    (tmp_path / "repro" / "core").mkdir(parents=True)
    (tmp_path / "repro" / "core" / "y.py").write_text(
        "# device.clflush(0) would be wrong here\npersist.fence()\n")
    assert find_violations(tmp_path) == []
