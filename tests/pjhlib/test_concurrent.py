"""Lock-free durable map/set: protocol, contention, crash recovery.

The structures follow the link-and-persist recipe: CAS at the
destination only, per-node valid/flushed bits, recovery-time completion
of in-flight deletes.  The tests cover the single-threaded surface, the
contended multi-mutator behaviour under the gang, and the recovery
obligations (a durable remove whose physical unlink never ran must
still be gone after reattach).
"""

import pytest

from repro.api import Espresso
from repro.pjhlib.concurrent import PjhConcurrentMap, PjhConcurrentSet
from repro.runtime.mutators import MutatorGang


@pytest.fixture
def ctx(tmp_path):
    jvm = Espresso(tmp_path / "heaps")
    jvm.create_heap("lib", 2 * 1024 * 1024)
    return jvm


class TestMapBasics:
    def test_put_get_overwrite_remove(self, ctx):
        table = PjhConcurrentMap(ctx, buckets=4)
        assert table.put(1, 10) is True           # insert
        assert table.put(1, 11) is False          # overwrite
        assert table.get_raw(1) == 11
        assert table.contains(1)
        assert table.size() == 1
        assert table.remove(1) is True
        assert table.remove(1) is False
        assert table.get(1) is None
        assert table.size() == 0
        assert table.audit() == []

    def test_string_keys_and_values(self, ctx):
        table = PjhConcurrentMap(ctx, buckets=4)
        table.put("roast", "dark")
        table.put("origin", 7)
        assert table.get_raw("roast") == "dark"
        assert table.snapshot_raw() == {"roast": "dark", "origin": 7}

    def test_collisions_share_a_bucket(self, ctx):
        table = PjhConcurrentMap(ctx, buckets=1)  # everything collides
        for i in range(8):
            table.put(i, i * 10)
        table.remove(3)
        assert table.snapshot_raw() == {
            i: i * 10 for i in range(8) if i != 3}
        assert table.audit() == []

    def test_set_wrapper(self, ctx):
        members = PjhConcurrentSet(ctx, buckets=2)
        assert members.add(4) is True
        assert members.add(4) is False
        members.add("x")
        assert members.contains(4)
        assert members.members_raw() == {4, "x"}
        assert members.remove(4) is True
        assert members.members_raw() == {"x"}
        assert members.audit() == []


class TestContended:
    def test_gang_run_audits_clean(self, ctx):
        table = PjhConcurrentMap(ctx, buckets=2)
        gang = MutatorGang(ctx.clock, mutators=4, seed=13)
        for m in range(4):
            for i in range(5):
                gang.submit(m, f"put-{m}-{i}",
                            lambda m=m, i=i: table.put_op(i, m * 100 + i))
            gang.submit(m, f"rm-{m}", lambda m=m: table.remove_op(m))
        report = gang.run()
        assert table.audit() == []
        snapshot = table.snapshot_raw()
        # Every surviving key holds some mutator's write for that key.
        for key, value in snapshot.items():
            assert value % 100 == key
        # Keys 4 (never removed) must be present; removed keys 0-3 may
        # have been re-inserted by a later put — but the per-key history
        # must justify whatever is there: replay it sequentially.
        model = {}
        ops = {f"put-{m}-{i}": ("put", i, m * 100 + i)
               for m in range(4) for i in range(5)}
        ops.update({f"rm-{m}": ("remove", m, None) for m in range(4)})
        for _step, _m, name, kind, _p in report.history:
            if kind != "linearized":
                continue
            verb, key, value = ops[name]
            if verb == "put":
                model[key] = value
            else:
                model.pop(key, None)
        assert snapshot == model

    def test_insert_results_report_the_winner(self, ctx):
        """Two mutators racing to insert the same fresh key: exactly one
        returns True (inserted), the other False (overwrote)."""
        table = PjhConcurrentMap(ctx, buckets=1)
        gang = MutatorGang(ctx.clock, mutators=2, seed=5)
        gang.submit(0, "a", lambda: table.put_op(9, 90))
        gang.submit(1, "b", lambda: table.put_op(9, 91))
        report = gang.run()
        assert sorted(report.results.values()) == [False, True]
        assert table.get_raw(9) in (90, 91)
        assert table.size() == 1


class TestRecovery:
    def _crash_reattach(self, jvm, table):
        jvm.set_root("table", table.h)
        jvm2 = jvm.restart(crash=True)
        jvm2.load_heap("lib")
        return jvm2, PjhConcurrentMap.reattach(jvm2, jvm2.get_root("table"))

    def test_durable_entries_survive_crash(self, ctx):
        table = PjhConcurrentMap(ctx, buckets=4)
        for i in range(10):
            table.put(i, i * 7)
        table.remove(4)
        _, table2 = self._crash_reattach(ctx, table)
        assert table2.snapshot_raw() == {
            i: i * 7 for i in range(10) if i != 4}
        assert table2.size() == 9
        assert table2.audit() == []

    def test_recovery_completes_in_flight_delete(self, ctx):
        """A remove abandoned right after its durability point (valid=0
        flushed, physical unlink never executed) must be completed by
        reattach: the key is gone and the chain holds no dead node."""
        table = PjhConcurrentMap(ctx, buckets=1)
        for i in range(3):
            table.put(i, i)
        gen = table.remove_op(1)
        while True:
            marker = next(gen)
            if marker is not None and marker[0] == "durable":
                break  # abandon before the unlink step
        _, table2 = self._crash_reattach(ctx, table)
        assert table2.snapshot_raw() == {0: 0, 2: 2}
        assert table2.size() == 2
        assert table2.audit() == []

    def test_unpublished_insert_vanishes(self, ctx):
        """An insert abandoned before its link CAS leaves no trace."""
        table = PjhConcurrentMap(ctx, buckets=1)
        table.put(5, 50)
        gen = table.put_op(6, 60)
        next(gen)  # payload flushed, node not yet linked
        _, table2 = self._crash_reattach(ctx, table)
        assert table2.snapshot_raw() == {5: 50}
        assert table2.audit() == []

    def test_set_survives_crash(self, ctx):
        members = PjhConcurrentSet(ctx, buckets=2)
        for name in ("a", "b", "c"):
            members.add(name)
        members.remove("b")
        ctx.set_root("set", members.h)
        jvm2 = ctx.restart(crash=True)
        jvm2.load_heap("lib")
        members2 = PjhConcurrentSet.reattach(jvm2, jvm2.get_root("set"))
        assert members2.members_raw() == {"a", "c"}
        assert members2.audit() == []
