"""Lock-free durable map/set: protocol, contention, crash recovery.

The structures follow the link-and-persist recipe: CAS at the
destination only, per-node valid/flushed bits, recovery-time completion
of in-flight deletes.  The tests cover the single-threaded surface, the
contended multi-mutator behaviour under the gang, and the recovery
obligations (a durable remove whose physical unlink never ran must
still be gone after reattach).
"""

import pytest

from repro.api import Espresso
from repro.errors import SimulatedCrash
from repro.pjhlib.concurrent import PjhConcurrentMap, PjhConcurrentSet
from repro.runtime.mutators import MutatorGang


@pytest.fixture
def ctx(tmp_path):
    jvm = Espresso(tmp_path / "heaps")
    jvm.create_heap("lib", 2 * 1024 * 1024)
    return jvm


def _abandon_remove_after_durability(table, key):
    """Drive a remove up to its durability point (``valid=0`` flushed and
    fenced) and abandon it there — the physical unlink never runs."""
    gen = table.remove_op(key)
    while True:
        marker = next(gen)
        if marker is not None and marker[0] == "durable":
            return


class TestMapBasics:
    def test_put_get_overwrite_remove(self, ctx):
        table = PjhConcurrentMap(ctx, buckets=4)
        assert table.put(1, 10) is True           # insert
        assert table.put(1, 11) is False          # overwrite
        assert table.get_raw(1) == 11
        assert table.contains(1)
        assert table.size() == 1
        assert table.remove(1) is True
        assert table.remove(1) is False
        assert table.get(1) is None
        assert table.size() == 0
        assert table.audit() == []

    def test_string_keys_and_values(self, ctx):
        table = PjhConcurrentMap(ctx, buckets=4)
        table.put("roast", "dark")
        table.put("origin", 7)
        assert table.get_raw("roast") == "dark"
        assert table.snapshot_raw() == {"roast": "dark", "origin": 7}

    def test_collisions_share_a_bucket(self, ctx):
        table = PjhConcurrentMap(ctx, buckets=1)  # everything collides
        for i in range(8):
            table.put(i, i * 10)
        table.remove(3)
        assert table.snapshot_raw() == {
            i: i * 10 for i in range(8) if i != 3}
        assert table.audit() == []

    def test_set_wrapper(self, ctx):
        members = PjhConcurrentSet(ctx, buckets=2)
        assert members.add(4) is True
        assert members.add(4) is False
        members.add("x")
        assert members.contains(4)
        assert members.members_raw() == {4, "x"}
        assert members.remove(4) is True
        assert members.members_raw() == {"x"}
        assert members.audit() == []


class TestContended:
    def test_gang_run_audits_clean(self, ctx):
        table = PjhConcurrentMap(ctx, buckets=2)
        gang = MutatorGang(ctx.clock, mutators=4, seed=13)
        for m in range(4):
            for i in range(5):
                gang.submit(m, f"put-{m}-{i}",
                            lambda m=m, i=i: table.put_op(i, m * 100 + i))
            gang.submit(m, f"rm-{m}", lambda m=m: table.remove_op(m))
        report = gang.run()
        assert table.audit() == []
        snapshot = table.snapshot_raw()
        # Every surviving key holds some mutator's write for that key.
        for key, value in snapshot.items():
            assert value % 100 == key
        # Keys 4 (never removed) must be present; removed keys 0-3 may
        # have been re-inserted by a later put — but the per-key history
        # must justify whatever is there: replay it sequentially.
        model = {}
        ops = {f"put-{m}-{i}": ("put", i, m * 100 + i)
               for m in range(4) for i in range(5)}
        ops.update({f"rm-{m}": ("remove", m, None) for m in range(4)})
        for _step, _m, name, kind, _p in report.history:
            if kind != "linearized":
                continue
            verb, key, value = ops[name]
            if verb == "put":
                model[key] = value
            else:
                model.pop(key, None)
        assert snapshot == model

    def test_insert_results_report_the_winner(self, ctx):
        """Two mutators racing to insert the same fresh key: exactly one
        returns True (inserted), the other False (overwrote)."""
        table = PjhConcurrentMap(ctx, buckets=1)
        gang = MutatorGang(ctx.clock, mutators=2, seed=5)
        gang.submit(0, "a", lambda: table.put_op(9, 90))
        gang.submit(1, "b", lambda: table.put_op(9, 91))
        report = gang.run()
        assert sorted(report.results.values()) == [False, True]
        assert table.get_raw(9) in (90, 91)
        assert table.size() == 1


class TestRecovery:
    def _crash_reattach(self, jvm, table):
        jvm.set_root("table", table.h)
        jvm2 = jvm.restart(crash=True)
        jvm2.load_heap("lib")
        return jvm2, PjhConcurrentMap.reattach(jvm2, jvm2.get_root("table"))

    def test_durable_entries_survive_crash(self, ctx):
        table = PjhConcurrentMap(ctx, buckets=4)
        for i in range(10):
            table.put(i, i * 7)
        table.remove(4)
        _, table2 = self._crash_reattach(ctx, table)
        assert table2.snapshot_raw() == {
            i: i * 7 for i in range(10) if i != 4}
        assert table2.size() == 9
        assert table2.audit() == []

    def test_recovery_completes_in_flight_delete(self, ctx):
        """A remove abandoned right after its durability point (valid=0
        flushed, physical unlink never executed) must be completed by
        reattach: the key is gone and the chain holds no dead node."""
        table = PjhConcurrentMap(ctx, buckets=1)
        for i in range(3):
            table.put(i, i)
        gen = table.remove_op(1)
        while True:
            marker = next(gen)
            if marker is not None and marker[0] == "durable":
                break  # abandon before the unlink step
        _, table2 = self._crash_reattach(ctx, table)
        assert table2.snapshot_raw() == {0: 0, 2: 2}
        assert table2.size() == 2
        assert table2.audit() == []

    def test_unpublished_insert_vanishes(self, ctx):
        """An insert abandoned before its link CAS leaves no trace."""
        table = PjhConcurrentMap(ctx, buckets=1)
        table.put(5, 50)
        gen = table.put_op(6, 60)
        next(gen)  # payload flushed, node not yet linked
        _, table2 = self._crash_reattach(ctx, table)
        assert table2.snapshot_raw() == {5: 50}
        assert table2.audit() == []

    def test_crash_loop_with_dead_node_runs(self, tmp_path):
        """Repeated crash/recover cycles over one chain that keeps
        accumulating runs of logically-deleted nodes (durable ``valid=0``,
        unlink never executed, including a re-insert of a dead key):
        every reattach must complete the unlinks without ever producing
        a false cycle or duplicate-key positive in ``audit()``."""
        jvm = Espresso(tmp_path / "heaps")
        jvm.create_heap("lib", 4 * 1024 * 1024)
        table = PjhConcurrentMap(jvm, buckets=1)   # one chain for everything
        jvm.set_root("table", table.h)
        model = {}
        for cycle in range(4):
            base = cycle * 10
            for i in range(base, base + 6):
                table.put(i, i * 3)
                model[i] = i * 3
            # Three consecutive in-flight deletes: abandon each right
            # after its durability point, before the physical unlink.
            for i in range(base, base + 3):
                _abandon_remove_after_durability(table, i)
                del model[i]
            # Re-insert one durably-deleted key while its dead node is
            # still linked: the chain now holds a live and a dead node
            # for the same key — audit must not call that a duplicate.
            table.put(base, base * 5)
            model[base] = base * 5
            assert table.audit() == []
            jvm = jvm.restart(crash=True)
            jvm.load_heap("lib")
            table = PjhConcurrentMap.reattach(jvm, jvm.get_root("table"))
            assert table.audit() == []
            assert table.snapshot_raw() == model
            assert table.size() == len(model)

    @pytest.mark.parametrize("nth", range(1, 6))
    def test_crash_during_recovery_unlinking_is_idempotent(self, tmp_path,
                                                           nth):
        """Crash reattach itself after its N-th unlink flush: the next
        recovery must still finish the job with a clean audit."""
        jvm = Espresso(tmp_path / "heaps")
        jvm.create_heap("lib", 2 * 1024 * 1024)
        table = PjhConcurrentMap(jvm, buckets=1)
        jvm.set_root("table", table.h)
        for i in range(6):
            table.put(i, i)
        for i in (0, 2, 3, 5):   # dead head run + interior run
            _abandon_remove_after_durability(table, i)
        jvm2 = jvm.restart(crash=True)
        jvm2.load_heap("lib")
        device = jvm2.heaps.heap("lib").device
        original = device.clflush
        remaining = [nth]

        def bombed(offset, count=1, asynchronous=False):
            original(offset, count, asynchronous)
            remaining[0] -= 1
            if remaining[0] == 0:
                raise SimulatedCrash("crash mid-recovery")

        device.clflush = bombed
        crashed = False
        try:
            PjhConcurrentMap.reattach(jvm2, jvm2.get_root("table"))
        except SimulatedCrash:
            crashed = True
        finally:
            del device.__dict__["clflush"]
        jvm3 = jvm2.restart(crash=True)
        jvm3.load_heap("lib")
        table3 = PjhConcurrentMap.reattach(jvm3, jvm3.get_root("table"))
        assert table3.audit() == []
        assert table3.snapshot_raw() == {1: 1, 4: 4}
        assert table3.size() == 2
        if not crashed:   # bomb never fired: the sweep range is exhausted
            assert nth > 4

    def test_set_survives_crash(self, ctx):
        members = PjhConcurrentSet(ctx, buckets=2)
        for name in ("a", "b", "c"):
            members.add(name)
        members.remove("b")
        ctx.set_root("set", members.h)
        jvm2 = ctx.restart(crash=True)
        jvm2.load_heap("lib")
        members2 = PjhConcurrentSet.reattach(jvm2, jvm2.get_root("set"))
        assert members2.members_raw() == {"a", "c"}
        assert members2.audit() == []
