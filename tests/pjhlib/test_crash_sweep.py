"""Flush-boundary crash sweep for the PJH collection library.

Crashes the PJH device after its N-th clflush during a sequence of ACID
collection operations, reloads in a fresh JVM, replays the Java-level undo
log, and checks that the surviving state is a committed prefix — no torn
multi-slot operation is ever visible.
"""

import pytest

from repro.api import Espresso
from repro.errors import SimulatedCrash
from repro.pjhlib import PjhHashmap, PjhLong, PjhTransaction


class _CrashAfterNFlushes:
    def __init__(self, device, n):
        self.remaining = n
        self.device = device
        self.original = device.clflush

    def __enter__(self):
        def guarded(offset, count=1, asynchronous=False):
            self.original(offset, count, asynchronous)
            self.remaining -= 1
            if self.remaining == 0:
                raise SimulatedCrash("injected crash after clflush")
        self.device.clflush = guarded
        return self

    def __exit__(self, *exc):
        self.device.clflush = self.original
        return False


def build(heap_dir):
    jvm = Espresso(heap_dir)
    jvm.create_heap("kv", 2 * 1024 * 1024)
    txn = PjhTransaction(jvm)
    table = PjhHashmap(jvm, txn)
    jvm.set_root("table", table.h)
    jvm.set_root("txn_entries", txn._entries)
    jvm.set_root("txn_meta", txn._meta)
    return jvm, txn, table


def workload(jvm, txn, table):
    """A mix of puts, overwrites and removes; committed k -> v recorded."""
    for i in range(8):
        table.put(PjhLong(jvm, txn, i), PjhLong(jvm, txn, i * 10))
    for i in range(0, 8, 2):
        table.put(PjhLong(jvm, txn, i), PjhLong(jvm, txn, i * 100))
    table.remove_raw(3)
    table.remove_raw(5)


def expected_final():
    model = {i: i * 10 for i in range(8)}
    for i in range(0, 8, 2):
        model[i] = i * 100
    del model[3]
    del model[5]
    return model


def reattach_and_recover(heap_dir):
    jvm = Espresso(heap_dir)
    jvm.load_heap("kv")
    txn = PjhTransaction.reattach(jvm, jvm.get_root("txn_entries"),
                                  jvm.get_root("txn_meta"))
    txn.recover()  # roll back any torn multi-slot operation
    table = PjhHashmap(jvm, txn, handle=jvm.get_root("table"))
    return jvm, table


def check_committed_prefix(jvm, table):
    """Every surviving entry is value-consistent with the workload."""
    final = expected_final()
    seen = {}
    for key_h, value_h in table.items():
        key = jvm.get_field(key_h, "value")
        value = jvm.get_field(value_h, "value")
        seen[key] = value
        # Any surviving value must be one the workload actually wrote.
        allowed = {key * 10}
        if key % 2 == 0:
            allowed.add(key * 100)
        assert value in allowed, (key, value)
    assert table.size() == len(seen)
    return seen


def test_full_run_reaches_expected_state(tmp_path):
    jvm, txn, table = build(tmp_path / "h")
    workload(jvm, txn, table)
    jvm.crash()
    jvm2, table2 = reattach_and_recover(tmp_path / "h")
    assert check_committed_prefix(jvm2, table2) == expected_final()


@pytest.mark.parametrize("nth", list(range(1, 60, 4)) + [80, 120, 200])
def test_crash_after_nth_flush(tmp_path, nth):
    jvm, txn, table = build(tmp_path / "h")
    completed = False
    device = jvm.heaps.heap("kv").device
    try:
        with _CrashAfterNFlushes(device, nth):
            workload(jvm, txn, table)
            completed = True
    except SimulatedCrash:
        pass
    jvm.crash()
    jvm2, table2 = reattach_and_recover(tmp_path / "h")
    survivors = check_committed_prefix(jvm2, table2)
    if completed:
        assert survivors == expected_final()
