"""Tests for the PJH-native collection library (Fig. 15's Espresso side)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Espresso
from repro.errors import ArrayIndexOutOfBoundsException
from repro.pjhlib import (
    PjhArrayList,
    PjhHashmap,
    PjhLong,
    PjhLongArray,
    PjhString,
    PjhTransaction,
    PjhTuple,
)


@pytest.fixture
def ctx(tmp_path):
    jvm = Espresso(tmp_path / "heaps")
    jvm.create_heap("lib", 2 * 1024 * 1024)
    txn = PjhTransaction(jvm)
    return jvm, txn


class TestBoxed:
    def test_long(self, ctx):
        jvm, txn = ctx
        v = PjhLong(jvm, txn, 42)
        assert v.long_value() == 42
        v.set(-17)
        assert v.long_value() == -17

    def test_string(self, ctx):
        jvm, txn = ctx
        s = PjhString(jvm, txn, "espresso")
        assert s.str_value() == "espresso"


class TestLongArray:
    def test_roundtrip(self, ctx):
        jvm, txn = ctx
        arr = PjhLongArray(jvm, txn, 10)
        arr.set(3, 99)
        assert arr.get(3) == 99
        assert arr.length() == 10


class TestTuple:
    def test_roundtrip(self, ctx):
        jvm, txn = ctx
        t = PjhTuple(jvm, txn, 3)
        t.set(0, PjhLong(jvm, txn, 5))
        got = t.get(0)
        assert jvm.get_field(got, "value") == 5
        assert t.get(1) is None
        assert t.arity() == 3


class TestArrayList:
    def test_growth(self, ctx):
        jvm, txn = ctx
        lst = PjhArrayList(jvm, txn)
        for i in range(25):
            lst.add(PjhLong(jvm, txn, i))
        assert lst.size() == 25
        assert [jvm.get_field(lst.get(i), "value") for i in range(25)] \
            == list(range(25))

    def test_set(self, ctx):
        jvm, txn = ctx
        lst = PjhArrayList(jvm, txn)
        lst.add(PjhLong(jvm, txn, 1))
        lst.set(0, PjhLong(jvm, txn, 2))
        assert jvm.get_field(lst.get(0), "value") == 2

    def test_bounds(self, ctx):
        jvm, txn = ctx
        lst = PjhArrayList(jvm, txn)
        with pytest.raises(ArrayIndexOutOfBoundsException):
            lst.get(0)


class TestHashmap:
    def test_put_get_remove(self, ctx):
        jvm, txn = ctx
        m = PjhHashmap(jvm, txn)
        m.put(PjhLong(jvm, txn, 1), PjhLong(jvm, txn, 10))
        m.put(PjhLong(jvm, txn, 2), PjhLong(jvm, txn, 20))
        assert jvm.get_field(m.get(PjhLong(jvm, txn, 1)), "value") == 10
        assert m.remove(PjhLong(jvm, txn, 1))
        assert m.get(PjhLong(jvm, txn, 1)) is None
        assert m.size() == 1

    def test_string_keys(self, ctx):
        jvm, txn = ctx
        m = PjhHashmap(jvm, txn)
        m.put(PjhString(jvm, txn, "k"), PjhLong(jvm, txn, 5))
        assert jvm.get_field(m.get(PjhString(jvm, txn, "k")), "value") == 5

    def test_rehash(self, ctx):
        jvm, txn = ctx
        m = PjhHashmap(jvm, txn)
        for i in range(40):
            m.put(PjhLong(jvm, txn, i), PjhLong(jvm, txn, i + 100))
        for i in range(40):
            assert jvm.get_field(m.get(PjhLong(jvm, txn, i)), "value") \
                == i + 100


class TestAcidAndPersistence:
    def test_committed_update_survives_crash(self, tmp_path):
        jvm = Espresso(tmp_path / "h")
        jvm.create_heap("lib", 1024 * 1024)
        txn = PjhTransaction(jvm)
        v = PjhLong(jvm, txn, 1)
        v.set(2)
        jvm.set_root("v", v.h)
        jvm.crash()

        jvm2 = Espresso(tmp_path / "h")
        jvm2.load_heap("lib")
        assert jvm2.get_field(jvm2.get_root("v"), "value") == 2

    def test_torn_update_rolls_back_via_undo_log(self, tmp_path):
        jvm = Espresso(tmp_path / "h")
        jvm.create_heap("lib", 1024 * 1024)
        txn = PjhTransaction(jvm)
        v = PjhLong(jvm, txn, 1)
        jvm.set_root("v", v.h)
        jvm.set_root("txn_entries", txn._entries)
        jvm.set_root("txn_meta", txn._meta)
        # Tear an update: log + write + flush, but never commit.
        klass = jvm.vm.klass_of(v.h)
        slot = v.h.address + klass.field_offset("value")
        txn.begin()
        txn.log_slot(slot)
        jvm.set_field(v.h, "value", 99)
        jvm.flush_field(v.h, "value")
        jvm.crash()

        jvm2 = Espresso(tmp_path / "h")
        jvm2.load_heap("lib")
        txn2 = PjhTransaction.__new__(PjhTransaction)
        txn2.jvm = jvm2
        txn2.vm = jvm2.vm
        txn2._entries = jvm2.get_root("txn_entries")
        txn2._meta = jvm2.get_root("txn_meta")
        txn2._heap = jvm2.vm.service_of(txn2._entries.address)
        txn2.capacity = jvm2.array_length(txn2._entries) // 2
        txn2._count = 0
        assert txn2.recover()  # rolls the torn write back
        assert jvm2.get_field(jvm2.get_root("v"), "value") == 1

    def test_abort_restores(self, ctx):
        jvm, txn = ctx
        v = PjhLong(jvm, txn, 7)
        klass = jvm.vm.klass_of(v.h)
        slot = v.h.address + klass.field_offset("value")
        txn.begin()
        txn.log_slot(slot)
        jvm.set_field(v.h, "value", 8)
        txn.abort()
        assert v.long_value() == 7


@settings(max_examples=10, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["put", "remove"]),
                          st.integers(0, 10), st.integers(0, 50)),
                min_size=1, max_size=25))
def test_property_pjh_hashmap_matches_dict(tmp_path_factory, ops):
    jvm = Espresso(tmp_path_factory.mktemp("heaps"))
    jvm.create_heap("lib", 4 * 1024 * 1024)
    txn = PjhTransaction(jvm)
    m = PjhHashmap(jvm, txn)
    model = {}
    for op, k, v in ops:
        if op == "put":
            m.put(PjhLong(jvm, txn, k), PjhLong(jvm, txn, v))
            model[k] = v
        else:
            assert m.remove(PjhLong(jvm, txn, k)) == (k in model)
            model.pop(k, None)
    assert m.size() == len(model)
    for k, v in model.items():
        assert jvm.get_field(m.get(PjhLong(jvm, txn, k)), "value") == v


class TestRehashDurability:
    """Rehash splices live entries, so it must be undo-logged + flushed.

    Regression: pre-fix, mutated ``next`` pointers were never flushed, so
    a crash *after* a rehash resurrected stale chain pointers and
    committed entries silently vanished (the fleet smoke found this with
    >12 entries per shard — the sweep's 8-entry workload never rehashed).
    """

    def test_entries_survive_crash_after_rehash(self, tmp_path):
        jvm = Espresso(tmp_path / "heaps")
        jvm.create_heap("lib", 2 * 1024 * 1024)
        txn = PjhTransaction(jvm)
        m = PjhHashmap(jvm, txn)
        jvm.set_root("table", m.h)
        jvm.set_root("txn_entries", txn._entries)
        jvm.set_root("txn_meta", txn._meta)
        count = 40                      # crosses two rehash thresholds
        for i in range(count):
            m.put(PjhLong(jvm, txn, i), PjhLong(jvm, txn, i * 3))
        jvm2 = jvm.restart(crash=True)  # unflushed lines are lost
        jvm2.load_heap("lib")
        txn2 = PjhTransaction.reattach(jvm2, jvm2.get_root("txn_entries"),
                                       jvm2.get_root("txn_meta"))
        assert not txn2.recover()       # nothing mid-flight to roll back
        m2 = PjhHashmap(jvm2, txn2, handle=jvm2.get_root("table"))
        assert m2.size() == count
        for i in range(count):
            assert jvm2.get_field(m2.get_raw(i), "value") == i * 3
