"""Unit tests for entity metadata extraction and object->SQL mapping."""

import pytest

from repro.errors import IllegalArgumentException
from repro.h2.values import SqlType
from repro.jpa import Basic, ElementCollection, Id, ManyToOne, entity, meta_of
from repro.jpa.model import DISCRIMINATOR, meta_by_name
from repro.jpa import sql_mapping
from repro.jpab.model import (
    BasicPerson,
    CollectionPerson,
    ExtEmployee,
    ExtManager,
    ExtPerson,
    Node,
)


class TestEntityMeta:
    def test_pk_comes_first(self):
        meta = meta_of(BasicPerson)
        assert meta.pk_field == "id"
        assert meta.columns[0][1].primary_key

    def test_table_name_defaults_and_overrides(self):
        assert meta_of(BasicPerson).table == "BasicPerson"
        assert meta_of(ExtEmployee).root.table == "ExtPerson"

    def test_inheritance_chain(self):
        manager = meta_of(ExtManager)
        assert manager.base_meta is meta_of(ExtEmployee)
        assert manager.root is meta_of(ExtPerson)
        names = [name for name, _ in manager.columns]
        # Inherited columns first (pk pinned to the front).
        assert names[0] == "id"
        assert "salary" in names and "bonus" in names

    def test_collections_and_references(self):
        assert [n for n, _ in meta_of(CollectionPerson).collections] \
            == ["phones"]
        assert [n for n, _ in meta_of(Node).references] == ["next"]

    def test_collection_table_name(self):
        assert meta_of(CollectionPerson).collection_table("phones") \
            == "CollectionPerson_phones"

    def test_meta_by_name(self):
        assert meta_by_name("Node") is meta_of(Node)
        with pytest.raises(IllegalArgumentException):
            meta_by_name("NoSuchEntity")

    def test_entity_requires_exactly_one_id(self):
        with pytest.raises(IllegalArgumentException):
            @entity()
            class NoId:
                name = Basic(SqlType.VARCHAR)

    def test_unannotated_class_rejected(self):
        class Plain:
            pass
        with pytest.raises(IllegalArgumentException):
            meta_of(Plain)


class TestSchemaColumns:
    def test_basic_schema(self):
        columns = sql_mapping.schema_columns(meta_of(BasicPerson))
        assert [c[0] for c in columns] == ["id", "first_name", "last_name",
                                           "phone"]
        assert DISCRIMINATOR not in [c[0] for c in columns]

    def test_inheritance_schema_is_single_table_union(self):
        columns = sql_mapping.schema_columns(meta_of(ExtPerson))
        names = [c[0] for c in columns]
        assert names[0] == "id"
        assert DISCRIMINATOR in names
        for sub_column in ("salary", "department", "bonus"):
            assert sub_column in names

    def test_reference_becomes_fk_column(self):
        columns = sql_mapping.schema_columns(meta_of(Node))
        fk = next(c for c in columns if c[0] == "next")
        assert fk[1] is SqlType.BIGINT  # the target's pk type


class TestSqlGeneration:
    def test_create_table(self):
        sql = sql_mapping.create_table_sql(meta_of(BasicPerson))
        assert sql.startswith("CREATE TABLE IF NOT EXISTS BasicPerson")
        assert "id BIGINT PRIMARY KEY" in sql

    def test_insert_literals_and_escaping(self):
        person = BasicPerson(7, "O'Hara", "L", None)
        sql = sql_mapping.insert_sql(meta_of(BasicPerson), person)
        assert "'O''Hara'" in sql
        assert "NULL" in sql
        assert sql.startswith("INSERT INTO BasicPerson")

    def test_insert_includes_discriminator(self):
        employee = ExtEmployee(1, "A", "B", 10.0, "eng")
        sql = sql_mapping.insert_sql(meta_of(ExtEmployee), employee)
        assert "'ExtEmployee'" in sql
        assert "NULL" in sql  # the sibling subclass column (bonus)

    def test_update_excludes_pk_from_set(self):
        person = BasicPerson(7, "A", "B", "C")
        sql = sql_mapping.update_sql(meta_of(BasicPerson), person)
        set_clause = sql.split("SET")[1].split("WHERE")[0]
        assert "id =" not in set_clause
        assert sql.endswith("WHERE id = 7")

    def test_select_delete(self):
        meta = meta_of(BasicPerson)
        assert sql_mapping.select_sql(meta, 3) \
            == "SELECT * FROM BasicPerson WHERE id = 3"
        assert sql_mapping.delete_sql(meta, 3) \
            == "DELETE FROM BasicPerson WHERE id = 3"

    def test_collection_statements(self):
        meta = meta_of(CollectionPerson)
        insert = sql_mapping.collection_insert_sql(meta, "phones", 5,
                                                   ["a", "b"])
        assert "(5, 0, 'a'), (5, 1, 'b')" in insert
        assert sql_mapping.collection_insert_sql(meta, "phones", 5, []) is None
        delete = sql_mapping.collection_delete_sql(meta, "phones", 5)
        assert delete == \
            "DELETE FROM CollectionPerson_phones WHERE owner_id = 5"

    def test_reference_fk_value(self):
        target = Node(1, "t")
        source = Node(2, "s", next=target)
        sql = sql_mapping.insert_sql(meta_of(Node), source)
        assert "VALUES (2," in sql
        assert sql.rstrip(")").endswith("1")  # the fk literal

    def test_generated_sql_actually_parses(self):
        """Every generated statement must round-trip through the engine's
        own parser (the pipeline of Figure 1)."""
        from repro.h2.parser import parse
        person = BasicPerson(7, "O'Hara", "L", None)
        meta = meta_of(BasicPerson)
        for sql in (sql_mapping.create_table_sql(meta),
                    sql_mapping.insert_sql(meta, person),
                    sql_mapping.update_sql(meta, person),
                    sql_mapping.select_sql(meta, 7),
                    sql_mapping.delete_sql(meta, 7)):
            parse(sql)  # no SqlError


class TestDirtyTracking:
    def test_descriptor_marks_dirty_only_when_managed(self):
        from repro.jpa.annotations import attach_state, state_of
        from repro.jpa.state_manager import LifecycleState, StateManager
        person = BasicPerson(1, "a", "b", "c")
        assert state_of(person) is None  # unenhanced instance: plain writes
        state = StateManager(person, meta_of(BasicPerson))
        state.state = LifecycleState.MANAGED
        attach_state(person, state)
        person.phone = "+1"
        assert state.dirty_fields == {"phone"}
        state.clear_dirty()
        assert state.dirty_fields == set()
