"""Tests for em.merge(), FK schema indexes and the Espresso context manager."""

import pytest

from repro.api import Espresso
from repro.errors import IllegalStateException
from repro.h2.engine import Database
from repro.jpa import JpaEntityManager
from repro.jpab import make_jpa_em, make_pjo_em
from repro.jpab.model import ALL_ENTITIES, BasicPerson, Node
from repro.nvm.clock import Clock
from repro.runtime.klass import FieldKind, field


def providers(tmp_path):
    return {
        "jpa": make_jpa_em(Clock(), ALL_ENTITIES),
        "pjo": make_pjo_em(Clock(), ALL_ENTITIES, tmp_path / "heaps"),
    }


@pytest.mark.parametrize("provider", ["jpa", "pjo"])
class TestMerge:
    def test_merge_detached_updates_store(self, tmp_path, provider):
        em = providers(tmp_path)[provider]
        tx = em.get_transaction()
        tx.begin()
        em.persist(BasicPerson(1, "Ada", "L", "+44"))
        tx.commit()
        em.clear()  # detach

        detached = BasicPerson(1, "Ada", "Lovelace", "+1")
        tx.begin()
        managed = em.merge(detached)
        tx.commit()
        em.clear()
        found = em.find(BasicPerson, 1)
        assert found.last_name == "Lovelace"
        assert found.phone == "+1"

    def test_merge_unknown_pk_persists(self, tmp_path, provider):
        em = providers(tmp_path)[provider]
        tx = em.get_transaction()
        tx.begin()
        managed = em.merge(BasicPerson(9, "New", "Person", "+0"))
        tx.commit()
        em.clear()
        assert em.find(BasicPerson, 9).first_name == "New"

    def test_merge_returns_managed_instance(self, tmp_path, provider):
        em = providers(tmp_path)[provider]
        tx = em.get_transaction()
        tx.begin()
        em.persist(BasicPerson(1, "Ada", "L", "+44"))
        tx.commit()
        em.clear()
        tx.begin()
        managed = em.merge(BasicPerson(1, "A", "B", "C"))
        assert managed is em.find(BasicPerson, 1)
        tx.rollback()

    def test_merge_outside_tx_rejected(self, tmp_path, provider):
        em = providers(tmp_path)[provider]
        with pytest.raises(IllegalStateException):
            em.merge(BasicPerson(1, "a", "b", "c"))


class TestFkIndexes:
    def test_schema_creates_fk_index(self):
        database = Database(size_words=1 << 20)
        em = JpaEntityManager(database)
        em.create_schema([Node])
        # The reference column got a secondary index:
        table_indexes = database.indexes["node"]
        table = database.catalog.get("Node")
        fk_column = table.column_index("next")
        assert table_indexes.get(fk_column) is not None

    def test_fk_index_used_for_queries(self):
        database = Database(size_words=1 << 20)
        em = JpaEntityManager(database)
        em.create_schema([Node])
        tx = em.get_transaction()
        tx.begin()
        hub = Node(1, "hub")
        for i in range(2, 8):
            em.persist(Node(i, f"spoke{i}", next=hub))
        tx.commit()
        em.clear()
        spokes = em.find_by(Node, "next", 1)
        assert sorted(n.id for n in spokes) == [2, 3, 4, 5, 6, 7]


class TestContextManager:
    def test_clean_exit_persists(self, tmp_path):
        heap_dir = tmp_path / "h"
        with Espresso(heap_dir) as jvm:
            klass = jvm.define_class("Ctx", [field("v", FieldKind.INT)])
            jvm.create_heap("c", 256 * 1024)
            obj = jvm.pnew(klass)
            jvm.set_field(obj, "v", 5)
            # No explicit flush: the graceful shutdown persists dirty lines.
            jvm.set_root("o", obj)
        with Espresso(heap_dir) as jvm2:
            jvm2.load_heap("c")
            assert jvm2.get_field(jvm2.get_root("o"), "v") == 5

    def test_exception_exit_is_a_crash(self, tmp_path):
        heap_dir = tmp_path / "h"
        with pytest.raises(RuntimeError):
            with Espresso(heap_dir) as jvm:
                klass = jvm.define_class("Ctx2", [field("v", FieldKind.INT)])
                jvm.create_heap("c", 256 * 1024)
                obj = jvm.pnew(klass)
                jvm.set_field(obj, "v", 7)  # never flushed
                jvm.set_root("o", obj)
                raise RuntimeError("boom")
        with Espresso(heap_dir) as jvm2:
            jvm2.load_heap("c")
            # The root (flushed by setRoot) survived; the field write did not.
            assert jvm2.get_field(jvm2.get_root("o"), "v") == 0
