"""JPA provider tests: the Figure 3 programming model over SQL/H2."""

import pytest

from repro.errors import IllegalStateException
from repro.h2.engine import Database
from repro.jpa import JpaEntityManager, state_of
from repro.jpa.state_manager import LifecycleState
from repro.jpab.model import (
    ALL_ENTITIES,
    BasicPerson,
    CollectionPerson,
    ExtEmployee,
    ExtManager,
    ExtPerson,
    Node,
)


@pytest.fixture
def em():
    database = Database(size_words=1 << 20)
    manager = JpaEntityManager(database)
    manager.create_schema(ALL_ENTITIES)
    return manager


def persist_one(em, obj):
    tx = em.get_transaction()
    tx.begin()
    em.persist(obj)
    tx.commit()
    return obj


class TestBasicCrud:
    def test_figure3_workflow(self, em):
        tx = em.get_transaction()
        tx.begin()
        p = BasicPerson(1, "Ada", "Lovelace", "+44")
        em.persist(p)
        tx.commit()
        em.clear()
        found = em.find(BasicPerson, 1)
        assert found.first_name == "Ada"
        assert found.phone == "+44"

    def test_persist_outside_tx_rejected(self, em):
        with pytest.raises(IllegalStateException):
            em.persist(BasicPerson(1, "a", "b", "c"))

    def test_find_missing_returns_none(self, em):
        assert em.find(BasicPerson, 404) is None

    def test_update_flushes_on_commit(self, em):
        persist_one(em, BasicPerson(1, "Ada", "L", "+44"))
        em.clear()
        tx = em.get_transaction()
        tx.begin()
        p = em.find(BasicPerson, 1)
        p.phone = "+1"
        tx.commit()
        em.clear()
        assert em.find(BasicPerson, 1).phone == "+1"

    def test_remove(self, em):
        persist_one(em, BasicPerson(1, "Ada", "L", "+44"))
        em.clear()
        tx = em.get_transaction()
        tx.begin()
        em.remove(em.find(BasicPerson, 1))
        tx.commit()
        em.clear()
        assert em.find(BasicPerson, 1) is None

    def test_rollback_discards_persist(self, em):
        tx = em.get_transaction()
        tx.begin()
        em.persist(BasicPerson(1, "Ada", "L", "+44"))
        tx.rollback()
        em.clear()
        assert em.find(BasicPerson, 1) is None

    def test_identity_map(self, em):
        persist_one(em, BasicPerson(1, "Ada", "L", "+44"))
        a = em.find(BasicPerson, 1)
        b = em.find(BasicPerson, 1)
        assert a is b

    def test_lifecycle_states(self, em):
        p = BasicPerson(1, "Ada", "L", "+44")
        assert state_of(p) is None
        tx = em.get_transaction()
        tx.begin()
        em.persist(p)
        assert state_of(p).state is LifecycleState.NEW
        tx.commit()
        assert state_of(p).state is LifecycleState.MANAGED


class TestInheritance:
    def test_subclasses_roundtrip_with_dtype(self, em):
        persist_one(em, ExtPerson(1, "P", "Plain"))
        persist_one(em, ExtEmployee(2, "E", "Emp", 1234.5, "eng"))
        persist_one(em, ExtManager(3, "M", "Mgr", 9999.0, "mgmt", 500.0))
        em.clear()
        p = em.find(ExtPerson, 1)
        e = em.find(ExtPerson, 2)
        m = em.find(ExtPerson, 3)
        assert type(p) is ExtPerson
        assert type(e) is ExtEmployee and e.salary == 1234.5
        assert type(m) is ExtManager and m.bonus == 500.0

    def test_subclass_update(self, em):
        persist_one(em, ExtEmployee(1, "E", "Emp", 1000.0, "eng"))
        em.clear()
        tx = em.get_transaction()
        tx.begin()
        e = em.find(ExtPerson, 1)
        e.salary = 2000.0
        tx.commit()
        em.clear()
        assert em.find(ExtPerson, 1).salary == 2000.0


class TestCollections:
    def test_element_collection_roundtrip(self, em):
        persist_one(em, CollectionPerson(1, "C", ["a", "b", "c"]))
        em.clear()
        found = em.find(CollectionPerson, 1)
        assert found.phones == ["a", "b", "c"]

    def test_collection_update(self, em):
        persist_one(em, CollectionPerson(1, "C", ["a"]))
        em.clear()
        tx = em.get_transaction()
        tx.begin()
        c = em.find(CollectionPerson, 1)
        c.phones = c.phones + ["b"]
        tx.commit()
        em.clear()
        assert em.find(CollectionPerson, 1).phones == ["a", "b"]

    def test_empty_collection(self, em):
        persist_one(em, CollectionPerson(1, "C", []))
        em.clear()
        assert em.find(CollectionPerson, 1).phones == []


class TestReferences:
    def test_reference_roundtrip(self, em):
        tx = em.get_transaction()
        tx.begin()
        a = Node(1, "a")
        b = Node(2, "b", next=a)
        em.persist(b)  # cascades to a
        tx.commit()
        em.clear()
        loaded = em.find(Node, 2)
        assert loaded.next.name == "a"
        assert loaded.next.id == 1

    def test_chain(self, em):
        tx = em.get_transaction()
        tx.begin()
        nodes = []
        prev = None
        for i in range(5):
            n = Node(i, f"n{i}", next=prev)
            prev = n
            nodes.append(n)
        em.persist(prev)
        tx.commit()
        em.clear()
        cursor = em.find(Node, 4)
        seen = []
        while cursor is not None:
            seen.append(cursor.id)
            cursor = cursor.next
        assert seen == [4, 3, 2, 1, 0]

    def test_null_reference(self, em):
        persist_one(em, Node(1, "solo"))
        em.clear()
        assert em.find(Node, 1).next is None


class TestBreakdown:
    def test_transformation_and_database_both_charged(self, em):
        clock = em.clock
        persist_one(em, BasicPerson(1, "Ada", "L", "+44"))
        breakdown = clock.breakdown()
        assert breakdown.get("transformation", 0) > 0
        assert breakdown.get("database", 0) > 0

    def test_durability_through_database_crash(self, em):
        persist_one(em, BasicPerson(1, "Ada", "L", "+44"))
        db2 = em.database.crash()
        em2 = JpaEntityManager(db2)
        found = em2.find(BasicPerson, 1)
        assert found is not None and found.first_name == "Ada"
