"""Unit tests for the simulated GC worker pool and clock diversion.

The pool's whole value is determinism: given the same inputs it must
produce the same partitioning, the same execution order, the same
steals and the same committed pause — independent of dict order,
timing, or worker count quirks.  These tests pin that contract at the
mechanism level; the image-identity guarantees built on top of it are
pinned in tests/bench/test_obs_invariance.py.
"""

import pytest

from repro.nvm.clock import ChargeMeter, Clock
from repro.runtime.workers import MARK_SLICE, WorkerPool


# ----------------------------------------------------------------------
# ChargeMeter + Clock.divert
# ----------------------------------------------------------------------
class TestDivert:
    def test_charge_lands_on_meter_not_clock(self):
        clock = Clock()
        meter = ChargeMeter()
        with clock.divert(meter):
            clock.charge(100.0)
            assert clock.diverted
        assert clock.now_ns == 0.0
        assert meter.take() == 100.0
        assert meter.take() == 0.0          # take() resets

    def test_divert_nests_innermost_wins(self):
        clock = Clock()
        outer, inner = ChargeMeter(), ChargeMeter()
        with clock.divert(outer):
            clock.charge(1.0)
            with clock.divert(inner):
                clock.charge(10.0)
            clock.charge(2.0)
        assert outer.take() == 3.0
        assert inner.take() == 10.0
        assert not clock.diverted

    def test_divert_does_not_touch_categories(self):
        clock = Clock()
        with clock.scope("gc"):
            with clock.divert(ChargeMeter()):
                clock.charge(50.0)
        assert clock.breakdown().get("gc", 0.0) == 0.0

    def test_meter_survives_exception(self):
        clock = Clock()
        meter = ChargeMeter()
        with pytest.raises(RuntimeError):
            with clock.divert(meter):
                clock.charge(5.0)
                raise RuntimeError("boom")
        assert not clock.diverted            # popped despite the raise
        clock.charge(7.0)
        assert clock.now_ns == 7.0


# ----------------------------------------------------------------------
# Partitioning + the phase barrier
# ----------------------------------------------------------------------
class TestPartitioned:
    def test_round_robin_partition(self):
        pool = WorkerPool(Clock(), 3)
        assert pool.partition(list(range(7))) \
            == [[0, 3, 6], [1, 4], [2, 5]]

    def test_results_in_original_order(self):
        pool = WorkerPool(Clock(), 4)
        assert pool.run_partitioned(list(range(10)), lambda x: x * x,
                                    phase="t") \
            == [x * x for x in range(10)]

    def test_pause_is_max_over_workers(self):
        clock = Clock()
        pool = WorkerPool(clock, 2)
        # Worker 0 gets items 0 and 2 (30 ns), worker 1 gets item 1 (5 ns).
        costs = [10.0, 5.0, 20.0]
        pool.run_partitioned(list(range(3)),
                             lambda i: clock.charge(costs[i]), phase="t")
        assert clock.now_ns == 30.0          # max, not the 35 ns sum

    def test_worker_hook_called_per_worker_then_reset(self):
        calls = []
        pool = WorkerPool(Clock(), 2)
        pool.run_partitioned([1, 2, 3], lambda x: x, phase="t",
                             worker_hook=calls.append)
        assert calls == [0, 1, None]


# ----------------------------------------------------------------------
# Event-driven schedule (compaction ready-queue)
# ----------------------------------------------------------------------
class TestSchedule:
    def run_schedule(self, workers, costs, deps, serialized=()):
        clock = Clock()
        pool = WorkerPool(clock, workers)
        order = []

        def run(task, worker):
            order.append((task, worker))
            clock.charge(costs[task])
            return task in serialized

        makespan = pool.schedule(sorted(costs), lambda t: deps.get(t, ()),
                                 run, phase="t")
        return order, makespan, clock

    def test_execution_respects_dependencies(self):
        order, _, _ = self.run_schedule(
            2, {0: 10.0, 1: 10.0, 2: 10.0}, {2: [0, 1]})
        ranks = {t: i for i, (t, _) in enumerate(order)}
        assert ranks[2] > ranks[0] and ranks[2] > ranks[1]

    def test_deterministic_assignment(self):
        first, *_ = self.run_schedule(3, {i: float(i + 1) for i in range(6)},
                                      {})
        second, *_ = self.run_schedule(3, {i: float(i + 1) for i in range(6)},
                                       {})
        assert first == second

    def test_makespan_with_dependency_stall(self):
        # Two free tasks of 10 ns, then one 5 ns task needing both: the
        # makespan (15) exceeds every single worker's busy time.
        _, makespan, clock = self.run_schedule(
            2, {0: 10.0, 1: 10.0, 2: 5.0}, {2: [0, 1]})
        assert makespan == 15.0
        assert clock.now_ns == 15.0

    def test_serialized_tasks_never_overlap(self):
        # Four independent serialized tasks on four workers: the token
        # forces them into a chain even though the gang is idle.
        _, makespan, _ = self.run_schedule(
            4, {i: 10.0 for i in range(4)}, {}, serialized=(0, 1, 2, 3))
        assert makespan == 40.0

    def test_cycle_raises(self):
        pool = WorkerPool(Clock(), 2)
        with pytest.raises(AssertionError, match="cycle"):
            pool.schedule([0, 1], lambda t: [1 - t],
                          lambda t, w: False, phase="t")


# ----------------------------------------------------------------------
# Deterministic work-stealing (mark phase)
# ----------------------------------------------------------------------
class TestStealing:
    def test_all_items_processed_exactly_once(self):
        pool = WorkerPool(Clock(), 3)
        seen = []
        stacks = pool.partition(list(range(100)))
        pool.run_stealing(stacks, lambda item, stack: seen.append(item),
                          phase="t")
        assert sorted(seen) == list(range(100))

    def test_empty_worker_steals_bottom_half_of_deepest(self):
        pool = WorkerPool(Clock(), 2)
        # Worker 1 starts empty; worker 0 has more than one slice of work.
        items = list(range(MARK_SLICE * 2))
        stacks = [list(items), []]
        pool.run_stealing(stacks, lambda item, stack: None, phase="t")
        assert pool.workers[1].steals == 1

    def test_stealing_is_deterministic(self):
        def trace(n_items):
            pool = WorkerPool(Clock(), 4)
            order = []
            stacks = pool.partition(list(range(n_items)))
            pool.run_stealing(
                stacks, lambda item, stack: order.append(item), phase="t")
            return order, [w.steals for w in pool.workers]

        assert trace(500) == trace(500)

    def test_discovered_work_stays_with_discoverer(self):
        pool = WorkerPool(Clock(), 2)
        processed = []

        def process(item, stack):
            processed.append(item)
            if item < 4:                     # each item spawns a child
                stack.append(item + 100)

        pool.run_stealing([[0, 2], [1, 3]], process, phase="t")
        assert sorted(processed) == [0, 1, 2, 3, 100, 101, 102, 103]
