"""The crash-transparent execution engine (repro.runtime.resume, §14).

Three contract groups:

* the mirror constants — ``resume`` must not import ``repro.core``, so
  its private copies of the durable encodings are pinned against the
  core definitions here;
* the session surface — registration, the ``resumable=True`` gate,
  ensure-completed ``run()`` semantics, ``reset()``, ``result()``;
* the resume protocol — crash at a failpoint, restart, resume; skipped
  vs executed step accounting; child-frame replay depth; the protocol
  errors raised on nondeterministic or ill-typed replays.
"""

import pytest

from repro.api import Espresso, EspressoConfig
from repro.errors import (IllegalArgumentException, IllegalStateException,
                          ResumeProtocolError, SimulatedCrash)
from repro.obs import Observatory
from repro.runtime import resume
from repro.runtime.klass import FieldKind, field
from repro.runtime.resume import TaskRegistry


class TestMirrorConstants:
    """resume.py is core-agnostic; its constants must track the core."""

    def test_does_not_import_core(self):
        import ast
        import inspect
        tree = ast.parse(inspect.getsource(resume))
        imported = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                imported |= {alias.name for alias in node.names}
            elif isinstance(node, ast.ImportFrom):
                imported.add(node.module or "")
        assert not any(mod.startswith("repro.core") for mod in imported), \
            sorted(imported)

    def test_task_status_words_match_metadata(self):
        from repro.core import metadata
        assert resume.TASK_NONE == metadata.TASK_NONE
        assert resume.TASK_RUNNING == metadata.TASK_RUNNING
        assert resume.TASK_DONE == metadata.TASK_DONE

    def test_value_kinds_match_frame_segment(self):
        from repro.core import frame_segment
        assert resume.KIND_NONE == frame_segment.KIND_NONE
        assert resume.KIND_INT == frame_segment.KIND_INT
        assert resume.KIND_REF == frame_segment.KIND_REF


class TestRegistry:
    def test_register_and_decorator_forms(self):
        registry = TaskRegistry()
        registry.register("a", lambda task, s: 1)

        @registry.task("b")
        def b(task, s):
            return 2

        assert "a" in registry and "b" in registry
        assert registry.resolve("b") is b

    def test_unknown_task_raises_protocol_error(self):
        registry = TaskRegistry()
        registry.register("known", lambda task, s: 1)
        with pytest.raises(ResumeProtocolError, match="known"):
            registry.resolve("nope")


# ----------------------------------------------------------------------
# Session fixtures
# ----------------------------------------------------------------------
N = 4
EXPECTED = sum(i * i for i in range(N))  # 14


def _define(jvm):
    jvm.define_class("RNode", [field("v", FieldKind.INT),
                               field("next", FieldKind.REF)])


def _mk(s, i, prev):
    node = s.pnew("RNode")
    s.set_field(node, "v", i)
    if prev is not None:
        s.set_field(node, "next", prev)
    s.flush_reachable(node)
    return node


def _register(jvm):
    @jvm.register_task("build")
    def build(task, s, n):
        prev = None
        total = 0
        for i in range(n):
            prev = task.step(_mk, s, i, prev)
            total += task.call("weigh", i)
        s.set_root("list", prev)
        return total

    @jvm.register_task("weigh")
    def weigh(task, s, i):
        return task.step(lambda: i * i)


def _session(tmp_path, registry=None):
    cfg = EspressoConfig(resumable=True, observatory=Observatory(),
                         task_registry=registry)
    jvm = Espresso(tmp_path / "heaps", config=cfg)
    _define(jvm)
    if registry is None:
        _register(jvm)
    return jvm


@pytest.fixture
def jvm(tmp_path):
    jvm = _session(tmp_path)
    jvm.create_heap("h", 512 * 1024)
    return jvm


def _counters(jvm):
    return jvm.obs.metrics.counters_snapshot()


# ----------------------------------------------------------------------
# Gating and surface
# ----------------------------------------------------------------------
class TestSessionSurface:
    def test_resumable_flag_gates_both_entry_points(self, tmp_path):
        plain = Espresso(tmp_path / "heaps")
        with pytest.raises(IllegalStateException, match="resumable=True"):
            plain.register_task("t", lambda task, s: 1)
        with pytest.raises(IllegalStateException, match="resumable=True"):
            plain.resumable_task("t")

    def test_status_and_result_lifecycle(self, jvm):
        task = jvm.resumable_task("build")
        assert task.status == "none"
        with pytest.raises(IllegalArgumentException, match="not completed"):
            task.result()
        assert task.run(N) == EXPECTED
        assert task.status == "done"
        assert task.result() == EXPECTED

    def test_run_is_ensure_completed(self, jvm):
        task = jvm.resumable_task("build")
        assert task.run(N) == EXPECTED
        executed = _counters(jvm)["resume.steps_executed"]
        # A second run returns the stored result without re-executing.
        assert task.run(N) == EXPECTED
        assert _counters(jvm)["resume.steps_executed"] == executed

    def test_reset_discards_the_completed_invocation(self, jvm):
        task = jvm.resumable_task("build")
        assert task.run(N) == EXPECTED
        executed = _counters(jvm)["resume.steps_executed"]
        task.reset()
        assert task.status == "none"
        assert task.run(N) == EXPECTED
        assert _counters(jvm)["resume.steps_executed"] == 2 * executed

    def test_registry_shared_through_config(self, tmp_path):
        registry = TaskRegistry()
        registry.register("one", lambda task, s: task.step(lambda: 1))
        jvm = _session(tmp_path, registry)
        jvm.create_heap("h", 256 * 1024)
        assert jvm.resumable_task("one").run() == 1


# ----------------------------------------------------------------------
# Protocol errors
# ----------------------------------------------------------------------
class TestProtocolErrors:
    def _crashed(self, tmp_path, hit=8):
        jvm = _session(tmp_path)
        jvm.create_heap("h", 512 * 1024)
        jvm.vm.failpoints.crash_on_global_hit(hit)
        with pytest.raises(SimulatedCrash):
            jvm.resumable_task("build").run(N)
        jvm2 = jvm.restart(crash=True)
        _define(jvm2)
        jvm2.load_heap("h")
        return jvm2

    def test_resume_with_different_args_rejected(self, tmp_path):
        jvm2 = self._crashed(tmp_path)
        with pytest.raises(ResumeProtocolError, match="arguments"):
            jvm2.resumable_task("build").run(N + 1)

    def test_resume_under_wrong_name_rejected(self, tmp_path):
        jvm2 = self._crashed(tmp_path)
        with pytest.raises(ResumeProtocolError, match="in flight"):
            jvm2.resumable_task("weigh").run(0)

    def test_ref_final_result_rejected(self, jvm):
        @jvm.register_task("leak")
        def leak(task, s):
            return task.step(_mk, s, 0, None)  # handle as final result

        with pytest.raises(ResumeProtocolError, match="set_root"):
            jvm.resumable_task("leak").run()

    def test_unencodable_step_value_rejected(self, jvm):
        @jvm.register_task("bad")
        def bad(task, s):
            return task.step(lambda: "strings are not durable")

        with pytest.raises(ResumeProtocolError, match="None, int or"):
            jvm.resumable_task("bad").run()

    def test_handle_step_value_roundtrips(self, jvm):
        @jvm.register_task("mk")
        def mk(task, s):
            node = task.step(_mk, s, 41, None)
            task.step(s.set_field, node, "v", 42)
            s.set_root("n", node)
            return task.step(s.get_field, node, "v")

        assert jvm.resumable_task("mk").run() == 42


# ----------------------------------------------------------------------
# Crash / resume accounting
# ----------------------------------------------------------------------
class TestCrashResume:
    def test_resume_skips_checkpointed_steps(self, tmp_path):
        jvm = _session(tmp_path)
        jvm.create_heap("h", 512 * 1024)
        # Far enough in that several steps are durably checkpointed.
        jvm.vm.failpoints.crash_on_global_hit(20)
        with pytest.raises(SimulatedCrash):
            jvm.resumable_task("build").run(N)
        jvm2 = jvm.restart(crash=True)
        _define(jvm2)
        jvm2.load_heap("h")
        assert jvm2.resumable_task("build").status == "running"
        # crash_and_restart carries the observatory, so diff against a
        # post-restart snapshot to count only the replay.
        snap = _counters(jvm2)
        assert jvm2.resumable_task("build").run(N) == EXPECTED
        delta = jvm2.obs.metrics.counters_since(snap)
        assert delta.get("resume.steps_skipped", 0) > 0
        assert delta.get("resume.steps_executed", 0) > 0
        assert delta.get("resume.frames_replayed", 0) >= 1
        # The full uncrashed run executes 2N steps (one _mk + one weigh
        # per iteration); replay executed strictly fewer.
        assert delta.get("resume.steps_executed", 0) < 2 * N

    def test_resume_inside_child_frame(self, tmp_path):
        jvm = _session(tmp_path)
        jvm.create_heap("h", 512 * 1024)
        # Hits per iteration: push(2) step-ckpt(1) push(2) child-ckpt(1)
        # finish(1) pop-ckpt(1) pop(1); global hit 7 lands after the
        # first weigh's step checkpoint but before its pop completes —
        # the durable stack is two frames deep.
        jvm.vm.failpoints.crash_on_global_hit(7)
        with pytest.raises(SimulatedCrash):
            jvm.resumable_task("build").run(N)
        jvm2 = jvm.restart(crash=True)
        _define(jvm2)
        heap = jvm2.load_heap("h")
        assert heap.frames.depth() >= 1
        assert jvm2.resumable_task("build").run(N) == EXPECTED
        assert _counters(jvm2)["resume.frames_replayed"] >= 1

    def test_every_run_converges_to_the_same_roots(self, tmp_path):
        jvm = _session(tmp_path)
        jvm.create_heap("h", 512 * 1024)
        jvm.vm.failpoints.crash_on_global_hit(13)
        with pytest.raises(SimulatedCrash):
            jvm.resumable_task("build").run(N)
        jvm2 = jvm.restart(crash=True)
        _define(jvm2)
        jvm2.load_heap("h")
        assert jvm2.resumable_task("build").run(N) == EXPECTED
        chain = []
        cursor = jvm2.get_root("list")
        while cursor is not None:
            chain.append(jvm2.get_field(cursor, "v"))
            cursor = jvm2.get_field(cursor, "next")
        assert chain == list(range(N - 1, -1, -1))
