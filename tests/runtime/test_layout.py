"""Unit tests for header/mark-word encoding."""

from repro.runtime import layout


def test_plain_mark_is_not_forwarded():
    assert not layout.mark_is_forwarded(layout.mark_encode())


def test_timestamp_roundtrip():
    mark = layout.mark_encode(timestamp=12345)
    assert layout.mark_timestamp(mark) == 12345


def test_age_roundtrip():
    mark = layout.mark_encode(age=5)
    assert layout.mark_age(mark) == 5


def test_timestamp_and_age_independent():
    mark = layout.mark_encode(timestamp=77, age=3)
    assert layout.mark_timestamp(mark) == 77
    assert layout.mark_age(mark) == 3


def test_with_timestamp_preserves_age():
    mark = layout.mark_encode(timestamp=1, age=4)
    mark2 = layout.mark_with_timestamp(mark, 99)
    assert layout.mark_timestamp(mark2) == 99
    assert layout.mark_age(mark2) == 4


def test_with_age_preserves_timestamp():
    mark = layout.mark_encode(timestamp=42, age=1)
    mark2 = layout.mark_with_age(mark, 6)
    assert layout.mark_age(mark2) == 6
    assert layout.mark_timestamp(mark2) == 42


def test_forwarding_roundtrip():
    address = 0x1234_5678
    mark = layout.mark_forwarding(address)
    assert layout.mark_is_forwarded(mark)
    assert layout.mark_forwardee(mark) == address


def test_max_timestamp_wraps_within_field():
    mark = layout.mark_encode(timestamp=layout.MAX_TIMESTAMP)
    assert layout.mark_timestamp(mark) == layout.MAX_TIMESTAMP
    wrapped = layout.mark_encode(timestamp=layout.MAX_TIMESTAMP + 1)
    assert layout.mark_timestamp(wrapped) == 0


def test_max_age_fits():
    mark = layout.mark_encode(age=layout.MAX_AGE)
    assert layout.mark_age(mark) == layout.MAX_AGE
