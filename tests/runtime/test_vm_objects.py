"""VM facade tests: allocation, field access, arrays, strings, typechecks."""

import pytest

from repro.errors import (
    ArrayIndexOutOfBoundsException,
    ClassCastException,
    IllegalArgumentException,
)
from repro.runtime.klass import FieldKind, field
from repro.runtime.vm import EspressoVM


@pytest.fixture
def vm():
    return EspressoVM()


@pytest.fixture
def person_klass(vm):
    return vm.define_class("Person", [field("id", FieldKind.INT),
                                      field("name", FieldKind.REF)])


class TestInstances:
    def test_new_and_field_roundtrip(self, vm, person_klass):
        p = vm.new(person_klass)
        vm.set_field(p, "id", 42)
        assert vm.get_field(p, "id") == 42

    def test_fields_default_to_zero_null(self, vm, person_klass):
        p = vm.new(person_klass)
        assert vm.get_field(p, "id") == 0
        assert vm.get_field(p, "name") is None

    def test_reference_field(self, vm, person_klass):
        p = vm.new(person_klass)
        name = vm.new_string("alice")
        vm.set_field(p, "name", name)
        fetched = vm.get_field(p, "name")
        assert fetched.same_object(name)
        assert vm.read_string(fetched) == "alice"

    def test_null_store(self, vm, person_klass):
        p = vm.new(person_klass)
        vm.set_field(p, "name", vm.new_string("x"))
        vm.set_field(p, "name", None)
        assert vm.get_field(p, "name") is None

    def test_new_by_name(self, vm, person_klass):
        p = vm.new("Person")
        assert vm.klass_of(p) is person_klass

    def test_type_mismatch_rejected(self, vm, person_klass):
        p = vm.new(person_klass)
        with pytest.raises(IllegalArgumentException):
            vm.set_field(p, "id", "not an int")
        with pytest.raises(IllegalArgumentException):
            vm.set_field(p, "name", 42)

    def test_negative_int_field(self, vm, person_klass):
        p = vm.new(person_klass)
        vm.set_field(p, "id", -7)
        assert vm.get_field(p, "id") == -7

    def test_int64_wraparound(self, vm, person_klass):
        p = vm.new(person_klass)
        vm.set_field(p, "id", 2**63)  # wraps to most negative value
        assert vm.get_field(p, "id") == -(2**63)


class TestFloats:
    def test_float_field_roundtrip(self, vm):
        k = vm.define_class("Point", [field("x", FieldKind.FLOAT)])
        p = vm.new(k)
        vm.set_field(p, "x", 3.25)
        assert vm.get_field(p, "x") == 3.25

    def test_float_array(self, vm):
        arr = vm.new_array(FieldKind.FLOAT, 3)
        vm.array_set(arr, 0, -1.5)
        assert vm.array_get(arr, 0) == -1.5


class TestArrays:
    def test_int_array(self, vm):
        arr = vm.new_array(FieldKind.INT, 5)
        assert vm.array_length(arr) == 5
        vm.array_set(arr, 4, 99)
        assert vm.array_get(arr, 4) == 99
        assert vm.array_get(arr, 0) == 0

    def test_bounds_check(self, vm):
        arr = vm.new_array(FieldKind.INT, 3)
        with pytest.raises(ArrayIndexOutOfBoundsException):
            vm.array_get(arr, 3)
        with pytest.raises(ArrayIndexOutOfBoundsException):
            vm.array_set(arr, -1, 0)

    def test_ref_array(self, vm, person_klass):
        p = vm.new(person_klass)
        arr = vm.new_array(person_klass, 2)
        vm.array_set(arr, 0, p)
        assert vm.array_get(arr, 0).same_object(p)
        assert vm.array_get(arr, 1) is None

    def test_array_ops_on_instance_rejected(self, vm, person_klass):
        p = vm.new(person_klass)
        with pytest.raises(IllegalArgumentException):
            vm.array_get(p, 0)


class TestStrings:
    def test_string_roundtrip(self, vm):
        s = vm.new_string("hello world")
        assert vm.read_string(s) == "hello world"

    def test_empty_string(self, vm):
        assert vm.read_string(vm.new_string("")) == ""

    def test_unicode(self, vm):
        assert vm.read_string(vm.new_string("café ☕")) == "café ☕"


class TestTypeChecks:
    def test_instance_of_self(self, vm, person_klass):
        p = vm.new(person_klass)
        assert vm.instance_of(p, person_klass)

    def test_instance_of_super(self, vm):
        base = vm.define_class("Base")
        derived = vm.define_class("Derived", super_klass=base)
        d = vm.new(derived)
        assert vm.instance_of(d, base)
        assert not vm.instance_of(vm.new(base), derived)

    def test_checkcast_failure(self, vm, person_klass):
        other = vm.define_class("Other")
        with pytest.raises(ClassCastException):
            vm.checkcast(vm.new(other), person_klass)

    def test_checkcast_success_returns_handle(self, vm, person_klass):
        p = vm.new(person_klass)
        assert vm.checkcast(p, "Person") is p

    def test_everything_is_object(self, vm, person_klass):
        p = vm.new(person_klass)
        assert vm.instance_of(p, "java.lang.Object")
