"""Unit + property tests for the mark bitmaps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IllegalArgumentException
from repro.runtime.bitmap import Bitmap, LiveMap


class TestBitmapBasics:
    def test_set_get(self):
        bm = Bitmap(100)
        bm.set(0)
        bm.set(63)
        bm.set(64)
        bm.set(99)
        assert bm.get(0) and bm.get(63) and bm.get(64) and bm.get(99)
        assert not bm.get(1)

    def test_out_of_range(self):
        bm = Bitmap(10)
        with pytest.raises(IllegalArgumentException):
            bm.set(10)
        with pytest.raises(IllegalArgumentException):
            bm.get(-1)

    def test_set_range_within_word(self):
        bm = Bitmap(128)
        bm.set_range(3, 5)
        assert all(bm.get(i) for i in range(3, 8))
        assert not bm.get(2) and not bm.get(8)

    def test_set_range_across_words(self):
        bm = Bitmap(256)
        bm.set_range(60, 80)
        assert all(bm.get(i) for i in range(60, 140))
        assert not bm.get(59) and not bm.get(140)

    def test_count_range(self):
        bm = Bitmap(256)
        bm.set_range(10, 20)
        assert bm.count_range(0, 256) == 20
        assert bm.count_range(0, 15) == 5
        assert bm.count_range(15, 30) == 15
        assert bm.count_range(30, 256) == 0

    def test_iter_set(self):
        bm = Bitmap(200)
        for i in (0, 5, 63, 64, 65, 130, 199):
            bm.set(i)
        assert list(bm.iter_set(0, 200)) == [0, 5, 63, 64, 65, 130, 199]
        assert list(bm.iter_set(5, 65)) == [5, 63, 64]

    def test_clear_all(self):
        bm = Bitmap(64)
        bm.set_range(0, 64)
        bm.clear_all()
        assert not bm.any_set()

    def test_words_roundtrip(self):
        bm = Bitmap(300)
        bm.set_range(17, 200)
        words = bm.to_words()
        bm2 = Bitmap(300)
        bm2.load_words(words)
        assert list(bm2.iter_set(0, 300)) == list(bm.iter_set(0, 300))

    def test_load_wrong_size_rejected(self):
        bm = Bitmap(300)
        with pytest.raises(IllegalArgumentException):
            bm.load_words(Bitmap(64).to_words())


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 480), st.integers(1, 30)),
                min_size=0, max_size=20))
def test_bitmap_matches_model_set(ranges):
    """Property: Bitmap behaves like a plain Python set of indices."""
    bm = Bitmap(512)
    model = set()
    for start, count in ranges:
        count = min(count, 512 - start)
        if count <= 0:
            continue
        bm.set_range(start, count)
        model.update(range(start, start + count))
    assert list(bm.iter_set(0, 512)) == sorted(model)
    assert bm.count_range(0, 512) == len(model)
    for start, count in ranges[:5]:
        end = min(512, start + count + 7)
        assert bm.count_range(start, end) == len(
            [i for i in model if start <= i < end])


class TestLiveMap:
    def test_mark_object(self):
        lm = LiveMap(base=1000, size_words=128)
        lm.mark_object(1010, 4)
        assert lm.is_marked(1010)
        assert not lm.is_marked(1011)
        assert lm.live_words_in(0, 128) == 4

    def test_iter_objects_returns_absolute_addresses(self):
        lm = LiveMap(base=1000, size_words=128)
        lm.mark_object(1000, 3)
        lm.mark_object(1050, 5)
        assert list(lm.iter_objects(0, 128)) == [1000, 1050]

    def test_adjacent_objects_remain_distinct(self):
        lm = LiveMap(base=0, size_words=64)
        lm.mark_object(10, 4)
        lm.mark_object(14, 4)  # immediately adjacent
        assert list(lm.iter_objects(0, 64)) == [10, 14]
        assert lm.live_words_in(0, 64) == 8

    def test_clear(self):
        lm = LiveMap(base=0, size_words=64)
        lm.mark_object(0, 8)
        lm.clear()
        assert lm.live_words_in(0, 64) == 0
