"""Unit tests for bump-pointer spaces."""

import pytest

from repro.errors import IllegalArgumentException
from repro.runtime.spaces import Space


def test_allocate_bumps_top():
    s = Space("s", base=100, size_words=50)
    a = s.allocate(10)
    b = s.allocate(10)
    assert a == 100
    assert b == 110
    assert s.used_words == 20
    assert s.free_words == 30


def test_allocate_exhaustion_returns_none():
    s = Space("s", base=100, size_words=10)
    assert s.allocate(10) == 100
    assert s.allocate(1) is None


def test_exact_fit():
    s = Space("s", base=1, size_words=8)
    assert s.allocate(8) == 1
    assert s.free_words == 0


def test_contains():
    s = Space("s", base=100, size_words=50)
    assert s.contains(100)
    assert s.contains(149)
    assert not s.contains(150)
    assert not s.contains(99)


def test_reset():
    s = Space("s", base=100, size_words=50)
    s.allocate(20)
    s.reset()
    assert s.used_words == 0
    assert s.allocate(5) == 100


def test_set_top_bounds():
    s = Space("s", base=100, size_words=50)
    s.set_top(120)
    assert s.used_words == 20
    with pytest.raises(IllegalArgumentException):
        s.set_top(99)
    with pytest.raises(IllegalArgumentException):
        s.set_top(151)


def test_zero_allocation_rejected():
    s = Space("s", base=100, size_words=50)
    with pytest.raises(IllegalArgumentException):
        s.allocate(0)
