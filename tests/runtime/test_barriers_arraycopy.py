"""Write-barrier / remembered-set unit tests, and System.arraycopy."""

import pytest

from repro.api import Espresso
from repro.errors import IllegalArgumentException
from repro.runtime.dram_heap import HeapConfig
from repro.runtime.klass import FieldKind, field
from repro.runtime.vm import EspressoVM


class TestRemsets:
    @pytest.fixture
    def jvm(self, tmp_path):
        vm = Espresso(tmp_path / "h")
        vm.create_heap("b", 512 * 1024)
        return vm

    def test_old_to_young_store_registers(self, jvm):
        vm = jvm.vm
        node = jvm.define_class("BNode", [field("ref", FieldKind.REF)])
        holder = jvm.new(node)
        vm.young_gc()
        vm.young_gc()  # promote holder to old
        assert vm.heap.old.contains(holder.address)
        young = jvm.new(node)
        before = len(vm._remset_into_young)
        jvm.set_field(holder, "ref", young)
        assert len(vm._remset_into_young) == before + 1

    def test_young_to_young_store_not_registered(self, jvm):
        vm = jvm.vm
        node = jvm.define_class("BNode2", [field("ref", FieldKind.REF)])
        a = jvm.new(node)
        b = jvm.new(node)
        before = len(vm._remset_into_young)
        jvm.set_field(a, "ref", b)
        assert len(vm._remset_into_young) == before

    def test_dram_to_pjh_store_registers(self, jvm):
        vm = jvm.vm
        node = jvm.define_class("BNode3", [field("ref", FieldKind.REF)])
        holder = jvm.new(node)
        target = jvm.pnew(node)
        before = len(vm._remset_dram_to_pjh)
        jvm.set_field(holder, "ref", target)
        assert len(vm._remset_dram_to_pjh) == before + 1

    def test_pjh_to_dram_store_registers(self, jvm):
        vm = jvm.vm
        node = jvm.define_class("BNode4", [field("ref", FieldKind.REF)])
        holder = jvm.pnew(node)
        target = jvm.new(node)
        before = len(vm._remset_pjh_to_dram)
        jvm.set_field(holder, "ref", target)
        assert len(vm._remset_pjh_to_dram) == before + 1

    def test_null_store_not_registered(self, jvm):
        vm = jvm.vm
        node = jvm.define_class("BNode5", [field("ref", FieldKind.REF)])
        holder = jvm.pnew(node)
        before = len(vm._remset_pjh_to_dram)
        jvm.set_field(holder, "ref", None)
        assert len(vm._remset_pjh_to_dram) == before

    def test_remset_pruned_after_full_gc(self, jvm):
        vm = jvm.vm
        node = jvm.define_class("BNode6", [field("ref", FieldKind.REF)])
        holder = jvm.new(node)
        target = jvm.pnew(node)
        jvm.set_field(holder, "ref", target)
        vm.full_gc()
        # Slots rebuilt against the compacted old space, still valid:
        assert all(vm.heap.in_heap(s) for s in vm._remset_dram_to_pjh)
        fetched = jvm.get_field(holder, "ref")
        assert fetched.same_object(target)


class TestArrayCopy:
    @pytest.fixture
    def vm(self):
        return EspressoVM()

    def test_int_copy(self, vm):
        src = vm.new_array(FieldKind.INT, 6)
        dst = vm.new_array(FieldKind.INT, 6)
        for i in range(6):
            vm.array_set(src, i, i + 1)
        vm.array_copy(src, 1, dst, 3, 3)
        assert [vm.array_get(dst, i) for i in range(6)] == [0, 0, 0, 2, 3, 4]

    def test_overlapping_copy_is_memmove(self, vm):
        arr = vm.new_array(FieldKind.INT, 6)
        for i in range(6):
            vm.array_set(arr, i, i)
        vm.array_copy(arr, 0, arr, 2, 4)
        assert [vm.array_get(arr, i) for i in range(6)] == [0, 1, 0, 1, 2, 3]

    def test_ref_copy_updates_barriers(self, tmp_path):
        jvm = Espresso(tmp_path / "h")
        jvm.create_heap("b", 256 * 1024)
        vm = jvm.vm
        node = jvm.define_class("CNode", [field("v", FieldKind.INT)])
        volatile_obj = jvm.new(node)
        src = jvm.new_array(vm.object_klass, 2)
        jvm.array_set(src, 0, volatile_obj)
        dst = jvm.pnew_array(vm.object_klass, 2)  # persistent destination
        before = len(vm._remset_pjh_to_dram)
        vm.array_copy(src, 0, dst, 0, 2)
        assert len(vm._remset_pjh_to_dram) == before + 1  # the non-null ref

    def test_kind_mismatch_rejected(self, vm):
        src = vm.new_array(FieldKind.INT, 2)
        dst = vm.new_array(vm.object_klass, 2)
        with pytest.raises(IllegalArgumentException):
            vm.array_copy(src, 0, dst, 0, 1)

    def test_bounds_checked(self, vm):
        from repro.errors import ArrayIndexOutOfBoundsException
        src = vm.new_array(FieldKind.INT, 3)
        dst = vm.new_array(FieldKind.INT, 3)
        with pytest.raises(ArrayIndexOutOfBoundsException):
            vm.array_copy(src, 1, dst, 0, 3)

    def test_zero_length_noop(self, vm):
        src = vm.new_array(FieldKind.INT, 1)
        dst = vm.new_array(FieldKind.INT, 1)
        vm.array_copy(src, 0, dst, 0, 0)

    def test_non_array_rejected(self, vm):
        klass = vm.define_class("NotArray")
        obj = vm.new(klass)
        arr = vm.new_array(FieldKind.INT, 1)
        with pytest.raises(IllegalArgumentException):
            vm.array_copy(obj, 0, arr, 0, 1)
