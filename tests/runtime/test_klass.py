"""Unit tests for Klass metadata and layout."""

import pytest

from repro.errors import IllegalArgumentException, NoSuchFieldException
from repro.runtime import layout
from repro.runtime.klass import (
    FieldKind,
    Klass,
    Residence,
    array_klass_name,
    field,
)


def make_person():
    return Klass("Person", [field("id", FieldKind.INT),
                            field("name", FieldKind.REF)])


class TestInstanceLayout:
    def test_instance_size_includes_header(self):
        person = make_person()
        assert person.instance_words == layout.HEADER_WORDS + 2

    def test_field_offsets_follow_header(self):
        person = make_person()
        assert person.field_offset("id") == layout.HEADER_WORDS
        assert person.field_offset("name") == layout.HEADER_WORDS + 1

    def test_unknown_field_raises(self):
        with pytest.raises(NoSuchFieldException):
            make_person().field_offset("nope")

    def test_ref_field_offsets(self):
        person = make_person()
        assert person.ref_field_offsets() == (layout.HEADER_WORDS + 1,)

    def test_duplicate_field_rejected(self):
        with pytest.raises(IllegalArgumentException):
            Klass("Bad", [field("x"), field("x")])

    def test_empty_class(self):
        assert Klass("Empty").instance_words == layout.HEADER_WORDS


class TestInheritance:
    def test_super_fields_come_first(self):
        base = Klass("Base", [field("a", FieldKind.INT)])
        derived = Klass("Derived", [field("b", FieldKind.INT)], super_klass=base)
        assert derived.field_offset("a") == layout.HEADER_WORDS
        assert derived.field_offset("b") == layout.HEADER_WORDS + 1

    def test_shadowing_rejected(self):
        base = Klass("Base", [field("a", FieldKind.INT)])
        with pytest.raises(IllegalArgumentException):
            Klass("Derived", [field("a", FieldKind.INT)], super_klass=base)

    def test_subclass_relation(self):
        base = Klass("Base")
        mid = Klass("Mid", super_klass=base)
        leaf = Klass("Leaf", super_klass=mid)
        assert leaf.is_subclass_of(base)
        assert leaf.is_subclass_of(leaf)
        assert not base.is_subclass_of(leaf)


class TestArrays:
    def test_array_size(self):
        arr = Klass("[J", is_array=True, element_kind=FieldKind.INT)
        assert arr.array_words(10) == layout.ARRAY_HEADER_WORDS + 10

    def test_negative_length_rejected(self):
        arr = Klass("[J", is_array=True, element_kind=FieldKind.INT)
        with pytest.raises(IllegalArgumentException):
            arr.array_words(-1)

    def test_instance_size_of_array_rejected(self):
        arr = Klass("[J", is_array=True, element_kind=FieldKind.INT)
        with pytest.raises(IllegalArgumentException):
            _ = arr.instance_words

    def test_array_klass_requires_element_kind(self):
        with pytest.raises(IllegalArgumentException):
            Klass("[X", is_array=True)

    def test_array_name_for_ref_elements(self):
        person = make_person()
        assert array_klass_name(person) == "[LPerson;"
        assert array_klass_name(FieldKind.INT) == "[J"
        assert array_klass_name(FieldKind.FLOAT) == "[D"


class TestAlias:
    def test_alias_linking(self):
        dram = Klass("Person", residence=Residence.DRAM)
        nvm = Klass("Person", residence=Residence.NVM)
        dram.link_alias(nvm)
        assert dram.is_alias_of(nvm)
        assert nvm.is_alias_of(dram)
        assert not dram.is_alias_of(dram)

    def test_alias_requires_same_name(self):
        a = Klass("A")
        b = Klass("B")
        with pytest.raises(IllegalArgumentException):
            a.link_alias(b)
