"""GC tests: young scavenges, full compactions, graph preservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OutOfMemoryError
from repro.runtime.dram_heap import HeapConfig
from repro.runtime.klass import FieldKind, field
from repro.runtime.vm import EspressoVM


def small_vm():
    return EspressoVM(heap_config=HeapConfig(
        eden_words=512, survivor_words=256, old_words=4096, region_words=256))


@pytest.fixture
def vm():
    return small_vm()


@pytest.fixture
def node_klass(vm):
    return vm.define_class("Node", [field("value", FieldKind.INT),
                                    field("next", FieldKind.REF)])


def make_list(vm, node_klass, values):
    head = None
    for v in reversed(values):
        node = vm.new(node_klass)
        vm.set_field(node, "value", v)
        if head is not None:
            vm.set_field(node, "next", head)
        head = node
    return head


def read_list(vm, head):
    values = []
    node = head
    while node is not None:
        values.append(vm.get_field(node, "value"))
        node = vm.get_field(node, "next")
    return values


class TestYoungGC:
    def test_handles_survive_young_gc(self, vm, node_klass):
        head = make_list(vm, node_klass, [1, 2, 3])
        vm.young_gc()
        assert read_list(vm, head) == [1, 2, 3]

    def test_object_moved_out_of_eden(self, vm, node_klass):
        n = vm.new(node_klass)
        before = n.address
        assert vm.heap.eden.contains(before)
        vm.young_gc()
        after = n.address
        assert after != before
        assert not vm.heap.eden.contains(after)

    def test_unreachable_objects_collected(self, vm, node_klass):
        survivor = vm.new(node_klass)
        vm.set_field(survivor, "value", 7)
        garbage = vm.new(node_klass)
        garbage.close()  # drop the only root
        used_before = vm.heap.eden.used_words
        vm.young_gc()
        assert vm.get_field(survivor, "value") == 7
        # Eden fully recycled; survivor space holds just the one object.
        assert vm.heap.eden.used_words == 0
        assert vm.heap.from_space.used_words < used_before

    def test_promotion_after_aging(self, vm, node_klass):
        n = vm.new(node_klass)
        vm.young_gc()
        assert vm.heap.in_young(n.address)
        vm.young_gc()  # age reaches the threshold (2): promoted
        assert vm.heap.old.contains(n.address)

    def test_allocation_triggers_young_gc(self, vm, node_klass):
        keep = make_list(vm, node_klass, list(range(20)))
        before = vm.heap.log.young_collections
        # Allocate far more than eden can hold.
        for _ in range(300):
            vm.new(node_klass).close()
        assert vm.heap.log.young_collections > before
        assert read_list(vm, keep) == list(range(20))

    def test_old_to_young_reference_survives(self, vm, node_klass):
        old_obj = vm.new(node_klass)
        vm.young_gc()
        vm.young_gc()  # promote old_obj
        assert vm.heap.old.contains(old_obj.address)
        young_obj = vm.new(node_klass)
        vm.set_field(young_obj, "value", 55)
        vm.set_field(old_obj, "next", young_obj)
        young_obj.close()  # only reachable through the old object now
        vm.young_gc()
        assert vm.get_field(vm.get_field(old_obj, "next"), "value") == 55


class TestFullGC:
    def test_full_gc_preserves_graph(self, vm, node_klass):
        head = make_list(vm, node_klass, list(range(30)))
        vm.young_gc()
        vm.young_gc()
        vm.full_gc()
        assert read_list(vm, head) == list(range(30))

    def test_full_gc_compacts_old_space(self, vm, node_klass):
        # Promote a batch, drop most of it, then compact.
        keep = []
        for i in range(40):
            n = vm.new(node_klass)
            vm.set_field(n, "value", i)
            if i % 10 == 0:
                keep.append(n)
            else:
                n.close()
        vm.young_gc()
        vm.young_gc()
        used_before = vm.heap.old.used_words
        vm.full_gc()
        assert vm.heap.old.used_words <= used_before
        assert [vm.get_field(n, "value") for n in keep] == [0, 10, 20, 30]

    def test_cross_generation_cycle(self, vm, node_klass):
        a = vm.new(node_klass)
        vm.young_gc()
        vm.young_gc()  # a promoted
        b = vm.new(node_klass)
        vm.set_field(a, "next", b)
        vm.set_field(b, "next", a)
        vm.set_field(b, "value", 9)
        b.close()
        vm.full_gc()
        assert vm.get_field(vm.get_field(a, "next"), "value") == 9

    def test_oom_when_everything_live(self):
        vm = small_vm()
        k = vm.define_class("Blob", [field("a", FieldKind.INT)])
        live = []
        with pytest.raises(OutOfMemoryError):
            for _ in range(10000):
                live.append(vm.new(k))

    def test_string_survives_collections(self, vm):
        s = vm.new_string("persistent text")
        vm.young_gc()
        vm.full_gc()
        vm.young_gc()
        assert vm.read_string(s) == "persistent text"


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(-1000, 1000), min_size=0, max_size=40),
       st.integers(0, 3))
def test_property_gc_preserves_linked_list(values, gc_mix):
    """Property: any mix of collections preserves an arbitrary list."""
    vm = small_vm()
    node_klass = vm.define_class(
        "Node", [field("value", FieldKind.INT), field("next", FieldKind.REF)])
    head = make_list(vm, node_klass, values)
    for i in range(gc_mix + 1):
        if (i + gc_mix) % 2 == 0:
            vm.young_gc()
        else:
            vm.full_gc()
    assert read_list(vm, head) == values


@settings(max_examples=10, deadline=None)
@given(st.data())
def test_property_gc_preserves_random_graph(data):
    """Property: random object graphs keep their shape across full GC."""
    vm = small_vm()
    k = vm.define_class("G", [field("v", FieldKind.INT),
                              field("a", FieldKind.REF),
                              field("b", FieldKind.REF)])
    count = data.draw(st.integers(1, 25))
    nodes = []
    for i in range(count):
        n = vm.new(k)
        vm.set_field(n, "v", i)
        nodes.append(n)
    edges = []
    for i in range(count):
        for slot in ("a", "b"):
            j = data.draw(st.integers(-1, count - 1))
            if j >= 0:
                vm.set_field(nodes[i], slot, nodes[j])
                edges.append((i, slot, j))
    vm.young_gc()
    vm.full_gc()
    for i, slot, j in edges:
        target = vm.get_field(nodes[i], slot)
        assert target is not None
        assert vm.get_field(target, "v") == j
