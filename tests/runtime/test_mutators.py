"""MutatorGang: scheduling semantics, pause accounting, determinism.

The determinism contract is the headline: same seed, same ops — same
interleaving, same history, and the *same durable heap image byte for
byte*, across independent runs and across unrelated session knobs
(``gc_workers``), with identical observatory timelines.
"""

import hashlib

import pytest

from repro.api import Espresso
from repro.obs import Observatory
from repro.runtime.mutators import MutatorGang
from repro.workloads.concurrent_kv import ConcurrentKvWorkload


# ----------------------------------------------------------------------
# Scheduling semantics (no heap needed: plain generators)
# ----------------------------------------------------------------------
def _clock(jvm):
    return jvm.clock


@pytest.fixture
def jvm(tmp_path):
    return Espresso(tmp_path / "heaps")


class TestScheduling:
    def test_results_and_history_roundtrip(self, jvm):
        gang = MutatorGang(jvm.clock, mutators=2, seed=1)

        def op(value):
            yield
            yield ("linearized", "v", value)
            return value * 10

        gang.submit(0, "a", lambda: op(1))
        gang.submit(1, "b", lambda: op(2))
        report = gang.run()
        assert report.results == {"a": 10, "b": 20}
        kinds = [k for _s, _m, _o, k, _p in report.history]
        assert kinds.count("invoke") == 2
        assert kinds.count("response") == 2
        assert report.markers("linearized") == [
            (s, m, o, p) for s, m, o, k, p in report.history
            if k == "linearized"]
        assert len(report.markers("linearized")) == 2

    def test_fifo_per_mutator(self, jvm):
        gang = MutatorGang(jvm.clock, mutators=1, seed=3)
        order = []

        def op(tag):
            yield
            order.append(tag)
            return tag

        for tag in ("first", "second", "third"):
            gang.submit(0, tag, lambda tag=tag: op(tag))
        gang.run()
        assert order == ["first", "second", "third"]

    def test_submit_out_of_range_rejected(self, jvm):
        gang = MutatorGang(jvm.clock, mutators=2)
        with pytest.raises(ValueError):
            gang.submit(2, "x", lambda: iter(()))

    def test_unknown_marker_kind_rejected(self, jvm):
        gang = MutatorGang(jvm.clock, mutators=1)

        def bad():
            yield ("committed", "nope")

        gang.submit(0, "bad", bad)
        with pytest.raises(ValueError, match="unknown marker kind"):
            gang.run()

    def test_livelock_guard(self, jvm):
        gang = MutatorGang(jvm.clock, mutators=1)

        def spin():
            while True:
                yield

        gang.submit(0, "spin", spin)
        with pytest.raises(RuntimeError, match="livelock"):
            gang.run(max_steps=50)

    def test_gang_is_reusable_and_rng_stream_continues(self, jvm):
        def op():
            yield
            return None

        def schedules(seed):
            gang = MutatorGang(jvm.clock, mutators=3, seed=seed)
            out = []
            for _round in range(2):
                for m in range(3):
                    gang.submit(m, f"op-{_round}-{m}-{len(out)}",
                                lambda: op())
                out.append(tuple(gang.run().schedule))
            return out

        first = schedules(9)
        second = schedules(9)
        assert first == second
        # The second run continues the stream — it is not a replay of
        # the first run's schedule.
        assert first[0] != first[1] or len(first[0]) != len(first[1])


class TestPauseAccounting:
    def test_pause_is_max_not_sum(self, tmp_path):
        """With real heap traffic split over 4 mutators the committed
        pause is the busiest mutator's time, far below the sum."""
        jvm = Espresso(tmp_path / "heaps", mutators=4)
        jvm.create_heap("kv", 2 * 1024 * 1024)
        workload = ConcurrentKvWorkload(jvm, mutators=4,
                                        ops_per_mutator=6, seed=2)
        report = workload.run()
        assert report.committed_ns == pytest.approx(max(report.busy_ns))
        assert report.committed_ns < sum(report.busy_ns)
        assert all(busy > 0 for busy in report.busy_ns)


# ----------------------------------------------------------------------
# Determinism: image, history and timelines
# ----------------------------------------------------------------------
def _contended_run(where, seed, gc_workers=1, mutators=3):
    jvm = Espresso(where, observatory=Observatory(),
                   gc_workers=gc_workers, mutators=mutators)
    jvm.create_heap("kv", 2 * 1024 * 1024)
    workload = ConcurrentKvWorkload(jvm, mutators=mutators,
                                    ops_per_mutator=6, key_space=3,
                                    seed=seed)
    report = workload.run()
    device = jvm.heaps.heap("kv").device
    image = hashlib.sha256(device.durable_image().tobytes()).hexdigest()
    return report, image, jvm.obs.render_timeline()


class TestDeterminism:
    def test_same_seed_same_schedule_and_image(self, tmp_path):
        first, image_a, timeline_a = _contended_run(tmp_path / "a", seed=5)
        second, image_b, timeline_b = _contended_run(tmp_path / "b", seed=5)
        assert first.schedule == second.schedule
        assert first.history == second.history
        assert image_a == image_b
        assert timeline_a == timeline_b
        assert timeline_a  # non-empty: the comparison is meaningful

    def test_image_identical_across_gc_workers(self, tmp_path):
        _, image_a, timeline_a = _contended_run(tmp_path / "w1", seed=5,
                                                gc_workers=1)
        _, image_b, timeline_b = _contended_run(tmp_path / "w3", seed=5,
                                                gc_workers=3)
        assert image_a == image_b
        assert timeline_a == timeline_b

    def test_different_seed_different_interleaving(self, tmp_path):
        first, _, _ = _contended_run(tmp_path / "a", seed=5)
        second, _, _ = _contended_run(tmp_path / "b", seed=6)
        assert first.schedule != second.schedule
