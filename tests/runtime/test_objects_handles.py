"""Unit tests for handles, heap access helpers and value encodings."""

import gc as pygc

import pytest

from repro.errors import NullPointerException
from repro.runtime.klass import FieldKind, field
from repro.runtime.objects import (
    HandleTable,
    ObjectHandle,
    bits_to_float,
    float_to_bits,
)
from repro.runtime.vm import EspressoVM


class TestFloatBits:
    @pytest.mark.parametrize("value", [0.0, -0.0, 1.5, -1.5, 1e308, 1e-308,
                                       float("inf"), float("-inf")])
    def test_roundtrip(self, value):
        assert bits_to_float(float_to_bits(value)) == value

    def test_nan_roundtrip(self):
        result = bits_to_float(float_to_bits(float("nan")))
        assert result != result  # NaN

    def test_bits_are_signed_words(self):
        assert float_to_bits(-0.0) < 0  # sign bit set


class TestHandleTable:
    def test_create_and_read(self):
        table = HandleTable()
        index = table.create(0x100)
        assert table.address(index) == 0x100

    def test_update(self):
        table = HandleTable()
        index = table.create(0x100)
        table.update(index, 0x200)
        assert table.address(index) == 0x200

    def test_release_recycles_slots(self):
        table = HandleTable()
        a = table.create(1)
        table.release(a)
        b = table.create(2)
        assert b == a  # slot reused
        assert len(table) == 1

    def test_live_indices_skip_released(self):
        table = HandleTable()
        a = table.create(1)
        b = table.create(2)
        table.release(a)
        assert list(table.live_indices()) == [b]

    def test_handle_auto_release_on_gc(self):
        table = HandleTable()
        handle = ObjectHandle(table, 0x10)
        index = handle.slot_index
        del handle
        pygc.collect()
        assert index in {i for i in table._free}

    def test_null_handle_rejected(self):
        with pytest.raises(NullPointerException):
            ObjectHandle(HandleTable(), 0)


class TestHeapAccessTraversal:
    @pytest.fixture
    def vm(self):
        return EspressoVM()

    def test_ref_slots_of_instance(self, vm):
        klass = vm.define_class("Mix", [field("a", FieldKind.INT),
                                        field("r1", FieldKind.REF),
                                        field("b", FieldKind.FLOAT),
                                        field("r2", FieldKind.REF)])
        obj = vm.new(klass)
        slots = list(vm.access.ref_slot_addresses(obj.address))
        assert len(slots) == 2
        offsets = [s - obj.address for s in slots]
        assert offsets == [klass.field_offset("r1"), klass.field_offset("r2")]

    def test_ref_slots_of_primitive_array_empty(self, vm):
        arr = vm.new_array(FieldKind.INT, 5)
        assert list(vm.access.ref_slot_addresses(arr.address)) == []

    def test_ref_slots_of_object_array(self, vm):
        arr = vm.new_array(vm.object_klass, 3)
        assert len(list(vm.access.ref_slot_addresses(arr.address))) == 3

    def test_object_words(self, vm):
        klass = vm.define_class("Two", [field("a", FieldKind.INT),
                                        field("b", FieldKind.INT)])
        obj = vm.new(klass)
        assert vm.access.object_words(obj.address) == 4  # header + 2
        arr = vm.new_array(FieldKind.INT, 7)
        assert vm.access.object_words(arr.address) == 10  # hdr + len + 7

    def test_null_dereference_raises(self, vm):
        with pytest.raises(NullPointerException):
            vm.access.klass_of(0)
