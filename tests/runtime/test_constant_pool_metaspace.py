"""Unit tests for constant pools, the metaspace, and alias-aware typecheck."""

import pytest

from repro.errors import (
    ClassCastException,
    HeapCorruptionError,
    IllegalArgumentException,
)
from repro.runtime.constant_pool import ConstantPool
from repro.runtime.klass import FieldKind, Klass, Residence, field
from repro.runtime.metaspace import KlassRegistry, Metaspace
from repro.runtime.typecheck import checkcast, is_instance_of


class TestConstantPool:
    def test_resolution_updates_slot(self):
        pool = ConstantPool()
        dram = Klass("P")
        nvm = Klass("P", residence=Residence.NVM)
        pool.resolve("P", dram)
        assert pool.resolved_slot("P") is dram
        pool.resolve("P", nvm)  # the Figure 10 flip
        assert pool.resolved_slot("P") is nvm

    def test_unresolved_symbol(self):
        assert ConstantPool().resolved_slot("Nope") is None

    def test_symbol_name_must_match(self):
        pool = ConstantPool()
        with pytest.raises(IllegalArgumentException):
            pool.resolve("A", Klass("B"))

    def test_clear(self):
        pool = ConstantPool()
        pool.resolve("P", Klass("P"))
        pool.clear()
        assert pool.resolved_slot("P") is None


class TestKlassRegistry:
    def test_register_resolve(self):
        registry = KlassRegistry()
        klass = Klass("X")
        registry.register(klass, 0x1000)
        assert registry.resolve(0x1000) is klass
        assert klass.address == 0x1000
        assert registry.knows(0x1000)

    def test_unknown_address(self):
        with pytest.raises(HeapCorruptionError):
            KlassRegistry().resolve(0x2000)

    def test_address_zero_reserved(self):
        with pytest.raises(IllegalArgumentException):
            KlassRegistry().register(Klass("X"), 0)

    def test_conflicting_registration(self):
        registry = KlassRegistry()
        registry.register(Klass("A"), 0x10)
        with pytest.raises(IllegalArgumentException):
            registry.register(Klass("B"), 0x10)

    def test_reregistering_same_klass_ok(self):
        registry = KlassRegistry()
        klass = Klass("A")
        registry.register(klass, 0x10)
        registry.register(klass, 0x10)  # idempotent

    def test_unregister(self):
        registry = KlassRegistry()
        klass = Klass("A")
        registry.register(klass, 0x10)
        registry.unregister(klass)
        assert not registry.knows(0x10)


class TestMetaspace:
    def test_distinct_addresses(self):
        metaspace = Metaspace(KlassRegistry())
        a = metaspace.add(Klass("A"))
        b = metaspace.add(Klass("B"))
        assert a.address != b.address
        assert metaspace.lookup("A") is a
        assert metaspace.lookup("missing") is None

    def test_duplicate_name_rejected(self):
        metaspace = Metaspace(KlassRegistry())
        metaspace.add(Klass("A"))
        with pytest.raises(IllegalArgumentException):
            metaspace.add(Klass("A"))


class TestAliasAwareTypecheck:
    def make_pair(self):
        dram = Klass("P", [field("x", FieldKind.INT)])
        nvm = Klass("P", [field("x", FieldKind.INT)],
                    residence=Residence.NVM)
        dram.link_alias(nvm)
        return dram, nvm

    def test_alias_accepted_when_aware(self):
        dram, nvm = self.make_pair()
        assert is_instance_of(dram, nvm, alias_aware=True)
        checkcast(nvm, dram, alias_aware=True)  # no raise

    def test_alias_rejected_when_stock(self):
        dram, nvm = self.make_pair()
        assert not is_instance_of(dram, nvm, alias_aware=False)
        with pytest.raises(ClassCastException):
            checkcast(dram, nvm, alias_aware=False)

    def test_alias_through_superclass_chain(self):
        base_dram = Klass("Base")
        base_nvm = Klass("Base", residence=Residence.NVM)
        base_dram.link_alias(base_nvm)
        derived_nvm = Klass("Derived", super_klass=base_nvm,
                            residence=Residence.NVM)
        # NVM Derived -> NVM Base, alias of DRAM Base.
        assert is_instance_of(derived_nvm, base_dram)

    def test_unrelated_still_fails(self):
        dram, _ = self.make_pair()
        other = Klass("Other")
        assert not is_instance_of(other, dram)

    def test_ref_array_covariance(self):
        base = Klass("Base")
        derived = Klass("Derived", super_klass=base)
        arr_base = Klass("[LBase;", is_array=True,
                         element_kind=FieldKind.REF, element_klass=base)
        arr_derived = Klass("[LDerived;", is_array=True,
                            element_kind=FieldKind.REF, element_klass=derived)
        assert is_instance_of(arr_derived, arr_base)
        assert not is_instance_of(arr_base, arr_derived)
