"""TPCC-lite tests: business-rule correctness and provider agreement."""

import pytest

from repro.jpab import make_jpa_em, make_pjo_em
from repro.nvm.clock import Clock
from repro.tpcc import (
    ALL_TPCC_ENTITIES,
    Customer,
    NewOrder,
    Order,
    OrderLine,
    Stock,
    TpccApplication,
    run_tpcc,
)
from repro.tpcc.model import customer_id, district_id, stock_id


def make_app(provider, tmp_path):
    clock = Clock()
    if provider == "jpa":
        em = make_jpa_em(clock, [])
    else:
        em = make_pjo_em(clock, [], tmp_path / "heaps")
    app = TpccApplication(em)
    app.populate(warehouses=1, districts_per_warehouse=2,
                 customers_per_district=3, items=10)
    return app


@pytest.mark.parametrize("provider", ["jpa", "pjo"])
class TestTransactions:
    def test_new_order_creates_rows_and_decrements_stock(self, provider,
                                                         tmp_path):
        app = make_app(provider, tmp_path)
        em = app.em
        order = app.new_order(1, 0, 0, [(1, 3), (2, 2)])
        em.clear()
        loaded = em.find(Order, order.id)
        assert loaded.line_count == 2
        assert not loaded.delivered
        assert em.find(NewOrder, order.id) is not None
        assert em.find(Stock, stock_id(1, 1)).quantity == 97
        assert em.find(Stock, stock_id(1, 2)).quantity == 98
        lines = [l for l in em.find_all(OrderLine)
                 if l.order.id == order.id]
        assert sorted((l.item.id, l.quantity) for l in lines) \
            == [(1, 3), (2, 2)]

    def test_order_numbers_increment_per_district(self, provider, tmp_path):
        app = make_app(provider, tmp_path)
        a = app.new_order(1, 0, 0, [(1, 1)])
        b = app.new_order(1, 0, 1, [(2, 1)])
        c = app.new_order(1, 1, 0, [(3, 1)])  # other district: own counter
        assert (a.entry_number, b.entry_number, c.entry_number) == (1, 2, 1)

    def test_restock_rule(self, provider, tmp_path):
        app = make_app(provider, tmp_path)
        em = app.em
        for _ in range(12):
            app.new_order(1, 0, 0, [(5, 9)])
        quantity = em.find(Stock, stock_id(1, 5)).quantity
        assert quantity > 0  # the +91 restock kicked in

    def test_payment_moves_money(self, provider, tmp_path):
        app = make_app(provider, tmp_path)
        em = app.em
        app.payment(1, 0, 0, 25.5)
        app.payment(1, 0, 0, 10.0)
        em.clear()
        customer = em.find(Customer, customer_id(district_id(1, 0), 0))
        assert customer.balance == -35.5
        assert customer.payment_count == 2
        snapshot = app.consistency_snapshot()
        assert snapshot["warehouse_ytd_total"] == 35.5
        assert snapshot["district_ytd_total"] == 35.5
        assert snapshot["history_rows"] == 2

    def test_order_status_reports_latest(self, provider, tmp_path):
        app = make_app(provider, tmp_path)
        app.new_order(1, 0, 0, [(1, 1)])
        latest = app.new_order(1, 0, 0, [(2, 4)])
        status = app.order_status(customer_id(district_id(1, 0), 0))
        assert status["last_order"] == latest.id
        assert status["lines"] == [(2, 4, pytest.approx(4 * 1.2))]

    def test_delivery_pops_oldest(self, provider, tmp_path):
        app = make_app(provider, tmp_path)
        em = app.em
        first = app.new_order(1, 0, 0, [(1, 1)])
        app.new_order(1, 0, 1, [(2, 1)])
        delivered = app.delivery()
        assert delivered == first.id
        em.clear()
        assert em.find(Order, first.id).delivered is True
        assert em.find(NewOrder, first.id) is None
        assert em.count(NewOrder) == 1

    def test_delivery_with_no_pending_orders(self, provider, tmp_path):
        app = make_app(provider, tmp_path)
        assert app.delivery() == 0


class TestProviderAgreement:
    def test_same_seed_same_business_outcome(self, tmp_path):
        """The acid test: 60 mixed transactions land both providers on the
        exact same business state."""
        jpa = run_tpcc("jpa", transactions=60, seed=11,
                       heap_dir=tmp_path / "a")
        pjo = run_tpcc("pjo", transactions=60, seed=11,
                       heap_dir=tmp_path / "b")
        assert jpa.snapshot == pjo.snapshot
        assert jpa.snapshot["orders"] > 0
        assert jpa.snapshot["history_rows"] > 0

    def test_invariants_hold(self, tmp_path):
        result = run_tpcc("pjo", transactions=50, seed=3,
                          heap_dir=tmp_path / "h")
        snapshot = result.snapshot
        # Money conservation: warehouse ytd == district ytd == -balances.
        assert snapshot["warehouse_ytd_total"] == \
            snapshot["district_ytd_total"]
        assert snapshot["balance_total"] == \
            pytest.approx(-snapshot["warehouse_ytd_total"])
        # Order lines match the per-order line counts.
        assert snapshot["order_lines"] == snapshot["line_count_sum"]
        assert snapshot["undelivered"] <= snapshot["orders"]


class TestDurability:
    def test_tpcc_state_survives_restart(self, tmp_path):
        from repro.api import Espresso
        from repro.pjo.provider import PjoEntityManager
        heap_dir = tmp_path / "h"
        jvm = Espresso(heap_dir)
        jvm.create_heap("tpcc", 32 * 1024 * 1024)
        em = PjoEntityManager(jvm)
        app = TpccApplication(em)
        app.populate(items=10)
        order = app.new_order(1, 0, 0, [(1, 2), (3, 1)])
        app.payment(1, 0, 0, 12.0)
        before = app.consistency_snapshot()
        em.clear()
        order_id = order.id  # detached entities keep their state
        jvm.shutdown()

        jvm2 = Espresso(heap_dir)
        jvm2.load_heap("tpcc")
        em2 = PjoEntityManager(jvm2)
        app2 = TpccApplication(em2)
        assert app2.consistency_snapshot() == before
        status = app2.order_status(customer_id(district_id(1, 0), 0))
        assert status["last_order"] == order_id
