"""Unit tests for the generic crash-sweep harness.

The subject is a toy two-word protocol over a bare NvmDevice: word 0 and
word 64 (different cache lines) are updated together under a tiny
log-free "both-or-detect" discipline, which is intentionally broken so the
tests can watch the harness catch it.
"""

from types import SimpleNamespace

import pytest

from repro.faults import CrashSweepHarness, SweepReport
from repro.nvm.clock import Clock
from repro.nvm.device import FaultMode, NvmDevice
from repro.nvm.failpoints import FailpointRegistry

A, B = 0, 64  # two words on different cache lines


def _correct_harness(rounds=4, teardowns=None, fsck=None):
    """A harness over a fenced two-word protocol: invariant always holds."""

    def setup():
        return SimpleNamespace(device=NvmDevice(256, Clock()),
                               registry=FailpointRegistry())

    def workload(ctx):
        d = ctx.device
        for i in range(1, rounds + 1):
            d.write(A, i)
            d.clflush(A)
            d.fence()
            ctx.registry.hit("toy.a_persisted")
            d.write(B, i)
            d.clflush(B)
            d.fence()
            ctx.registry.hit("toy.b_persisted")

    def recover(ctx, crashed):
        ctx.device.crash()
        return ctx

    def invariant(rctx, completed):
        a = rctx.device.read(A)
        b = rctx.device.read(B)
        assert a - b in (0, 1), (a, b)  # B trails A by at most one round
        if completed:
            assert a == b == rounds

    return CrashSweepHarness(
        "toy",
        setup=setup, workload=workload, recover=recover,
        invariant=invariant, fsck=fsck,
        teardown=(lambda ctx, rctx: teardowns.append((ctx, rctx)))
        if teardowns is not None else None,
        devices=lambda ctx: [ctx.device],
        registry=lambda ctx: ctx.registry)


class TestFlushSweep:
    def test_exhausts_and_reports(self):
        report = _correct_harness().sweep_flush_boundaries()
        assert isinstance(report, SweepReport)
        assert report.exhausted
        # 8 flushes total: 8 crash points, then one clean completion.
        assert report.crash_points == 8
        assert len(report.iterations) == 9
        assert report.iterations[-1].completed
        assert "exhausted" in report.summary()

    def test_max_points_caps_the_walk(self):
        report = _correct_harness().sweep_flush_boundaries(max_points=3)
        assert len(report.iterations) == 3
        assert not report.exhausted
        assert "capped" in report.summary()

    def test_stride_skips_points(self):
        report = _correct_harness().sweep_flush_boundaries(stride=3)
        assert [it.point for it in report.iterations] == [1, 4, 7, 10]

    def test_clflush_restored_after_each_iteration(self):
        teardowns = []
        harness = _correct_harness(teardowns=teardowns)
        harness.sweep_flush_boundaries(max_points=2)
        # The bomb restores the real method on exit: no instance-level
        # wrapper may survive an iteration.
        for ctx, _rctx in teardowns:
            assert "clflush" not in vars(ctx.device)

    def test_detects_unfenced_protocol_under_torn_mode(self):
        # Break the protocol: write both words, flush only the first.
        def setup():
            return SimpleNamespace(device=NvmDevice(256, Clock()))

        def workload(ctx):
            d = ctx.device
            for i in range(1, 5):
                d.write(A, i)
                d.write(B, i)
                d.clflush(A)
                d.fence()

        def recover(ctx, crashed):
            ctx.device.crash()
            return ctx

        def invariant(rctx, completed):
            assert rctx.device.read(A) == rctx.device.read(B)

        harness = CrashSweepHarness(
            "broken", setup=setup, workload=workload, recover=recover,
            invariant=invariant, devices=lambda ctx: [ctx.device])
        with pytest.raises(AssertionError):
            harness.sweep_flush_boundaries(FaultMode.ATOMIC)


class TestFailpointSweep:
    def test_global_sweep_exhausts(self):
        report = _correct_harness(rounds=3).sweep_global_hits()
        assert report.exhausted
        assert report.crash_points == 6  # 2 sites x 3 rounds
        assert report.strategy == "failpoint-global"

    def test_site_sweep_only_counts_one_site(self):
        report = _correct_harness(rounds=3).sweep_site("toy.b_persisted")
        assert report.exhausted
        assert report.crash_points == 3
        assert report.strategy == "failpoint-site:toy.b_persisted"

    def test_registry_disarmed_after_each_iteration(self):
        teardowns = []
        harness = _correct_harness(rounds=2, teardowns=teardowns)
        harness.sweep_global_hits()
        for ctx, _rctx in teardowns:
            assert not ctx.registry._armed  # finally-clause cleared it


class TestCallbacks:
    def test_teardown_runs_for_every_iteration(self):
        teardowns = []
        _correct_harness(rounds=2, teardowns=teardowns).sweep_flush_boundaries()
        assert len(teardowns) == 5  # 4 crash points + 1 completion
        # Crashing iterations still got a recovered context.
        assert all(rctx is not None for _, rctx in teardowns)

    def test_teardown_runs_when_invariant_fails(self):
        teardowns = []

        def bad_invariant(rctx, completed):
            raise AssertionError("always wrong")

        harness = _correct_harness(rounds=2, teardowns=teardowns)
        harness.invariant = bad_invariant
        with pytest.raises(AssertionError):
            harness.sweep_flush_boundaries()
        assert len(teardowns) == 1
        # Recovery ran, the invariant blew up afterwards.
        assert teardowns[0][1] is not None

    def test_dirty_fsck_fails_the_iteration(self):
        def dirty_fsck(rctx):
            return SimpleNamespace(clean=False, errors=["boom"])

        harness = _correct_harness(fsck=dirty_fsck)
        with pytest.raises(AssertionError, match="fsck dirty"):
            harness.sweep_flush_boundaries()

    def test_clean_fsck_recorded_on_iterations(self):
        def clean_fsck(rctx):
            return SimpleNamespace(clean=True, errors=[])

        report = _correct_harness(rounds=2,
                                  fsck=clean_fsck).sweep_flush_boundaries()
        assert all(it.fsck_clean for it in report.iterations)

    def test_unknown_fault_mode_rejected(self):
        with pytest.raises(ValueError, match="fault mode"):
            _correct_harness().sweep_flush_boundaries("lava")


class TestBackstop:
    """Hitting DEFAULT_MAX_POINTS without completion is an error, not a
    quietly "capped" report — an explicit ``max_points`` opts into partial
    coverage, the default backstop does not."""

    def test_default_cap_raises_when_workload_never_completes(self,
                                                              monkeypatch):
        import repro.faults.harness as harness_mod
        monkeypatch.setattr(harness_mod, "DEFAULT_MAX_POINTS", 3)
        with pytest.raises(RuntimeError, match="backstop"):
            _correct_harness(rounds=100).sweep_flush_boundaries()

    def test_explicit_max_points_still_returns_capped_report(self,
                                                             monkeypatch):
        import repro.faults.harness as harness_mod
        monkeypatch.setattr(harness_mod, "DEFAULT_MAX_POINTS", 3)
        report = _correct_harness(rounds=100).sweep_flush_boundaries(
            max_points=3)
        assert len(report.iterations) == 3
        assert not report.exhausted
        assert "capped" in report.summary()

    def test_default_cap_quiet_when_workload_completes(self, monkeypatch):
        import repro.faults.harness as harness_mod
        # 2 rounds = 4 flushes: exhausts on iteration 5, inside the cap.
        monkeypatch.setattr(harness_mod, "DEFAULT_MAX_POINTS", 8)
        report = _correct_harness(rounds=2).sweep_flush_boundaries()
        assert report.exhausted


class TestTimelineDump:
    """A failing check ships the traced contexts' span timelines."""

    @staticmethod
    def _traced_harness(invariant, observatory=None):
        from repro.obs import Observatory

        def setup():
            clock = Clock()
            obs = Observatory(clock)
            return SimpleNamespace(device=NvmDevice(256, clock),
                                   obs=obs, clock=clock)

        def workload(ctx):
            d = ctx.device
            for i in range(1, 4):
                with ctx.obs.span("toy.round", i=i):
                    d.write(A, i)
                    d.clflush(A)
                    d.fence()

        def recover(ctx, crashed):
            ctx.device.crash()
            with ctx.obs.span("toy.recover"):
                ctx.clock.charge(1)
            return ctx

        return CrashSweepHarness(
            "traced-toy", setup=setup, workload=workload, recover=recover,
            invariant=invariant, devices=lambda ctx: [ctx.device],
            observatory=observatory)

    def test_failure_includes_timelines(self):
        def bad_invariant(rctx, completed):
            raise AssertionError("wrong state")

        harness = self._traced_harness(bad_invariant)
        with pytest.raises(AssertionError) as excinfo:
            harness.sweep_flush_boundaries()
        message = str(excinfo.value)
        assert "wrong state" in message
        assert "crashed context timeline" in message
        assert "toy.round" in message
        assert "toy.recover" in message

    def test_passing_sweep_has_no_dump_overhead(self):
        report = self._traced_harness(
            lambda rctx, completed: None).sweep_flush_boundaries()
        assert report.exhausted

    def test_untraced_context_fails_plainly(self):
        def bad_invariant(rctx, completed):
            raise AssertionError("plain failure")

        harness = _correct_harness(rounds=2)
        harness.invariant = bad_invariant
        with pytest.raises(AssertionError) as excinfo:
            harness.sweep_flush_boundaries()
        assert "timeline" not in str(excinfo.value)

    def test_observatory_callback_overrides_ctx_attr(self):
        def bad_invariant(rctx, completed):
            raise AssertionError("nope")

        harness = self._traced_harness(
            bad_invariant, observatory=lambda ctx: ctx.obs)
        with pytest.raises(AssertionError, match="crashed context timeline"):
            harness.sweep_flush_boundaries()

    def test_simulated_crash_from_recovery_not_wrapped(self):
        def recover(ctx, crashed):
            from repro.errors import SimulatedCrash
            raise SimulatedCrash("recovery hit the bomb")

        harness = self._traced_harness(lambda rctx, completed: None)
        harness.recover = recover
        from repro.errors import SimulatedCrash
        with pytest.raises(SimulatedCrash):
            harness.sweep_flush_boundaries(max_points=1)
