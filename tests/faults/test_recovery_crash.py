"""Crash *during recovery*: the second power loss.

Recovery itself runs over NVM, so the power can fail again while
``loadHeap`` is replaying a crashed collection or normalising the frame
stack.  Both recovery passes are written to be idempotent; these tests
pin that down by injecting a second :class:`~repro.errors.SimulatedCrash`
inside ``recover()`` / ``recover_frames()`` via failpoints armed during
the load, saving the half-recovered device's durable image (the
``_last_load_device`` stash), and letting a third session finish the job.

The invariant in every scenario: the doubly-crashed path converges on the
same durable bytes (and the same answers) as the straight
crash-once-recover-once path.
"""

import hashlib
import shutil
import tempfile
from pathlib import Path

import pytest

from repro.api import Espresso, EspressoConfig
from repro.errors import SimulatedCrash
from repro.obs import Observatory
from repro.runtime.klass import FieldKind, field


def _image_hash(heap) -> str:
    return hashlib.sha256(heap.device.durable_image().tobytes()).hexdigest()


def _save_partial_recovery(jvm, name: str) -> None:
    """Persist the half-recovered device after a crash inside load."""
    device = jvm.heaps._last_load_device
    assert device is not None, "load crash did not stash its device"
    device.crash()  # apply the power loss to the partial recovery
    jvm.heaps.names.save_image(name, device.durable_image())


# ----------------------------------------------------------------------
# PJH layer: second crash inside GC recovery
# ----------------------------------------------------------------------
class TestCrashDuringGcRecovery:
    def _build_crashed_heap(self, tmp):
        """A heap durably mid-collection: crashed mid-compact."""
        jvm = Espresso(tmp / "heaps", observatory=Observatory())
        node = jvm.define_class("RNode", [field("v", FieldKind.INT),
                                          field("next", FieldKind.REF)])
        jvm.create_heap("h", 256 * 1024, region_words=128)
        keep = None
        for i in range(18):
            n = jvm.pnew(node)
            jvm.set_field(n, "v", i)
            if i % 3 == 0:
                if keep is not None:
                    jvm.set_field(n, "next", keep)
                keep = n
                jvm.flush_reachable(keep)
                jvm.set_root("keep", keep)
            else:
                n.close()
        jvm.vm.failpoints.crash_on_hit("gc.compact.serial_object_done", 3)
        with pytest.raises(SimulatedCrash):
            jvm.persistent_gc()
        jvm.crash()  # power loss: the mid-GC durable image is saved
        return jvm

    def _fresh(self, tmp):
        jvm = Espresso(tmp / "heaps", observatory=Observatory())
        jvm.define_class("RNode", [field("v", FieldKind.INT),
                                   field("next", FieldKind.REF)])
        return jvm

    @pytest.mark.parametrize("site", ["gc.compact.serial_object_done",
                                      "pgc.redo_applied",
                                      "pgc.flag_cleared"])
    def test_second_crash_inside_recover_converges(self, site):
        tmp = Path(tempfile.mkdtemp(prefix="rcvcrash-gc-"))
        try:
            self._build_crashed_heap(tmp)

            # Straight path: one recovery, no second crash.  The load
            # mutates only the in-memory device (nothing is saved back),
            # so the on-disk image still holds the first crash state.
            ref = self._fresh(tmp)
            heap = ref.load_heap("h")
            straight = _image_hash(heap)

            # Doubly-crashed path: the recovery itself dies at *site*.
            jvm2 = self._fresh(tmp)
            jvm2.vm.failpoints.crash_on_hit(site, 1)
            with pytest.raises(SimulatedCrash):
                jvm2.load_heap("h")
            _save_partial_recovery(jvm2, "h")

            jvm3 = self._fresh(tmp)
            heap3 = jvm3.load_heap("h")
            assert _image_hash(heap3) == straight
            # The survivor chain is intact either way.
            head = jvm3.get_root("keep")
            chain = []
            while head is not None:
                chain.append(jvm3.get_field(head, "v"))
                head = jvm3.get_field(head, "next")
            assert chain == [15, 12, 9, 6, 3, 0]
            from repro.tools.fsck import fsck_heap
            report = fsck_heap(heap3)
            assert report.clean, report.errors
            assert report.frames_clean, report.frame_errors
        finally:
            shutil.rmtree(tmp, ignore_errors=True)


# ----------------------------------------------------------------------
# Resume layer: second crash inside frame recovery
# ----------------------------------------------------------------------
class TestCrashDuringFrameRecovery:
    N = 5
    EXPECTED = sum(i * i for i in range(N))

    def _define(self, jvm):
        jvm.define_class("FNode", [field("v", FieldKind.INT),
                                   field("next", FieldKind.REF)])

    def _session(self, tmp, registry=None):
        cfg = EspressoConfig(resumable=True, observatory=Observatory(),
                             task_registry=registry)
        jvm = Espresso(tmp / "heaps", config=cfg)
        self._define(jvm)
        if registry is None:
            self._register(jvm)
        return jvm

    def _register(self, jvm):
        def _mk(s, i, prev):
            node = s.pnew("FNode")
            s.set_field(node, "v", i)
            if prev is not None:
                s.set_field(node, "next", prev)
            s.flush_reachable(node)
            return node

        @jvm.register_task("build")
        def build(task, s, n):
            prev = None
            total = 0
            for i in range(n):
                prev = task.step(_mk, s, i, prev)
                total += task.call("weigh", i)
            s.set_root("list", prev)
            return total

        @jvm.register_task("weigh")
        def weigh(task, s, i):
            return task.step(lambda: i * i)

    def _build_half_popped_heap(self, tmp):
        """Crash right after a child frame seals: the pop is half done."""
        jvm = self._session(tmp)
        jvm.create_heap("h", 512 * 1024)
        jvm.vm.failpoints.crash_on_hit("resume.frame_finished", 2)
        with pytest.raises(SimulatedCrash):
            jvm.resumable_task("build").run(self.N)
        jvm.crash()
        return jvm.config.task_registry

    @pytest.mark.parametrize("site", ["resume.pop_checkpointed",
                                      "resume.top_popped"])
    def test_second_crash_inside_recover_frames_converges(self, site):
        tmp = Path(tempfile.mkdtemp(prefix="rcvcrash-frames-"))
        try:
            registry = self._build_half_popped_heap(tmp)

            # Straight path: load (completes the pop), then finish the
            # task.  Nothing is written back to disk.
            ref = self._session(tmp, registry)
            heap = ref.load_heap("h")
            straight_after_load = _image_hash(heap)
            assert ref.obs.metrics.counters_snapshot().get(
                "recovery.frame_pops_completed", 0) == 1
            assert ref.resumable_task("build").run(self.N) == self.EXPECTED
            straight_final = _image_hash(heap)

            # Doubly-crashed path: frame recovery dies mid-pop.
            jvm2 = self._session(tmp, registry)
            jvm2.vm.failpoints.crash_on_hit(site, 1)
            with pytest.raises(SimulatedCrash):
                jvm2.load_heap("h")
            _save_partial_recovery(jvm2, "h")

            jvm3 = self._session(tmp, registry)
            heap3 = jvm3.load_heap("h")
            # Idempotent recovery: the twice-recovered stack matches the
            # once-recovered one byte for byte...
            assert _image_hash(heap3) == straight_after_load
            # ...and the task still resumes to the same answer and the
            # same final image.
            assert jvm3.resumable_task("build").run(self.N) == self.EXPECTED
            assert _image_hash(heap3) == straight_final
            from repro.tools.fsck import fsck_heap
            report = fsck_heap(heap3)
            assert report.clean, report.errors
            assert report.frames_clean, report.frame_errors
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    def test_frame_recovery_counter_not_double_counted(self):
        """After a crash at resume.top_popped the pop is fully durable:
        the third load finds a live top frame and completes zero pops."""
        tmp = Path(tempfile.mkdtemp(prefix="rcvcrash-count-"))
        try:
            registry = self._build_half_popped_heap(tmp)
            jvm2 = self._session(tmp, registry)
            jvm2.vm.failpoints.crash_on_hit("resume.top_popped", 1)
            with pytest.raises(SimulatedCrash):
                jvm2.load_heap("h")
            _save_partial_recovery(jvm2, "h")

            jvm3 = self._session(tmp, registry)
            jvm3.load_heap("h")
            assert jvm3.obs.metrics.counters_snapshot().get(
                "recovery.frame_pops_completed", 0) == 0
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
