"""The registered per-layer crash sweeps.

The fast tests run a strided, capped walk of every (sweep, fault-mode)
pair on each ordinary test run.  The exhaustive walks — every injection
point until the workload outruns the bomb — carry ``@pytest.mark.sweep``
and are deselected by default; run them with ``make sweep`` or
``pytest -m sweep``.
"""

import pytest

from repro.faults import SWEEPS, run_sweep
from repro.nvm.device import FaultMode

ALL_PAIRS = [(name, mode) for name in sorted(SWEEPS)
             for mode in FaultMode.ALL]


def test_registry_covers_all_ten_layers():
    assert sorted(SWEEPS) == ["concurrent_kv", "fleet_failover", "h2_sql",
                              "mixed_domains", "pcj_nvml",
                              "pjh_alloc_buffer", "pjh_alloc_gc",
                              "pjhlib", "pjo_commit", "resume_task"]


@pytest.mark.parametrize("name,mode", ALL_PAIRS)
def test_fast_sweep(name, mode):
    report = run_sweep(name, mode, exhaustive=False)
    assert report.crash_points > 0  # the strided walk hit real points
    assert report.fault_mode == mode


@pytest.mark.sweep
@pytest.mark.parametrize("name,mode", ALL_PAIRS)
def test_exhaustive_sweep(name, mode):
    report = run_sweep(name, mode)
    assert report.exhausted, report.summary()
    assert report.crash_points > 0


@pytest.mark.parametrize("name", sorted(SWEEPS))
def test_every_sweep_context_is_traced(name):
    """Each sweep's contexts carry a live Observatory, so a failing
    iteration dumps its span timeline (see harness._timeline_dump)."""
    harness = SWEEPS[name].factory()
    ctx = harness.setup()
    try:
        assert harness._observatory_of(ctx) is not None
        harness.workload(ctx)
        rctx = harness.recover(ctx, False)
        obs = harness._observatory_of(rctx)
        assert obs is not None
        dump = harness._timeline_dump(ctx, rctx)
        assert "crashed context timeline" in dump
        assert "recovered context timeline" in dump
    finally:
        if harness.teardown is not None:
            harness.teardown(ctx, None)


@pytest.mark.sweep
@pytest.mark.parametrize("mode", FaultMode.ALL)
def test_pjh_alloc_gc_site_sweeps(mode):
    """Per-site sweeps of the GC's most delicate failpoints."""
    harness = SWEEPS["pjh_alloc_gc"].factory()
    for site in ("pgc.flag_raised", "gc.compact.copied",
                 "pgc.redo_persisted"):
        report = harness.sweep_site(site, mode)
        assert report.exhausted, report.summary()


def test_sweep_all_json_summary(tmp_path, capsys):
    """``sweep_all --json`` writes per-layer point counts."""
    import json

    from repro.faults.sweep_all import main

    out = tmp_path / "sweeps.json"
    rc = main(["--fast", "--sweep", "concurrent_kv", "--mode", "atomic",
               "--json", str(out)])
    assert rc == 0
    summary = json.loads(out.read_text())
    assert summary["failures"] == 0
    assert summary["fast"] is True
    (layer,) = summary["layers"]
    assert layer["name"] == "concurrent_kv"
    assert layer["failed"] is False
    assert layer["points"] == layer["crash_points"] + 1  # final clean run
    assert layer["fsck_checked"] == layer["points"]
    assert layer["exhausted"] is True
    assert summary["total_points"] == layer["points"]
    assert summary["total_crash_points"] == layer["crash_points"]
