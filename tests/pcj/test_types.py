"""Tests for the boxed persistent primitive types."""

import pytest

from repro.pcj import (
    MemoryPool,
    PersistentBoolean,
    PersistentDouble,
    PersistentInteger,
    PersistentLong,
    PersistentString,
)


@pytest.fixture
def pool():
    return MemoryPool(64 * 1024)


def test_long_roundtrip(pool):
    v = PersistentLong(pool, 123456789)
    assert v.long_value() == 123456789


def test_long_set(pool):
    v = PersistentLong(pool, 1)
    v.set(-5)
    assert v.long_value() == -5


def test_integer(pool):
    assert PersistentInteger(pool, 42).int_value() == 42


def test_boolean(pool):
    assert PersistentBoolean(pool, True).boolean_value() is True
    assert PersistentBoolean(pool, False).boolean_value() is False


def test_double(pool):
    v = PersistentDouble(pool, 3.75)
    assert v.double_value() == 3.75
    v.set(-0.5)
    assert v.double_value() == -0.5


def test_string_roundtrip(pool):
    s = PersistentString(pool, "hello NVM")
    assert s.str_value() == "hello NVM"
    assert s.length() == 9


def test_empty_string(pool):
    assert PersistentString(pool, "").str_value() == ""


def test_refcount_starts_at_one(pool):
    assert PersistentLong(pool, 1).refcount == 1


def test_value_survives_pool_crash_after_create(pool):
    """Creation is transactional: committed values are durable."""
    v = PersistentLong(pool, 777)
    offset = v.offset
    pool.device.crash()
    pool.recover()
    assert pool.device.read(offset) == 777


def test_set_aborted_by_crash_rolls_back(pool):
    v = PersistentLong(pool, 1)
    # Simulate a crash in the middle of an ACID set: begin + log + write.
    pool.tx_begin()
    pool.tx_add_range(v.offset, 1)
    pool.device.write(v.offset, 2)
    pool.device.clflush(v.offset)
    pool.device.crash()
    pool.recover()
    assert pool.device.read(v.offset) == 1
