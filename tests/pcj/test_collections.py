"""Tests for PCJ collections: arrays, tuples, lists, hashmaps, refcounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ArrayIndexOutOfBoundsException
from repro.pcj import (
    MemoryPool,
    PersistentArray,
    PersistentArrayList,
    PersistentHashmap,
    PersistentInteger,
    PersistentLong,
    PersistentLongArray,
    PersistentString,
    PersistentTuple,
)


@pytest.fixture
def pool():
    return MemoryPool(512 * 1024, tx_log_words=16384)


class TestArrays:
    def test_ref_array_roundtrip(self, pool):
        arr = PersistentArray(pool, 4)
        v = PersistentLong(pool, 10)
        arr.set(2, v)
        assert arr.get(2).long_value() == 10
        assert arr.get(0) is None

    def test_bounds(self, pool):
        arr = PersistentArray(pool, 2)
        with pytest.raises(ArrayIndexOutOfBoundsException):
            arr.get(2)
        with pytest.raises(ArrayIndexOutOfBoundsException):
            arr.set(-1, None)

    def test_long_array(self, pool):
        arr = PersistentLongArray(pool, 5)
        arr.set(0, -3)
        arr.set(4, 99)
        assert arr.get(0) == -3
        assert arr.get(4) == 99
        assert arr.length() == 5

    def test_overwrite_decrements_old(self, pool):
        arr = PersistentArray(pool, 1)
        a = PersistentLong(pool, 1)
        b = PersistentLong(pool, 2)
        arr.set(0, a)
        assert a.refcount == 2
        arr.set(0, b)
        assert a.refcount == 1
        assert b.refcount == 2


class TestTuple:
    def test_tuple_roundtrip(self, pool):
        t = PersistentTuple(pool, 3)
        t.set(0, PersistentString(pool, "a"))
        t.set(1, PersistentLong(pool, 2))
        assert t.get(0).str_value() == "a"
        assert t.get(1).long_value() == 2
        assert t.get(2) is None
        assert t.arity() == 3


class TestArrayList:
    def test_add_and_get(self, pool):
        lst = PersistentArrayList(pool)
        for i in range(20):  # forces growth past the initial capacity
            lst.add(PersistentLong(pool, i))
        assert lst.size() == 20
        assert [lst.get(i).long_value() for i in range(20)] == list(range(20))

    def test_set_replaces(self, pool):
        lst = PersistentArrayList(pool)
        lst.add(PersistentLong(pool, 1))
        lst.set(0, PersistentLong(pool, 9))
        assert lst.get(0).long_value() == 9

    def test_bounds(self, pool):
        lst = PersistentArrayList(pool)
        with pytest.raises(ArrayIndexOutOfBoundsException):
            lst.get(0)


class TestHashmap:
    def test_put_get(self, pool):
        m = PersistentHashmap(pool)
        m.put(PersistentString(pool, "one"), PersistentLong(pool, 1))
        m.put(PersistentString(pool, "two"), PersistentLong(pool, 2))
        assert m.get(PersistentString(pool, "one")).long_value() == 1
        assert m.get(PersistentString(pool, "two")).long_value() == 2
        assert m.size() == 2

    def test_missing_key(self, pool):
        m = PersistentHashmap(pool)
        assert m.get(PersistentString(pool, "none")) is None

    def test_update_value(self, pool):
        m = PersistentHashmap(pool)
        key = PersistentLong(pool, 7)
        m.put(key, PersistentLong(pool, 1))
        m.put(PersistentLong(pool, 7), PersistentLong(pool, 2))
        assert m.size() == 1
        assert m.get(key).long_value() == 2

    def test_remove(self, pool):
        m = PersistentHashmap(pool)
        m.put(PersistentLong(pool, 1), PersistentLong(pool, 10))
        m.put(PersistentLong(pool, 2), PersistentLong(pool, 20))
        assert m.remove(PersistentLong(pool, 1))
        assert not m.remove(PersistentLong(pool, 1))
        assert m.get(PersistentLong(pool, 1)) is None
        assert m.get(PersistentLong(pool, 2)).long_value() == 20
        assert m.size() == 1

    def test_rehash_preserves_entries(self, pool):
        m = PersistentHashmap(pool)
        for i in range(50):  # forces several rehashes
            m.put(PersistentLong(pool, i), PersistentLong(pool, i * i))
        for i in range(50):
            assert m.get(PersistentLong(pool, i)).long_value() == i * i
        assert m.size() == 50

    def test_collisions_chain(self, pool):
        """Keys with identical hashes land in one bucket and still resolve."""
        m = PersistentHashmap(pool)
        step = 16  # initial bucket count: 0, 16, 32 collide
        for i in range(3):
            m.put(PersistentLong(pool, i * step), PersistentLong(pool, i))
        for i in range(3):
            assert m.get(PersistentLong(pool, i * step)).long_value() == i


class TestRefcounting:
    def test_dec_to_zero_frees(self, pool):
        v = PersistentLong(pool, 5)
        assert pool.free_list_length() == 0
        v.dec_ref()
        assert pool.free_list_length() == 1

    def test_container_release_cascades(self, pool):
        arr = PersistentArray(pool, 2)
        a = PersistentLong(pool, 1)
        arr.set(0, a)
        a.dec_ref()  # only the array holds it now
        assert a.refcount == 1
        arr.dec_ref()  # frees the array and, transitively, a
        assert pool.free_list_length() >= 2

    def test_removed_entry_is_freed(self, pool):
        m = PersistentHashmap(pool)
        key = PersistentLong(pool, 1)
        val = PersistentLong(pool, 2)
        m.put(key, val)
        free_before = pool.free_list_length()
        m.remove(PersistentLong(pool, 1))
        assert pool.free_list_length() > free_before


@settings(max_examples=20, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["put", "remove", "get"]),
              st.integers(0, 15), st.integers(-100, 100)),
    min_size=1, max_size=40))
def test_property_hashmap_matches_dict(ops):
    """Property: PersistentHashmap behaves like a Python dict."""
    pool = MemoryPool(1024 * 1024, tx_log_words=16384)
    m = PersistentHashmap(pool)
    model = {}
    for op, k, v in ops:
        if op == "put":
            m.put(PersistentLong(pool, k), PersistentLong(pool, v))
            model[k] = v
        elif op == "remove":
            assert m.remove(PersistentLong(pool, k)) == (k in model)
            model.pop(k, None)
        else:
            got = m.get(PersistentLong(pool, k))
            if k in model:
                assert got is not None and got.long_value() == model[k]
            else:
                assert got is None
    assert m.size() == len(model)
