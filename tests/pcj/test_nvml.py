"""Tests for the NVML-style pool: allocation, transactions, directories."""

import pytest

from repro.errors import IllegalStateException, OutOfMemoryError
from repro.pcj.nvml import HEADER_WORDS, MemoryPool


@pytest.fixture
def pool():
    return MemoryPool(64 * 1024)


class TestAllocation:
    def test_pmalloc_returns_distinct_payloads(self, pool):
        a = pool.pmalloc(4, 0)
        b = pool.pmalloc(4, 0)
        assert b >= a + 4 + HEADER_WORDS

    def test_payload_size_recorded(self, pool):
        a = pool.pmalloc(7, 0)
        assert pool.payload_size(a) == 7

    def test_free_and_reuse(self, pool):
        a = pool.pmalloc(8, 0)
        pool.pfree(a)
        assert pool.free_list_length() == 1
        b = pool.pmalloc(8, 0)
        assert b == a  # first fit reuses the chunk
        assert pool.free_list_length() == 0

    def test_free_chunk_too_small_not_reused(self, pool):
        a = pool.pmalloc(2, 0)
        pool.pfree(a)
        b = pool.pmalloc(10, 0)
        assert b != a
        assert pool.free_list_length() == 1

    def test_exhaustion(self):
        pool = MemoryPool(16 * 1024, tx_log_words=512)
        with pytest.raises(OutOfMemoryError):
            for _ in range(10000):
                pool.pmalloc(16, 0)


class TestTransactions:
    def test_commit_keeps_changes(self, pool):
        a = pool.pmalloc(2, 0)
        pool.tx_begin()
        pool.tx_add_range(a, 1)
        pool.device.write(a, 42)
        pool.tx_commit()
        assert pool.device.read(a) == 42

    def test_abort_restores_old_data(self, pool):
        a = pool.pmalloc(2, 0)
        pool.device.write(a, 1)
        pool.device.clflush(a)
        pool.tx_begin()
        pool.tx_add_range(a, 1)
        pool.device.write(a, 99)
        pool.tx_abort()
        assert pool.device.read(a) == 1

    def test_abort_applies_undo_in_reverse(self, pool):
        a = pool.pmalloc(2, 0)
        pool.device.write(a, 1)
        pool.tx_begin()
        pool.tx_add_range(a, 1)
        pool.device.write(a, 2)
        pool.tx_add_range(a, 1)  # logs the intermediate value 2
        pool.device.write(a, 3)
        pool.tx_abort()
        assert pool.device.read(a) == 1  # reverse order restores original

    def test_nested_begin_rejected(self, pool):
        pool.tx_begin()
        with pytest.raises(IllegalStateException):
            pool.tx_begin()

    def test_log_outside_tx_rejected(self, pool):
        with pytest.raises(IllegalStateException):
            pool.tx_add_range(pool.heap_offset, 1)

    def test_crash_during_tx_rolls_back_on_recover(self, pool):
        a = pool.pmalloc(2, 0)
        pool.device.write(a, 5)
        pool.device.clflush(a)
        pool.tx_begin()
        pool.tx_add_range(a, 1)
        pool.device.write(a, 6)
        pool.device.clflush(a)
        pool.device.crash()  # tx_active survives; the new value too
        pool.recover()
        assert pool.device.read(a) == 5


class TestDirectories:
    def test_type_interning_is_stable(self, pool):
        a = pool.intern_type("Foo")
        b = pool.intern_type("Bar")
        assert a != b
        assert pool.intern_type("Foo") == a

    def test_roots(self, pool):
        a = pool.pmalloc(2, 0)
        pool.set_root("head", a)
        assert pool.get_root("head") == a
        assert pool.get_root("missing") is None

    def test_root_update(self, pool):
        a = pool.pmalloc(2, 0)
        b = pool.pmalloc(2, 0)
        pool.set_root("r", a)
        pool.set_root("r", b)
        assert pool.get_root("r") == b

    def test_gc_register_counts(self, pool):
        before = pool.device.read(8)  # _GC_REG_COUNT
        pool.gc_register(pool.pmalloc(2, 0))
        assert pool.device.read(8) == before + 1
