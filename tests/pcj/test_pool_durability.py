"""PCJ pool durability tests: close/reopen, crash recovery, reattachment."""

import pytest

from repro.errors import IllegalArgumentException
from repro.pcj import (
    MemoryPool,
    PersistentArrayList,
    PersistentHashmap,
    PersistentLong,
    PersistentString,
)


def fresh_pool():
    return MemoryPool(256 * 1024, tx_log_words=8192)


class TestCloseReopen:
    def test_value_survives_graceful_close(self):
        pool = fresh_pool()
        v = PersistentLong(pool, 4242)
        pool.set_root("v", v.offset)
        image = pool.close()

        pool2 = MemoryPool.open(image)
        reattached = PersistentLong.from_offset(pool2, pool2.get_root("v"))
        assert reattached.long_value() == 4242

    def test_committed_data_survives_crash(self):
        pool = fresh_pool()
        v = PersistentLong(pool, 7)  # creation commits
        pool.set_root("v", v.offset)
        image = pool.crash_image()

        pool2 = MemoryPool.open(image)
        assert PersistentLong.from_offset(
            pool2, pool2.get_root("v")).long_value() == 7

    def test_torn_transaction_rolled_back_on_open(self):
        pool = fresh_pool()
        v = PersistentLong(pool, 1)
        pool.set_root("v", v.offset)
        pool.tx_begin()
        pool.tx_add_range(v.offset, 1)
        pool.device.write(v.offset, 99)
        pool.device.clflush(v.offset)
        image = pool.crash_image()  # crash before commit

        pool2 = MemoryPool.open(image)
        assert not pool2.in_transaction
        assert PersistentLong.from_offset(
            pool2, pool2.get_root("v")).long_value() == 1

    def test_collections_survive_reopen(self):
        pool = fresh_pool()
        lst = PersistentArrayList(pool)
        for i in range(12):
            lst.add(PersistentLong(pool, i * i))
        mapping = PersistentHashmap(pool)
        mapping.put(PersistentString(pool, "k"), PersistentLong(pool, 5))
        pool.set_root("list", lst.offset)
        pool.set_root("map", mapping.offset)
        image = pool.close()

        pool2 = MemoryPool.open(image)
        for cls in (PersistentLong, PersistentString, PersistentArrayList,
                    PersistentHashmap):
            pool2.bind_class(cls)
        from repro.pcj.collections import PersistentArray, _HashEntry
        pool2.bind_class(PersistentArray)
        pool2.bind_class(_HashEntry)
        lst2 = PersistentArrayList.from_offset(pool2, pool2.get_root("list"))
        assert [lst2.get(i).long_value() for i in range(12)] \
            == [i * i for i in range(12)]
        map2 = PersistentHashmap.from_offset(pool2, pool2.get_root("map"))
        assert map2.get(PersistentString(pool2, "k")).long_value() == 5

    def test_type_table_persists(self):
        pool = fresh_pool()
        type_id = pool.intern_type("Custom")
        image = pool.close()
        pool2 = MemoryPool.open(image)
        assert pool2.intern_type("Custom") == type_id

    def test_allocator_state_persists(self):
        pool = fresh_pool()
        a = pool.pmalloc(4, 0)
        pool.pfree(a)
        image = pool.close()
        pool2 = MemoryPool.open(image)
        assert pool2.free_list_length() == 1
        assert pool2.pmalloc(4, 0) == a  # free chunk reused after reopen

    def test_garbage_image_rejected(self):
        import numpy as np
        with pytest.raises(IllegalArgumentException):
            MemoryPool.open(np.zeros(64 * 1024, dtype=np.int64))

    def test_unflushed_set_lost_on_crash(self):
        """A value written through the ACID path commits durably; a raw
        unflushed write does not — the crash model is real for PCJ too."""
        pool = fresh_pool()
        v = PersistentLong(pool, 1)
        pool.set_root("v", v.offset)
        v.set(2)  # ACID set: durable
        pool.device.write(v.offset, 3)  # raw, unflushed
        image = pool.crash_image()
        pool2 = MemoryPool.open(image)
        assert PersistentLong.from_offset(
            pool2, pool2.get_root("v")).long_value() == 2
