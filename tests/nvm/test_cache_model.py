"""Tests for the CPU cache model and latency configuration."""

import pytest

from repro.nvm.clock import Clock
from repro.nvm.device import LINE_WORDS, MemoryDevice, NvmDevice
from repro.nvm.latency import DEFAULT_LATENCY, LatencyConfig


@pytest.fixture
def clock():
    return Clock()


class TestCacheModel:
    def test_second_read_of_same_line_is_cheap(self, clock):
        dev = NvmDevice(1024, clock)
        dev.read(0)
        miss_cost = clock.now_ns
        dev.read(1)  # same line
        hit_cost = clock.now_ns - miss_cost
        assert hit_cost < miss_cost

    def test_write_warms_the_line(self, clock):
        dev = NvmDevice(1024, clock)
        dev.write(0, 1)
        before = clock.now_ns
        dev.read(0)
        assert clock.now_ns - before == DEFAULT_LATENCY.cache_hit_ns

    def test_lru_eviction(self, clock):
        dev = NvmDevice(
            (MemoryDevice.CACHE_LINES + 10) * LINE_WORDS * 2, clock)
        dev.read(0)
        # Touch enough distinct lines to evict line 0.
        for line in range(1, MemoryDevice.CACHE_LINES + 5):
            dev.read(line * LINE_WORDS)
        before = clock.now_ns
        dev.read(0)
        assert clock.now_ns - before == DEFAULT_LATENCY.nvm_read_ns  # miss

    def test_crash_clears_cache(self, clock):
        dev = NvmDevice(1024, clock)
        dev.read(0)
        dev.crash()
        before = clock.now_ns
        dev.read(0)
        assert clock.now_ns - before == DEFAULT_LATENCY.nvm_read_ns

    def test_block_read_charges_per_line(self, clock):
        dev = NvmDevice(1024, clock)
        dev.read_block(0, LINE_WORDS * 3)  # 3 cold lines
        assert clock.now_ns == DEFAULT_LATENCY.nvm_read_ns * 3


class TestAsyncFlush:
    def test_async_flush_is_cheaper_but_still_durable(self, clock):
        dev = NvmDevice(1024, clock)
        dev.write(0, 42)
        t0 = clock.now_ns
        dev.clflush(0, asynchronous=True)
        async_cost = clock.now_ns - t0
        assert async_cost == DEFAULT_LATENCY.clflush_issue_ns
        dev.crash()
        assert dev.read(0) == 42

    def test_sync_flush_costs_full_latency(self, clock):
        dev = NvmDevice(1024, clock)
        dev.write(0, 1)
        t0 = clock.now_ns
        dev.clflush(0)
        assert clock.now_ns - t0 == DEFAULT_LATENCY.clflush_ns


class TestLatencyConfig:
    def test_scaled(self):
        scaled = DEFAULT_LATENCY.scaled(2.0)
        assert scaled.nvm_read_ns == DEFAULT_LATENCY.nvm_read_ns * 2
        assert scaled.clflush_ns == DEFAULT_LATENCY.clflush_ns * 2
        assert scaled.cpu_op_ns == DEFAULT_LATENCY.cpu_op_ns  # CPU unscaled

    def test_custom_config_flows_to_devices(self, clock):
        config = LatencyConfig(nvm_read_ns=7.0, cache_hit_ns=7.0)
        dev = NvmDevice(64, clock, latency=config)
        dev.read(0)
        assert clock.now_ns == 7.0

    def test_writes_cheaper_than_flushes(self):
        """The write-back model: stores are cheap, durability costs at
        flush time (several times DRAM write latency, per the paper)."""
        assert DEFAULT_LATENCY.nvm_write_ns < DEFAULT_LATENCY.clflush_ns
        assert DEFAULT_LATENCY.clflush_ns > 3 * DEFAULT_LATENCY.dram_write_ns
