"""Property tests for the device fault model (torn / reordered crashes).

The contract, regardless of mode:

* a write whose line was ``clflush``-ed and then ``fence``-d survives any
  crash with exactly its fenced value (unless overwritten afterwards);
* TORN never invents data: each durable word after a crash is either its
  previous durable value or the live value — a word-aligned subset;
* REORDERED reverts whole lines, never single words, and only lines that
  were flushed after the last fence;
* the tearing is deterministic in the seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.clock import Clock
from repro.nvm.device import LINE_WORDS, FaultMode, NvmDevice

SIZE = 256

offsets = st.integers(min_value=0, max_value=SIZE - 1)
values = st.integers(min_value=-(2 ** 62), max_value=2 ** 62)
seeds = st.integers(min_value=0, max_value=2 ** 16)


def _device() -> NvmDevice:
    return NvmDevice(SIZE, Clock())


@settings(max_examples=60, deadline=None)
@given(committed=st.dictionaries(offsets, values, max_size=24),
       scribbles=st.lists(st.tuples(offsets, values, st.booleans()),
                          max_size=24),
       mode=st.sampled_from(FaultMode.ALL), seed=seeds)
def test_fenced_writes_survive_any_crash(committed, scribbles, mode, seed):
    device = _device()
    device.set_fault_mode(mode, seed=seed)
    for offset, value in committed.items():
        device.write(offset, value)
        device.clflush(offset)
    device.fence()
    overwritten = set()
    for offset, value, flush in scribbles:
        device.write(offset, value)
        overwritten.add(offset)
        if flush:
            device.clflush(offset)  # flushed but never fenced
    device.crash()
    for offset, value in committed.items():
        if offset not in overwritten:
            assert device.read(offset) == value


@settings(max_examples=60, deadline=None)
@given(base=st.dictionaries(offsets, values, max_size=16),
       dirty=st.lists(st.tuples(offsets, values), min_size=1, max_size=24),
       seed=seeds)
def test_torn_survivors_are_word_aligned_subsets(base, dirty, seed):
    device = _device()
    for offset, value in base.items():
        device.write(offset, value)
    device.persist_all()
    device.set_fault_mode(FaultMode.TORN, seed=seed)
    for offset, value in dirty:
        device.write(offset, value)
    durable_before = device.durable_image().copy()
    live_before = device._words.copy()
    device.crash()
    after = device.durable_image()
    for i in range(SIZE):
        assert after[i] in (durable_before[i], live_before[i]), i


@settings(max_examples=60, deadline=None)
@given(dirty=st.lists(st.tuples(offsets, values), min_size=1, max_size=24),
       seed=seeds)
def test_atomic_crash_drops_exactly_the_unflushed(dirty, seed):
    device = _device()
    device.set_fault_mode(FaultMode.ATOMIC, seed=seed)
    durable_before = device.durable_image().copy()
    for offset, value in dirty:
        device.write(offset, value)
    device.crash()
    assert np.array_equal(device.durable_image(), durable_before)


@settings(max_examples=60, deadline=None)
@given(flushed=st.dictionaries(offsets, values, min_size=1, max_size=24),
       seed=seeds)
def test_reordered_reverts_whole_lines_only(flushed, seed):
    device = _device()
    device.set_fault_mode(FaultMode.REORDERED, seed=seed)
    old = device.durable_image().copy()  # all zeros
    for offset, value in flushed.items():
        device.write(offset, value)
        device.clflush(offset)
    # No fence: each flushed line must now be entirely new or entirely old.
    new = device._words.copy()
    device.crash()
    after = device.durable_image()
    for line in range(SIZE // LINE_WORDS):
        lo, hi = line * LINE_WORDS, (line + 1) * LINE_WORDS
        assert (np.array_equal(after[lo:hi], new[lo:hi])
                or np.array_equal(after[lo:hi], old[lo:hi])), line


@settings(max_examples=30, deadline=None)
@given(dirty=st.lists(st.tuples(offsets, values), min_size=1, max_size=24),
       mode=st.sampled_from(FaultMode.ALL), seed=seeds)
def test_crash_outcome_is_deterministic_in_the_seed(dirty, mode, seed):
    images = []
    for _ in range(2):
        device = _device()
        device.set_fault_mode(mode, seed=seed)
        for offset, value in dirty:
            device.write(offset, value)
            device.clflush(offset)  # unfenced: feeds REORDERED too
        for offset, value in dirty:
            device.write(offset, value ^ 0x5A)  # dirty on top: feeds TORN
        device.crash()
        images.append(device.durable_image().copy())
    assert np.array_equal(images[0], images[1])


def test_unknown_mode_rejected():
    from repro.errors import IllegalArgumentException
    device = _device()
    with pytest.raises(IllegalArgumentException):
        device.set_fault_mode("lava")


def test_fence_clears_reorder_exposure():
    device = _device()
    device.set_fault_mode(FaultMode.REORDERED, seed=7)
    for offset in range(0, SIZE, LINE_WORDS):
        device.write(offset, 99)
        device.clflush(offset)
    device.fence()  # everything durable: nothing left to reorder
    device.crash()
    for offset in range(0, SIZE, LINE_WORDS):
        assert device.read(offset) == 99
