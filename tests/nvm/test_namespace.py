"""Unit tests for the external heap name manager."""

import numpy as np
import pytest

from repro.errors import HeapExistsError, HeapNotFoundError
from repro.nvm.namespace import NameManager


@pytest.fixture
def manager(tmp_path):
    return NameManager(tmp_path / "heaps")


def test_register_and_exists(manager):
    assert not manager.exists("Jimmy")
    manager.register("Jimmy", size_words=128, address_hint=0x1000)
    assert manager.exists("Jimmy")


def test_duplicate_register_rejected(manager):
    manager.register("Jimmy", 128, 0x1000)
    with pytest.raises(HeapExistsError):
        manager.register("Jimmy", 128, 0x1000)


def test_attributes(manager):
    manager.register("Jimmy", 128, 0x1000)
    attrs = manager.attributes("Jimmy")
    assert attrs["size_words"] == 128
    assert attrs["address_hint"] == 0x1000


def test_missing_heap_raises(manager):
    with pytest.raises(HeapNotFoundError):
        manager.attributes("nope")
    with pytest.raises(HeapNotFoundError):
        manager.remove("nope")


def test_image_roundtrip(manager):
    manager.register("h", 16, 0x10)
    image = np.arange(16, dtype=np.int64)
    manager.save_image("h", image)
    assert list(manager.load_image("h")) == list(range(16))


def test_load_without_save_gives_zeros(manager):
    manager.register("h", 16, 0x10)
    assert list(manager.load_image("h")) == [0] * 16


def test_remove_deletes_image(manager):
    manager.register("h", 16, 0x10)
    manager.save_image("h", np.ones(16, dtype=np.int64))
    manager.remove("h")
    assert not manager.exists("h")


def test_persistence_across_instances(tmp_path):
    root = tmp_path / "heaps"
    m1 = NameManager(root)
    m1.register("h", 16, 0x10)
    m1.save_image("h", np.full(16, 9, dtype=np.int64))
    m2 = NameManager(root)
    assert m2.exists("h")
    assert m2.attributes("h")["address_hint"] == 0x10
    assert list(m2.load_image("h")) == [9] * 16


def test_update_address_hint(manager):
    manager.register("h", 16, 0x10)
    manager.update_address_hint("h", 0x2000)
    assert manager.attributes("h")["address_hint"] == 0x2000


def test_names_sorted(manager):
    manager.register("b", 16, 1)
    manager.register("a", 16, 1)
    assert manager.names() == ["a", "b"]


def test_heap_names_with_odd_characters(manager):
    manager.register("my heap/1", 16, 1)
    manager.save_image("my heap/1", np.zeros(16, dtype=np.int64))
    assert manager.exists("my heap/1")
    assert list(manager.load_image("my heap/1")) == [0] * 16
