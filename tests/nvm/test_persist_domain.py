"""PersistDomain: epoch batching, dedup, strict mode, pinned counts."""

import numpy as np
import pytest

from repro.errors import OrderingViolation
from repro.nvm.clock import Clock
from repro.nvm.device import LINE_WORDS, FaultMode, NvmDevice
from repro.nvm.persist import PersistDomain


@pytest.fixture
def device():
    return NvmDevice(1 << 16, Clock())


@pytest.fixture
def domain(device):
    return PersistDomain(device, name="test")


class TestIntraEpochDedup:
    def test_duplicate_line_elided(self, device, domain):
        device.write(0, 1)
        assert domain.flush(0) == 1
        device.write(1, 2)  # same cache line
        assert domain.flush(1) == 0
        assert device.stats.flushes_deduped == 1
        assert domain.pending_lines == 1
        assert domain.commit_epoch() == 1
        assert device.stats.flushes == 1
        assert device.stats.fences == 1
        assert device.stats.epochs == 1

    def test_dedup_resets_at_epoch_boundary(self, device, domain):
        device.write(0, 1)
        domain.flush(0)
        domain.commit_epoch()
        device.write(0, 2)
        # A fresh epoch: the same line is NOT a duplicate anymore.
        assert domain.flush(0) == 1
        assert device.stats.flushes_deduped == 0
        domain.commit_epoch()
        assert device.stats.flushes == 2

    def test_contiguous_lines_coalesce_into_one_run(self, device, domain):
        for line in (3, 1, 2, 7):
            device.write(line * LINE_WORDS, line)
            domain.flush(line * LINE_WORDS)
        flush_calls = []
        inner = device.clflush
        device.clflush = lambda off, count=1, **kw: (
            flush_calls.append((off, count)), inner(off, count, **kw))
        domain.commit_epoch()
        del device.__dict__["clflush"]
        # Lines 1-3 coalesce into one sorted run, line 7 is its own.
        assert flush_calls == [(1 * LINE_WORDS, 3 * LINE_WORDS),
                               (7 * LINE_WORDS, LINE_WORDS)]
        assert device.stats.fences == 1

    def test_empty_epoch_is_free(self, device, domain):
        assert domain.commit_epoch() == 0
        assert device.stats.fences == 0
        assert device.stats.epochs == 0

    def test_disabled_domain_is_noop(self, device):
        domain = PersistDomain(device, enabled=False)
        device.write(0, 1)
        assert domain.flush(0) == 0
        domain.commit_epoch()
        domain.fence()
        assert device.stats.flushes == 0
        assert device.stats.fences == 0


class TestEpochBoundary:
    """Coalescing must never merge flushes across an epoch boundary."""

    def test_committed_epoch_survives_reordered_crash(self, device, domain):
        """Epoch 1's lines are final; epoch 2's pending lines are not.

        Under REORDERED, flushed-but-unfenced lines may revert — so if
        commit_epoch deferred its fence (merging epochs), some seed would
        revert epoch 1's line.  Pending lines of the open epoch must be
        lost (never flushed), proving no flush migrated backwards either.
        """
        for seed in range(40):
            dev = NvmDevice(1 << 12, Clock())
            dom = PersistDomain(dev, name="boundary")
            dev.set_fault_mode(FaultMode.REORDERED, seed=seed)
            dev.write(0, 11)
            dom.flush(0)
            dom.commit_epoch()           # epoch 1: fenced, final
            dev.write(LINE_WORDS, 22)    # epoch 2: enqueued, never committed
            dom.flush(LINE_WORDS)
            dev.crash()
            assert dev.read(0) == 11
            assert dev.read(LINE_WORDS) == 0

    def test_pending_lines_drain_before_the_fence(self, device, domain):
        """fence() must drain the queue, not fence around it."""
        device.write(0, 5)
        domain.flush(0)
        domain.fence()
        assert domain.pending_lines == 0
        assert device.line_state(0) == "clean"

    def test_fence_without_pending_still_fences(self, device, domain):
        # Drain point for flushes issued directly on the device.
        device.write(0, 5)
        device.clflush(0, asynchronous=True)
        domain.fence()
        assert device.stats.fences == 1
        assert device.durable_word(0) == 5


class TestStrictMode:
    def test_read_durable_raises_on_unenqueued_store(self, device):
        domain = PersistDomain(device, strict=True)
        device.write(0, 7)  # dirty, never enqueued
        with pytest.raises(OrderingViolation):
            domain.read_durable(0)

    def test_read_durable_raises_on_uncommitted_epoch(self, device):
        domain = PersistDomain(device, strict=True)
        device.write(0, 7)
        domain.flush(0)  # enqueued, epoch never committed
        with pytest.raises(OrderingViolation):
            domain.read_durable(0)

    def test_read_durable_raises_on_unfenced_flush(self, device):
        # Unfenced flushes are only revocable (and therefore tracked)
        # under the REORDERED fault model.
        device.set_fault_mode(FaultMode.REORDERED, seed=1)
        domain = PersistDomain(device, strict=True)
        device.write(0, 7)
        device.clflush(0, asynchronous=True)  # flushed, not fenced
        with pytest.raises(OrderingViolation):
            domain.read_durable(0)

    def test_read_durable_passes_after_commit(self, device):
        domain = PersistDomain(device, strict=True)
        device.write(0, 7)
        domain.flush(0)
        domain.commit_epoch()
        assert domain.read_durable(0) == 7

    def test_non_strict_read_does_not_raise(self, device, domain):
        device.write(0, 7)
        assert domain.read_durable(0) == 0  # stale, but no exception

    def test_assert_durable_names_the_domain(self, device):
        domain = PersistDomain(device, name="wal", strict=True)
        device.write(0, 7)
        with pytest.raises(OrderingViolation, match="wal"):
            domain.assert_durable(0)


class TestPinnedFlushCounts:
    """Exact flush/fence budgets for two core protocols.

    These pin the coalescing win: if a change regresses batching (or
    silently merges epochs), the counts move and this fails.
    """

    def test_wal_append_counts(self):
        from repro.h2.wal import WriteAheadLog

        dev = NvmDevice(1 << 16, Clock())
        wal = WriteAheadLog(dev, 1024, 4096)
        before = dev.stats.snapshot()
        wal.log_begin(1)
        delta = dev.stats.delta(before)
        # BEGIN is appended but unpublished: zero flush traffic.
        assert (delta.flushes, delta.fences) == (0, 0)
        before = dev.stats.snapshot()
        wal.log_write(1, 8000,
                      np.array([1, 2, 3], dtype=np.int64),
                      np.array([4, 5, 6], dtype=np.int64))
        delta = dev.stats.delta(before)
        # Payload epoch (BEGIN + WRITE share a line: 2 lines, 1 dedup)
        # then the counter epoch (1 line) — 3 flushes, 2 fences total.
        assert delta.flushes == 3
        assert delta.fences == 2
        assert delta.flushes_deduped == 1
        assert delta.epochs == 2

    def test_gc_region_evacuation_counts(self, tmp_path):
        from repro.api import Espresso
        from repro.runtime.klass import FieldKind, field

        jvm = Espresso(tmp_path)
        jvm.create_heap("test", 1 << 20)
        person = jvm.define_class("Person", [field("id", FieldKind.INT),
                                             field("name", FieldKind.REF)])
        keep = jvm.pnew(person)
        jvm.set_root("keep", keep)
        for _ in range(10):
            jvm.pnew(person).close()
        heap = jvm.heaps.heap("test")
        before = heap.device.stats.snapshot()
        result = jvm.persistent_gc()
        delta = heap.device.stats.delta(before)
        # 591/132 for the collection itself, +3/+3 for retiring the live
        # allocation buffer first (truncate top, clear the table entry,
        # move the scan hint — one single-word epoch each).
        assert (delta.flushes, delta.fences) == (594, 135)
        assert delta.epochs == 135
        # The GC result counts the collection alone (the buffers are
        # retired before it snapshots its baseline).
        assert (result.flushes, result.fences) == (591, 132)
        assert result.epochs == 132


class TestForkDedupIndependence:
    """fork() hands each GC worker its own pending set: no false dedup
    against the parent's open epoch, no entangled epoch drains, and the
    cross-domain re-flush stays an honest (elidable) clflush."""

    def test_fork_pending_sets_are_independent(self, device, domain):
        device.write(0, 1)
        domain.flush(0)
        child = domain.fork("gc-w0")
        device.write(1, 2)                     # same cache line
        assert child.flush(1) == 1             # no false dedup vs parent
        assert device.stats.flushes_deduped == 0
        assert domain.pending_lines == 1 and child.pending_lines == 1
        child.commit_epoch()
        # The child's commit drains only the child's epoch ...
        assert domain.pending_lines == 1
        domain.commit_epoch()
        # ... and each domain issued its own clflush: the cross-domain
        # redundancy is a second real flush, never a flushes_deduped.
        assert device.stats.flushes == 2
        assert device.stats.flushes_deduped == 0
        assert device.stats.epochs == 2

    def test_worker_forks_count_dedup_per_domain(self, device, domain):
        device.write(0, 1)
        domain.flush(0)
        workers = [domain.fork(f"gc-w{i}") for i in range(2)]
        for worker in workers:
            assert worker.flush(0) == 1        # first touch in THIS domain
            assert worker.flush(0) == 0        # local duplicate dedups
        assert device.stats.flushes_deduped == 2   # one per worker, not 4

    def test_certificate_elides_the_cross_domain_reflush(self, device,
                                                         domain):
        from repro.analysis.elision import FlushElisionCertificate

        domain.elision = FlushElisionCertificate(["test"])
        child = domain.fork("gc-w0")
        device.write(0, 5)
        domain.flush(0)
        child.flush(0)
        child.commit_epoch()      # the worker makes line 0 durable first
        domain.commit_epoch()     # the parent's flush is provably redundant
        assert device.stats.flushes == 1
        assert device.stats.flushes_elided == 1
        assert device.stats.fences == 1
        assert device.stats.fences_elided == 1
