"""Unit tests for DRAM/NVM devices and the address space."""

import numpy as np
import pytest

from repro.errors import IllegalArgumentException
from repro.nvm.clock import Clock
from repro.nvm.device import (
    LINE_WORDS,
    AddressSpace,
    DramDevice,
    NvmDevice,
)
from repro.nvm.latency import LatencyConfig


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def nvm(clock):
    return NvmDevice(1024, clock, name="test-nvm")


@pytest.fixture
def dram(clock):
    return DramDevice(1024, clock, name="test-dram")


class TestBasicAccess:
    def test_read_write_roundtrip(self, nvm):
        nvm.write(5, 12345)
        assert nvm.read(5) == 12345

    def test_initially_zero(self, nvm):
        assert nvm.read(100) == 0

    def test_negative_values_roundtrip(self, nvm):
        nvm.write(0, -42)
        assert nvm.read(0) == -42

    def test_block_roundtrip(self, nvm):
        data = np.arange(10, dtype=np.int64)
        nvm.write_block(32, data)
        assert list(nvm.read_block(32, 10)) == list(range(10))

    def test_fill(self, nvm):
        nvm.fill(0, 16, 7)
        assert all(nvm.read(i) == 7 for i in range(16))

    def test_out_of_bounds_read(self, nvm):
        with pytest.raises(IllegalArgumentException):
            nvm.read(1024)

    def test_out_of_bounds_block(self, nvm):
        with pytest.raises(IllegalArgumentException):
            nvm.write_block(1020, np.zeros(8, dtype=np.int64))

    def test_zero_size_rejected(self, clock):
        with pytest.raises(IllegalArgumentException):
            NvmDevice(0, clock)


class TestLatencyCharging:
    def test_nvm_write_slower_than_read(self, clock):
        lat = LatencyConfig(nvm_read_ns=10.0, nvm_write_ns=100.0)
        dev = NvmDevice(64, clock, latency=lat)
        dev.read(0)
        t_read = clock.now_ns
        dev.write(0, 1)
        assert clock.now_ns - t_read == 100.0
        assert t_read == 10.0

    def test_block_charges_per_word(self, clock):
        lat = LatencyConfig(nvm_write_ns=5.0)
        dev = NvmDevice(64, clock, latency=lat)
        dev.write_block(0, np.zeros(8, dtype=np.int64))
        assert clock.now_ns == 40.0

    def test_stats_counters(self, nvm):
        nvm.write(0, 1)
        nvm.read(0)
        nvm.clflush(0)
        nvm.fence()
        assert nvm.stats.writes == 1
        assert nvm.stats.reads == 1
        assert nvm.stats.flushes == 1
        assert nvm.stats.fences == 1


class TestCrashSemantics:
    def test_unflushed_write_lost_on_crash(self, nvm):
        nvm.write(3, 99)
        nvm.crash()
        assert nvm.read(3) == 0

    def test_flushed_write_survives_crash(self, nvm):
        nvm.write(3, 99)
        nvm.clflush(3)
        nvm.crash()
        assert nvm.read(3) == 99

    def test_flush_covers_whole_line(self, nvm):
        for i in range(LINE_WORDS):
            nvm.write(i, i + 1)
        nvm.clflush(0)  # one flush, same line
        nvm.crash()
        assert [nvm.read(i) for i in range(LINE_WORDS)] == list(range(1, LINE_WORDS + 1))

    def test_flush_does_not_cover_next_line(self, nvm):
        nvm.write(0, 1)
        nvm.write(LINE_WORDS, 2)  # next line
        nvm.clflush(0)
        nvm.crash()
        assert nvm.read(0) == 1
        assert nvm.read(LINE_WORDS) == 0

    def test_multi_line_flush(self, nvm):
        nvm.fill(0, LINE_WORDS * 3, 5)
        nvm.clflush(0, LINE_WORDS * 3)
        nvm.crash()
        assert nvm.read(LINE_WORDS * 3 - 1) == 5

    def test_persist_all_flushes_everything(self, nvm):
        nvm.write(1, 1)
        nvm.write(500, 2)
        assert nvm.dirty_line_count == 2
        nvm.persist_all()
        assert nvm.dirty_line_count == 0
        nvm.crash()
        assert nvm.read(1) == 1
        assert nvm.read(500) == 2

    def test_overwrite_after_flush_lost(self, nvm):
        nvm.write(0, 1)
        nvm.clflush(0)
        nvm.write(0, 2)
        nvm.crash()
        assert nvm.read(0) == 1

    def test_dram_loses_everything(self, dram):
        dram.write(0, 42)
        dram.crash()
        assert dram.read(0) == 0

    def test_durable_word_reads_durable_not_live(self, nvm):
        nvm.write(0, 7)
        assert nvm.durable_word(0) == 0
        nvm.clflush(0)
        assert nvm.durable_word(0) == 7


class TestImages:
    def test_image_roundtrip(self, clock):
        a = NvmDevice(128, clock)
        a.write(10, 77)
        a.persist_all()
        image = a.durable_image()
        b = NvmDevice(128, clock)
        b.load_image(image)
        assert b.read(10) == 77

    def test_image_excludes_unflushed(self, nvm):
        nvm.write(10, 77)
        image = nvm.durable_image()
        assert image[10] == 0

    def test_load_smaller_image_zero_fills(self, clock):
        small = NvmDevice(64, clock)
        small.write(1, 5)
        small.persist_all()
        big = NvmDevice(128, clock)
        big.write(100, 9)
        big.persist_all()
        big.load_image(small.durable_image())
        assert big.read(1) == 5
        assert big.read(100) == 0

    def test_load_oversized_image_rejected(self, clock):
        big = NvmDevice(128, clock)
        big.persist_all()
        small = NvmDevice(64, clock)
        with pytest.raises(IllegalArgumentException):
            small.load_image(big.durable_image())


class TestAddressSpace:
    def test_routing(self, clock):
        space = AddressSpace()
        d1 = DramDevice(64, clock, name="d1")
        d2 = NvmDevice(64, clock, name="d2")
        space.map(0x100, d1)
        space.map(0x1000, d2)
        space.write(0x100 + 3, 1)
        space.write(0x1000 + 3, 2)
        assert d1.read(3) == 1
        assert d2.read(3) == 2
        assert space.read(0x103) == 1

    def test_overlap_rejected(self, clock):
        space = AddressSpace()
        space.map(100, DramDevice(64, clock))
        with pytest.raises(IllegalArgumentException):
            space.map(163, DramDevice(64, clock))

    def test_adjacent_ok(self, clock):
        space = AddressSpace()
        space.map(100, DramDevice(64, clock))
        space.map(164, DramDevice(64, clock))  # no overlap

    def test_zero_base_rejected(self, clock):
        space = AddressSpace()
        with pytest.raises(IllegalArgumentException):
            space.map(0, DramDevice(64, clock))

    def test_unmapped_access_raises(self, clock):
        space = AddressSpace()
        with pytest.raises(IllegalArgumentException):
            space.read(5)

    def test_is_persistent(self, clock):
        space = AddressSpace()
        space.map(0x100, DramDevice(64, clock))
        space.map(0x1000, NvmDevice(64, clock))
        assert not space.is_persistent(0x100)
        assert space.is_persistent(0x1000)
        assert not space.is_persistent(0x999999)

    def test_find_free_base_skips_mappings(self, clock):
        space = AddressSpace()
        space.map(8, DramDevice(64, clock))
        base = space.find_free_base(64)
        assert base >= 72
        assert space.is_free(base, 64)

    def test_unmap(self, clock):
        space = AddressSpace()
        dev = DramDevice(64, clock)
        space.map(8, dev)
        space.unmap(dev)
        assert space.is_free(8, 64)

    def test_block_routing(self, clock):
        space = AddressSpace()
        dev = NvmDevice(64, clock)
        space.map(0x200, dev)
        space.write_block(0x200, np.array([1, 2, 3], dtype=np.int64))
        assert list(space.read_block(0x200, 3)) == [1, 2, 3]
