"""Unit tests for the crash-injection registry."""

import pytest

from repro.errors import SimulatedCrash
from repro.nvm.failpoints import FailpointRegistry


def test_unarmed_registry_is_inert():
    reg = FailpointRegistry()
    reg.hit("a")  # no trigger, no counting
    assert reg.count("a") == 0


def test_crash_on_nth_hit():
    reg = FailpointRegistry()
    reg.crash_on_hit("alloc", nth=3)
    reg.hit("alloc")
    reg.hit("alloc")
    with pytest.raises(SimulatedCrash):
        reg.hit("alloc")


def test_other_sites_do_not_trigger():
    reg = FailpointRegistry()
    reg.crash_on_hit("alloc", nth=1)
    reg.hit("gc")
    reg.hit("gc")
    assert reg.count("gc") == 2


def test_global_hit_counts_all_sites():
    reg = FailpointRegistry()
    reg.crash_on_global_hit(3)
    reg.hit("a")
    reg.hit("b")
    with pytest.raises(SimulatedCrash):
        reg.hit("c")


def test_clear_disarms():
    reg = FailpointRegistry()
    reg.crash_on_hit("a", nth=1)
    reg.clear()
    reg.hit("a")  # no crash
    assert reg.total_hits() == 0


def test_total_hits():
    reg = FailpointRegistry()
    reg.install(lambda site, count: None)
    reg.hit("a")
    reg.hit("b")
    reg.hit("a")
    assert reg.total_hits() == 3
    assert reg.count("a") == 2
