"""Unit tests for the crash-injection registry."""

import pytest

from repro.errors import SimulatedCrash
from repro.nvm.failpoints import DOCUMENTED_SITES, FailpointRegistry


def test_unarmed_registry_counts_but_never_triggers():
    reg = FailpointRegistry()
    reg.hit("a")  # no trigger installed: counting is still on
    assert reg.count("a") == 1
    assert reg.sites() == ("a",)


def test_crash_on_nth_hit():
    reg = FailpointRegistry()
    reg.crash_on_hit("alloc", nth=3)
    reg.hit("alloc")
    reg.hit("alloc")
    with pytest.raises(SimulatedCrash):
        reg.hit("alloc")


def test_trigger_counts_from_install_not_from_birth():
    """Passive hits before arming must not shift the injection point."""
    reg = FailpointRegistry()
    reg.hit("alloc")
    reg.hit("alloc")
    reg.crash_on_hit("alloc", nth=2)
    reg.hit("alloc")  # 1st since install: no crash
    with pytest.raises(SimulatedCrash):
        reg.hit("alloc")  # 2nd since install


def test_other_sites_do_not_trigger():
    reg = FailpointRegistry()
    reg.crash_on_hit("alloc", nth=1)
    reg.hit("gc")
    reg.hit("gc")
    assert reg.count("gc") == 2


def test_global_hit_counts_all_sites():
    reg = FailpointRegistry()
    reg.crash_on_global_hit(3)
    reg.hit("a")
    reg.hit("b")
    with pytest.raises(SimulatedCrash):
        reg.hit("c")


def test_clear_disarms():
    reg = FailpointRegistry()
    reg.crash_on_hit("a", nth=1)
    reg.clear()
    reg.hit("a")  # no crash; counting restarts from zero
    assert reg.total_hits() == 1


def test_reset_counts_keeps_trigger():
    reg = FailpointRegistry()
    reg.install(lambda site, count: None)
    reg.hit("a")
    reg.reset_counts()
    assert reg.total_hits() == 0
    assert reg._armed


def test_total_hits():
    reg = FailpointRegistry()
    reg.install(lambda site, count: None)
    reg.hit("a")
    reg.hit("b")
    reg.hit("a")
    assert reg.total_hits() == 3
    assert reg.count("a") == 2
    assert reg.sites() == ("a", "b")


def test_every_documented_site_fires_in_a_clean_gc_run(tmp_path):
    """Passive coverage audit: alloc + persistent GC touches every site."""
    from repro.api import Espresso
    from repro.runtime.klass import FieldKind, field

    jvm = Espresso(tmp_path / "h")
    node = jvm.define_class("Cov", [field("v", FieldKind.INT),
                                    field("next", FieldKind.REF)])
    jvm.create_heap("h", 256 * 1024, region_words=128)
    keep = None
    for i in range(60):
        n = jvm.pnew(node)
        jvm.set_field(n, "v", i)
        if i % 3 == 0:
            if keep is not None:
                jvm.set_field(n, "next", keep)
            keep = n
        else:
            n.close()  # garbage for the collector
    jvm.flush_reachable(keep)
    jvm.set_root("keep", keep)
    jvm.persistent_gc()

    fired = set(jvm.vm.failpoints.sites())
    missing = set(DOCUMENTED_SITES) - fired
    assert not missing, f"documented failpoint sites never hit: {sorted(missing)}"
