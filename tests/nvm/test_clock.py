"""Unit tests for the simulated clock."""

import pytest

from repro.nvm.clock import Clock


def test_charge_advances_time():
    clock = Clock()
    clock.charge(10.0)
    clock.charge(5.0)
    assert clock.now_ns == 15.0


def test_negative_charge_rejected():
    clock = Clock()
    with pytest.raises(ValueError):
        clock.charge(-1.0)


def test_default_category_is_other():
    clock = Clock()
    clock.charge(7.0)
    assert clock.breakdown() == {"other": 7.0}


def test_scope_attribution():
    clock = Clock()
    with clock.scope("transformation"):
        clock.charge(100.0)
        with clock.scope("database"):
            clock.charge(30.0)
        clock.charge(1.0)
    clock.charge(2.0)
    assert clock.breakdown() == {
        "transformation": 101.0,
        "database": 30.0,
        "other": 2.0,
    }


def test_explicit_category_overrides_scope():
    clock = Clock()
    with clock.scope("gc"):
        clock.charge(5.0, category="metadata")
    assert clock.breakdown() == {"metadata": 5.0}


def test_breakdown_since_reports_deltas_only():
    clock = Clock()
    with clock.scope("a"):
        clock.charge(10.0)
    snap = clock.breakdown()
    with clock.scope("a"):
        clock.charge(4.0)
    with clock.scope("b"):
        clock.charge(6.0)
    assert clock.breakdown_since(snap) == {"a": 4.0, "b": 6.0}


def test_elapsed_since():
    clock = Clock()
    clock.charge(3.0)
    mark = clock.now_ns
    clock.charge(9.0)
    assert clock.elapsed_since(mark) == 9.0


def test_charge_ops():
    clock = Clock()
    clock.charge_ops(10, 1.5)
    assert clock.now_ns == 15.0


def test_reset():
    clock = Clock()
    with clock.scope("x"):
        clock.charge(1.0)
    clock.reset()
    assert clock.now_ns == 0.0
    assert clock.breakdown() == {}
    assert clock.current_category == "other"


def test_scope_restored_after_exception():
    clock = Clock()
    with pytest.raises(RuntimeError):
        with clock.scope("boom"):
            raise RuntimeError
    assert clock.current_category == "other"
