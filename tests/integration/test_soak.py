"""Soak test: mixed randomized workload across both GCs and two heaps.

A seeded random program interleaves DRAM and PJH allocation, field stores
across all four space-pair directions, explicit collections of both kinds,
crashes + reloads — and checks a model of the surviving rooted data plus
fsck structural validity at every reload.
"""

import random

from repro.api import Espresso
from repro.runtime.dram_heap import HeapConfig
from repro.runtime.klass import FieldKind, field
from repro.tools.fsck import fsck_heap

SEED = 20260706
ROUNDS = 4
STEPS_PER_ROUND = 180


def test_soak_mixed_workload(tmp_path):
    rng = random.Random(SEED)
    heap_dir = tmp_path / "soak"
    jvm = Espresso(heap_dir,
                   heap_config=HeapConfig(eden_words=2048,
                                          survivor_words=1024,
                                          old_words=32768,
                                          region_words=512))
    node = jvm.define_class("SoakNode", [field("v", FieldKind.INT),
                                         field("ref", FieldKind.REF)])
    jvm.create_heap("soak", 4 * 1024 * 1024, region_words=256)

    # Model: root name -> expected int value (only flushed data counts).
    model = {}
    root_counter = 0

    for round_no in range(ROUNDS):
        live_dram = []
        for step in range(STEPS_PER_ROUND):
            action = rng.random()
            if action < 0.35:
                # Persistent rooted value, flushed: must survive everything.
                obj = jvm.pnew(node)
                value = rng.randint(0, 10**9)
                jvm.set_field(obj, "v", value)
                jvm.flush_object(obj)
                name = f"r{root_counter}"
                root_counter += 1
                jvm.set_root(name, obj)
                model[name] = value
            elif action < 0.55:
                jvm.pnew(node).close()  # persistent garbage
            elif action < 0.8:
                d = jvm.new(node)
                jvm.set_field(d, "v", rng.randint(0, 100))
                if live_dram and rng.random() < 0.5:
                    jvm.set_field(d, "ref", rng.choice(live_dram))
                if rng.random() < 0.3:
                    live_dram.append(d)
            elif action < 0.87:
                # Cross-space pointers in both directions.
                p = jvm.pnew(node)
                d = jvm.new(node)
                jvm.set_field(p, "ref", d)   # NVM -> DRAM
                jvm.set_field(d, "ref", p)   # DRAM -> NVM
                live_dram.append(d)
            elif action < 0.93:
                jvm.vm.young_gc()
            elif action < 0.97:
                jvm.persistent_gc()
            else:
                jvm.system_gc()

        # End of round: either a crash or a graceful shutdown, then reload.
        live_dram.clear()
        if rng.random() < 0.5:
            jvm.crash()
        else:
            jvm.shutdown()
        jvm = Espresso(heap_dir,
                       heap_config=HeapConfig(eden_words=2048,
                                              survivor_words=1024,
                                              old_words=32768,
                                              region_words=512))
        node = jvm.define_class("SoakNode", [field("v", FieldKind.INT),
                                             field("ref", FieldKind.REF)])
        heap = jvm.load_heap("soak")
        structure = fsck_heap(heap)
        assert structure.clean, structure.errors
        for name, value in model.items():
            handle = jvm.get_root(name)
            assert handle is not None, f"root {name} lost in round {round_no}"
            assert jvm.get_field(handle, "v") == value

    assert len(model) > 100  # the soak actually exercised things
