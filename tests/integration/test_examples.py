"""Smoke tests: every example script runs end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(script: str, *args) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart_create_then_reload(tmp_path):
    heap_dir = str(tmp_path / "heaps")
    first = run_example("quickstart.py", heap_dir)
    assert "creating 'Jimmy'" in first
    second = run_example("quickstart.py", heap_dir)
    assert "visit #1" in second
    third = run_example("quickstart.py", heap_dir)
    assert "visit #2" in third  # the flushed increment survived


def test_crash_recovery_example():
    out = run_example("crash_recovery.py")
    assert "CRASH mid-collection" in out
    assert "recovery ran: True" in out
    assert "All lists intact" in out


def test_kv_store_example(tmp_path):
    heap_dir = str(tmp_path / "kv")
    run_example("persistent_kv_store.py", heap_dir, "set", "coffee", "3")
    assert run_example("persistent_kv_store.py", heap_dir,
                       "incr", "coffee").strip() == "4"
    assert run_example("persistent_kv_store.py", heap_dir,
                       "get", "coffee").strip() == "4"
    listing = run_example("persistent_kv_store.py", heap_dir, "list")
    assert "coffee = 4" in listing


def test_database_app_example():
    out = run_example("database_app.py")
    assert "H2-JPA" in out and "H2-PJO" in out
    assert "transformation   0.000" in out  # the PJO line
    assert "balance=701" in out


def test_porting_example():
    out = run_example("porting_from_pcj.py")
    assert "PCJ" in out and "Espresso" in out
    assert "speedup" in out


def test_tpcc_example():
    out = run_example("tpcc_demo.py")
    assert "business state identical" in out
    assert "post-restart snapshot matches" in out
