"""Tests for the PJH consistency checker, including corruption detection."""

import pytest

from repro.api import Espresso
from repro.runtime import layout
from repro.runtime.klass import FieldKind, field
from repro.tools.fsck import fsck, fsck_heap, main


@pytest.fixture
def populated(tmp_path):
    heap_dir = tmp_path / "heaps"
    jvm = Espresso(heap_dir)
    node = jvm.define_class("FNode", [field("v", FieldKind.INT),
                                      field("next", FieldKind.REF)])
    jvm.create_heap("h", 256 * 1024)
    prev = None
    for i in range(10):
        n = jvm.pnew(node)
        jvm.set_field(n, "v", i)
        if prev is not None:
            jvm.set_field(n, "next", prev)
        prev = n
    jvm.flush_reachable(prev)
    jvm.set_root("head", prev)
    return heap_dir, jvm


def test_clean_heap(populated):
    heap_dir, jvm = populated
    report = fsck_heap(jvm.heaps.heap("h"))
    assert report.clean, report.errors
    assert report.objects == 10
    assert report.references == 9


def test_clean_after_gc(populated):
    heap_dir, jvm = populated
    node = jvm.vm.metaspace.lookup("FNode")
    for _ in range(30):
        jvm.pnew(node).close()
    jvm.persistent_gc()
    report = fsck_heap(jvm.heaps.heap("h"))
    assert report.clean, report.errors
    assert report.objects == 10  # garbage gone


def test_clean_after_restart(populated):
    heap_dir, jvm = populated
    jvm.shutdown()
    report = fsck(heap_dir, "h")
    assert report.clean, report.errors


def test_detects_corrupt_klass_pointer(populated):
    heap_dir, jvm = populated
    heap = jvm.heaps.heap("h")
    first = next(iter(heap.walk()))
    jvm.vm.memory.write(first + layout.KLASS_WORD_OFFSET, 0xDEAD)
    report = fsck_heap(heap)
    assert not report.clean
    assert "unresolvable klass pointer" in report.errors[0]


def test_detects_dangling_internal_reference(populated):
    heap_dir, jvm = populated
    heap = jvm.heaps.heap("h")
    head = jvm.get_root("head")
    klass = jvm.vm.klass_of(head)
    slot = head.address + klass.field_offset("next")
    # Point mid-object: inside the heap but not an object start.
    jvm.vm.memory.write(slot, head.address + 1)
    report = fsck_heap(heap)
    assert any("not at an object start" in e for e in report.errors)


def test_detects_corrupt_root_entry(populated):
    heap_dir, jvm = populated
    heap = jvm.heaps.heap("h")
    from repro.core.name_table import ENTRY_TYPE_ROOT
    index = heap.name_table.entry_index(ENTRY_TYPE_ROOT, "head")
    slot = heap.name_table.value_slot_address(index)
    jvm.vm.memory.write(slot, heap.data_space.base + 3)
    report = fsck_heap(heap)
    assert any("root 'head'" in e for e in report.errors)


def test_out_pointers_are_counted_not_errors(populated):
    heap_dir, jvm = populated
    node = jvm.vm.metaspace.lookup("FNode")
    holder = jvm.pnew(node)
    jvm.set_field(holder, "next", jvm.new(node))  # NVM -> DRAM
    report = fsck_heap(jvm.heaps.heap("h"))
    assert report.clean
    assert report.out_pointers == 1


def test_cli(populated, capsys):
    heap_dir, jvm = populated
    jvm.shutdown()
    assert main([str(heap_dir), "h"]) == 0
    assert "clean" in capsys.readouterr().out
    assert main([]) == 1


def test_fsck_after_crash_recovery(tmp_path):
    """fsck is the structural half of the recovery guarantee."""
    from repro.errors import SimulatedCrash
    heap_dir = tmp_path / "h"
    jvm = Espresso(heap_dir)
    node = jvm.define_class("GNode", [field("v", FieldKind.INT),
                                      field("next", FieldKind.REF)])
    jvm.create_heap("h", 256 * 1024, region_words=128)
    keep = None
    for i in range(40):
        n = jvm.pnew(node)
        jvm.set_field(n, "v", i)
        if i % 4 == 0:
            if keep is not None:
                jvm.set_field(n, "next", keep)
            keep = n
        else:
            n.close()
    jvm.flush_reachable(keep)
    jvm.set_root("keep", keep)
    jvm.vm.failpoints.crash_on_hit("gc.compact.dest_persisted", 1)
    with pytest.raises(SimulatedCrash):
        jvm.persistent_gc()
    jvm.vm.failpoints.clear()
    jvm.crash()

    report = fsck(heap_dir, "h")  # loads + recovers + checks structure
    assert report.clean, report.errors


def test_cli_json_clean(populated, capsys):
    import json
    heap_dir, jvm = populated
    jvm.shutdown()
    assert main(["--json", str(heap_dir), "h"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is True
    assert payload["objects"] == 10
    assert payload["errors"] == []


def test_cli_json_reports_unloadable_image(populated, capsys):
    import json
    heap_dir, jvm = populated
    jvm.shutdown()
    image = jvm.heaps.names.load_image("h")
    image[0] ^= 0xFF  # break the magic
    jvm.heaps.names.save_image("h", image)
    assert main(["--json", str(heap_dir), "h"]) == 2
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert any("metadata.magic" in e for e in payload["errors"])


def test_report_to_dict_round_trips(populated):
    heap_dir, jvm = populated
    report = fsck_heap(jvm.heaps.heap("h"))
    data = report.to_dict()
    assert data["clean"] and data["objects"] == report.objects
    assert data["references"] == report.references
