"""Tests for the heapdump inspection tool."""

import pytest

from repro.api import Espresso
from repro.runtime.klass import FieldKind, field
from repro.tools.heapdump import describe_heap, dump_roots, list_heaps, main


@pytest.fixture
def populated(tmp_path):
    heap_dir = tmp_path / "heaps"
    jvm = Espresso(heap_dir)
    person = jvm.define_class("Person", [field("id", FieldKind.INT),
                                         field("name", FieldKind.REF)])
    jvm.create_heap("demo", 512 * 1024)
    p = jvm.pnew(person)
    jvm.set_field(p, "id", 7)
    jvm.set_field(p, "name", jvm.pnew_string("ada"))
    jvm.set_root("who", p)
    arr = jvm.pnew_array(FieldKind.INT, 12)
    jvm.set_root("numbers", arr)
    jvm.shutdown()
    return heap_dir


def test_list_heaps(populated):
    lines = list_heaps(populated)
    assert len(lines) == 1
    assert lines[0].startswith("demo:")
    assert "KiB" in lines[0]


def test_describe_heap(populated):
    text = "\n".join(describe_heap(populated, "demo"))
    assert "objects: " in text
    assert "Person" in text
    assert "roots: 2" in text


def test_dump_roots(populated):
    text = "\n".join(dump_roots(populated, "demo"))
    assert "who -> Person@" in text
    assert ".id = 7" in text
    assert ".name = 'ada'" in text
    assert "numbers -> [J@" in text
    assert "(length 12)" in text


def test_cli_entrypoint(populated, capsys):
    assert main([str(populated)]) == 0
    assert "demo:" in capsys.readouterr().out
    assert main([str(populated), "demo"]) == 0
    assert "objects" in capsys.readouterr().out
    assert main([str(populated), "demo", "--roots"]) == 0
    assert "who" in capsys.readouterr().out
    assert main([]) == 1
