"""Cross-subsystem integration tests.

These exercise several layers at once: PJO entities under crash + restart,
DRAM-and-PJH GC interplay under memory pressure, multiple heaps, the
@persistent_type annotation flowing into type-based safety, and a mixed
application using both the fine-grained and coarse-grained models — the
"unified persistence" requirement of paper §2.3.
"""

import pytest

from repro.api import Espresso
from repro.core.safety import (SafetyLevel, is_marked_persistent,
                               persistent_type)
from repro.errors import SimulatedCrash, UnsafePointerError
from repro.jpab.model import BasicPerson
from repro.pjhlib import PjhHashmap, PjhLong, PjhTransaction
from repro.pjo import PjoEntityManager
from repro.runtime.dram_heap import HeapConfig
from repro.runtime.klass import FieldKind, field


class TestPjoCrashMidCommit:
    def test_torn_pjo_commit_rolls_back(self, tmp_path):
        """Crash in the middle of a PJO transaction: the backend undo log
        rolls the partial update back on reload."""
        heap_dir = tmp_path / "h"
        jvm = Espresso(heap_dir)
        jvm.create_heap("jpab", 8 * 1024 * 1024)
        em = PjoEntityManager(jvm)
        em.create_schema([BasicPerson])
        tx = em.get_transaction()
        tx.begin()
        em.persist(BasicPerson(1, "Ada", "L", "+44"))
        tx.commit()
        # Preserve the backend's undo log across the restart.
        jvm.set_root("txn_entries", em.backend.txn._entries)
        jvm.set_root("txn_meta", em.backend.txn._meta)

        # Tear an update: begin, modify one field, never commit.
        tx.begin()
        p = em.find(BasicPerson, 1)
        p.phone = "+99"
        em._flush()  # field shipped to the backend, tx left open
        jvm.crash()

        jvm2 = Espresso(heap_dir)
        jvm2.load_heap("jpab")
        txn = PjhTransaction.__new__(PjhTransaction)
        txn.jvm, txn.vm = jvm2, jvm2.vm
        txn._entries = jvm2.get_root("txn_entries")
        txn._meta = jvm2.get_root("txn_meta")
        txn._heap = jvm2.vm.service_of(txn._entries.address)
        txn.capacity = jvm2.array_length(txn._entries) // 2
        txn._count = 0
        txn._depth = 0
        assert txn.recover()  # rolls the torn field write back
        em2 = PjoEntityManager(jvm2)
        assert em2.find(BasicPerson, 1).phone == "+44"


class TestGcInterplay:
    def test_dram_pressure_with_live_pjh_references(self, tmp_path):
        """Heavy DRAM churn with PJH objects referencing DRAM and vice
        versa: both collectors must cooperate through the remembered sets."""
        jvm = Espresso(tmp_path / "h",
                       heap_config=HeapConfig(eden_words=1024,
                                              survivor_words=512,
                                              old_words=8192,
                                              region_words=512))
        node = jvm.define_class("N", [field("v", FieldKind.INT),
                                      field("ref", FieldKind.REF)])
        jvm.create_heap("x", 1024 * 1024)
        anchors = []
        for i in range(30):
            p = jvm.pnew(node)           # persistent holder
            d = jvm.new(node)            # volatile target
            jvm.set_field(d, "v", i)
            jvm.set_field(p, "ref", d)   # NVM -> DRAM pointer
            anchors.append(p)
            d.close()
        # Churn DRAM hard: many young + full collections.
        for _ in range(800):
            jvm.new(node).close()
        jvm.system_gc()
        for _ in range(400):
            jvm.new(node).close()
        # PJH GC moves the holders too.
        jvm.persistent_gc()
        for i, p in enumerate(anchors):
            assert jvm.get_field(jvm.get_field(p, "ref"), "v") == i

    def test_volatile_target_kept_alive_only_by_pjh(self, tmp_path):
        jvm = Espresso(tmp_path / "h")
        node = jvm.define_class("N2", [field("v", FieldKind.INT),
                                       field("ref", FieldKind.REF)])
        jvm.create_heap("x", 512 * 1024)
        holder = jvm.pnew(node)
        target = jvm.new(node)
        jvm.set_field(target, "v", 123)
        jvm.set_field(holder, "ref", target)
        target.close()  # only the NVM->DRAM pointer keeps it alive
        jvm.system_gc()
        jvm.system_gc()
        assert jvm.get_field(jvm.get_field(holder, "ref"), "v") == 123


class TestMultipleHeaps:
    def test_cross_heap_references(self, tmp_path):
        """Paper §3.3: users may create multiple PJH instances.  References
        across heaps behave like NVM->NVM pointers."""
        jvm = Espresso(tmp_path / "h")
        node = jvm.define_class("X", [field("v", FieldKind.INT),
                                      field("ref", FieldKind.REF)])
        jvm.create_heap("a", 256 * 1024)
        jvm.create_heap("b", 256 * 1024)
        in_a = jvm.pnew(node, heap="a")
        in_b = jvm.pnew(node, heap="b")
        jvm.set_field(in_b, "v", 7)
        jvm.set_field(in_a, "ref", in_b)
        jvm.flush_object(in_a)
        jvm.flush_object(in_b)
        jvm.set_root("a_root", in_a, heap="a")
        assert jvm.get_field(jvm.get_field(in_a, "ref"), "v") == 7
        # GC of heap a must not disturb the cross-heap pointer target.
        jvm.persistent_gc("a")
        assert jvm.get_field(jvm.get_field(jvm.get_root("a_root"), "ref"),
                             "v") == 7

    def test_heaps_unload_independently(self, tmp_path):
        jvm = Espresso(tmp_path / "h")
        jvm.create_heap("a", 256 * 1024)
        jvm.create_heap("b", 256 * 1024)
        jvm.heaps.unload_heap("a")
        assert jvm.heaps.mounted_names() == ["b"]
        jvm.load_heap("a")
        assert jvm.heaps.mounted_names() == ["a", "b"]


class TestPersistentTypeAnnotation:
    def test_annotation_feeds_type_based_safety(self, tmp_path):
        jvm = Espresso(tmp_path / "h")
        safe = jvm.define_class("SafeType", [field("v", FieldKind.INT)])
        unsafe = jvm.define_class("UnsafeType")
        jvm.persistent_type("SafeType")
        jvm.create_heap("t", 256 * 1024, safety=SafetyLevel.TYPE_BASED)
        obj = jvm.pnew(safe)  # annotated: allowed
        assert jvm.vm.in_pjh(obj.address)
        with pytest.raises(UnsafePointerError):
            jvm.pnew(unsafe)

    def test_annotations_are_per_session(self, tmp_path):
        """One session's @persistent_type never leaks into another."""
        a = Espresso(tmp_path / "a")
        b = Espresso(tmp_path / "b")
        for jvm in (a, b):
            jvm.define_class("SafeType", [field("v", FieldKind.INT)])
            jvm.create_heap("t", 256 * 1024, safety=SafetyLevel.TYPE_BASED)
        a.persistent_type("SafeType")
        assert a.vm.in_pjh(a.pnew("SafeType").address)
        with pytest.raises(UnsafePointerError):
            b.pnew("SafeType")

    def test_annotation_survives_restart(self, tmp_path):
        jvm = Espresso(tmp_path / "h")
        jvm.define_class("SafeType", [field("v", FieldKind.INT)])
        jvm.persistent_type("SafeType")
        jvm.create_heap("t", 256 * 1024, safety=SafetyLevel.TYPE_BASED)
        jvm2 = jvm.restart()
        jvm2.define_class("SafeType", [field("v", FieldKind.INT)])
        jvm2.load_heap("t", safety=SafetyLevel.TYPE_BASED)
        assert jvm2.vm.in_pjh(jvm2.pnew("SafeType").address)

    def test_decorator_form(self, tmp_path):
        @persistent_type
        class Decorated:
            pass
        assert is_marked_persistent(Decorated)

        jvm = Espresso(tmp_path / "h")
        jvm.persistent_type(Decorated)
        assert "Decorated" in jvm.config.persistent_types

    def test_string_form_requires_a_session(self):
        with pytest.raises(TypeError):
            persistent_type("Unbound")


class TestUnifiedPersistence:
    def test_fine_and_coarse_grained_in_one_app(self, tmp_path):
        """§2.3's requirement: one framework, both models, one heap."""
        heap_dir = tmp_path / "h"
        jvm = Espresso(heap_dir)
        jvm.create_heap("app", 8 * 1024 * 1024)
        # Coarse-grained: entities through the PJO EntityManager.
        em = PjoEntityManager(jvm)
        em.create_schema([BasicPerson])
        tx = em.get_transaction()
        tx.begin()
        em.persist(BasicPerson(1, "Ada", "L", "+44"))
        tx.commit()
        # Fine-grained: a PJH hashmap in the same heap.
        txn = PjhTransaction(jvm)
        counters = PjhHashmap(jvm, txn)
        counters.put(PjhLong(jvm, txn, 1), PjhLong(jvm, txn, 100))
        jvm.set_root("counters", counters.h)
        jvm.shutdown()

        jvm2 = Espresso(heap_dir)
        jvm2.load_heap("app")
        em2 = PjoEntityManager(jvm2)
        assert em2.find(BasicPerson, 1).first_name == "Ada"
        txn2 = PjhTransaction(jvm2)
        counters2 = PjhHashmap(jvm2, txn2, handle=jvm2.get_root("counters"))
        assert jvm2.get_field(counters2.get_raw(1), "value") == 100
