"""Unit tests for the observability core (repro.obs)."""

import json

import pytest

from repro.nvm.clock import Clock
from repro.obs import (
    NULL_OBS,
    MetricsRegistry,
    NullObservatory,
    Observatory,
    Tracer,
    render_report,
)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
def test_counters_accumulate():
    reg = MetricsRegistry()
    reg.inc("a")
    reg.inc("a", 4)
    assert reg.counter("a") == 5
    assert reg.counter("missing") == 0


def test_gauge_records_value_and_timestamp():
    clock = Clock()
    reg = MetricsRegistry(clock)
    clock.charge(100)
    reg.set_gauge("depth", 7)
    assert reg.gauge("depth") == 7
    assert reg.as_dict()["gauges"]["depth"]["updated_ns"] == clock.now_ns


def test_histogram_statistics():
    reg = MetricsRegistry()
    for v in (10, 20, 30):
        reg.observe("pause", v)
    h = reg.histogram("pause")
    assert (h.count, h.total, h.min, h.max) == (3, 60, 10, 30)
    assert h.mean == pytest.approx(20)


def test_counters_since_snapshot():
    reg = MetricsRegistry()
    reg.inc("x", 2)
    snap = reg.counters_snapshot()
    reg.inc("x", 3)
    reg.inc("y")
    assert reg.counters_since(snap) == {"x": 3, "y": 1}


def test_registry_as_dict_is_json_safe():
    reg = MetricsRegistry(Clock())
    reg.inc("c")
    reg.set_gauge("g", 1.5)
    reg.observe("h", 2)
    json.dumps(reg.as_dict())


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
def test_spans_nest_and_attribute_time():
    clock = Clock()
    tracer = Tracer(clock)
    with tracer.span("outer"):
        clock.charge(100)
        with tracer.span("inner"):
            clock.charge(30)
    roots = tracer.timeline()
    assert [s.name for s in roots] == ["outer"]
    outer = roots[0]
    assert outer.duration_ns == 130
    assert [c.name for c in outer.children] == ["inner"]
    assert outer.children[0].duration_ns == 30
    assert outer.self_ns == 100


def test_span_totals_aggregate_across_instances():
    clock = Clock()
    tracer = Tracer(clock)
    for _ in range(3):
        with tracer.span("op"):
            clock.charge(10)
    totals = tracer.span_totals()
    assert totals["op"]["count"] == 3
    assert totals["op"]["total_ns"] == 30


def test_span_records_error_name():
    tracer = Tracer(Clock())
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("no")
    assert tracer.timeline()[0].error == "ValueError"


def test_timeline_roots_are_bounded():
    clock = Clock()
    tracer = Tracer(clock, max_roots=4)
    for i in range(10):
        with tracer.span(f"s{i}"):
            clock.charge(1)
    roots = tracer.timeline()
    assert len(roots) == 4
    assert [s.name for s in roots] == ["s6", "s7", "s8", "s9"]
    # ...but totals keep counting past the bound
    assert sum(v["count"] for v in tracer.span_totals().values()) == 10


def test_render_timeline_shows_nesting_and_attrs():
    clock = Clock()
    obs = Observatory(clock)
    with obs.span("gc.persistent", heap="h"):
        clock.charge(5)
        with obs.span("gc.mark"):
            clock.charge(2)
    text = obs.render_timeline()
    assert "gc.persistent" in text
    assert "  gc.mark" in text
    assert "heap=h" in text


# ----------------------------------------------------------------------
# Observatory
# ----------------------------------------------------------------------
def test_bind_clock_is_last_wins():
    obs = Observatory()
    c1, c2 = Clock(), Clock()
    obs.bind_clock(c1)
    obs.bind_clock(c2)
    assert obs.clock is c2
    assert obs.metrics.clock is c2
    assert obs.tracer.clock is c2


def test_phase_since_reports_deltas_only():
    clock = Clock()
    obs = Observatory(clock)
    with obs.span("a"):
        clock.charge(10)
    obs.inc("n", 2)
    snap = obs.phase_snapshot()
    with obs.span("a"):
        clock.charge(7)
    with obs.span("b"):
        clock.charge(1)
    obs.inc("n")
    delta = obs.phase_since(snap)
    assert delta["spans"]["a"] == {"count": 1, "total_ns": 7}
    assert delta["spans"]["b"]["count"] == 1
    assert delta["counters"] == {"n": 1}


def test_as_dict_round_trips_through_json():
    clock = Clock()
    obs = Observatory(clock)
    with obs.span("x", k=1):
        clock.charge(3)
    obs.inc("c")
    obs.observe("h", 5)
    d = json.loads(json.dumps(obs.as_dict(include_timeline=True)))
    assert d["spans"]["x"]["count"] == 1
    assert d["timeline"][0]["name"] == "x"


def test_report_renders_tables():
    clock = Clock()
    obs = Observatory(clock)
    with obs.span("x"):
        clock.charge(3)
    obs.inc("c", 2)
    text = obs.report()
    assert "span" in text and "x" in text
    assert "counter" in text and "c" in text


def test_render_report_handles_phase_delta_shape():
    text = render_report({"spans": {"a": {"count": 2, "total_ns": 10.0}},
                          "counters": {"n": 3}})
    assert "a" in text and "n" in text


# ----------------------------------------------------------------------
# Null observatory: the zero-cost default
# ----------------------------------------------------------------------
def test_null_obs_is_shared_and_disabled():
    assert NULL_OBS.enabled is False
    assert isinstance(NULL_OBS, NullObservatory)


def test_null_obs_span_yields_none():
    with NULL_OBS.span("anything", k=1) as span:
        assert span is None
    assert NULL_OBS.span("a") is NULL_OBS.span("b")  # shared handle


def test_null_obs_records_nothing():
    NULL_OBS.inc("c", 5)
    NULL_OBS.set_gauge("g", 1)
    NULL_OBS.observe("h", 2)
    NULL_OBS.register_device("d", object())
    NULL_OBS.bind_clock(Clock())
    assert NULL_OBS.metrics.as_dict() == {"counters": {}, "gauges": {},
                                          "histograms": {}}
    assert NULL_OBS.tracer.timeline() == []
    assert NULL_OBS.device_stats() == {}
    assert NULL_OBS.clock is None


def test_tracing_never_charges_the_clock():
    clock = Clock()
    obs = Observatory(clock)
    before = clock.now_ns
    with obs.span("a", attr=1):
        with obs.span("b"):
            pass
    obs.inc("c")
    obs.observe("h", 1)
    assert clock.now_ns == before
