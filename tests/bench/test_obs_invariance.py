"""Tracing must not perturb the measurement.

The Observatory reads the simulated clock without charging it and reads
device counters without issuing device traffic, so a traced bench run
must produce byte-identical timings and flush/fence counts to an
untraced one.  Pinned here on fig17 (both providers, all four CRUD
operations) and on a traced TPC-C run.
"""

from repro.api import Espresso
from repro.bench.fig17_basictest_breakdown import run as run_fig17
from repro.obs import Observatory
from repro.runtime.klass import FieldKind, field
from repro.tools.fsck import fsck_heap
from repro.tpcc import run_tpcc


def test_fig17_identical_with_and_without_tracing(tmp_path):
    baseline = run_fig17(count=15, heap_dir=tmp_path / "plain")
    traced = run_fig17(count=15, heap_dir=tmp_path / "traced", trace=True)
    # Simulated per-phase times: identical to the nanosecond.
    assert traced.cells == baseline.cells
    # Device flush/fence/dedup/epoch counts: identical.
    assert traced.nvm == baseline.nvm
    # ...and the traced run actually recorded something.
    assert baseline.obs == {}
    assert traced.obs
    pjo_create = traced.obs[("H2-PJO", "Create")]
    assert pjo_create["spans"]["jpab.create"]["count"] == 1
    assert pjo_create["counters"]["pjh.alloc.objects"] > 0


def test_tpcc_identical_with_and_without_tracing(tmp_path):
    baseline = run_tpcc("pjo", transactions=20, heap_dir=tmp_path / "plain")
    traced = run_tpcc("pjo", transactions=20, heap_dir=tmp_path / "traced",
                      observatory=Observatory())
    assert traced.sim_ns == baseline.sim_ns
    assert traced.nvm == baseline.nvm
    assert traced.snapshot == baseline.snapshot
    assert baseline.obs == {}
    assert traced.obs["transactions"]["spans"]["tpcc.transactions"]["count"] \
        == 1


def _collect_with_workers(root, workers, observatory=None):
    """Build a fixed heap, run one persistent GC with *workers* workers."""
    jvm = Espresso(root, gc_workers=workers, observatory=observatory)
    node = jvm.define_class("Node", [field("v", FieldKind.INT),
                                     field("next", FieldKind.REF)])
    jvm.create_heap("h", 512 * 1024)
    keep = jvm.pnew_array(node, 64)
    for i in range(256):
        n = jvm.pnew(node)
        jvm.set_field(n, "v", i)
        if i % 4 == 0:
            jvm.array_set(keep, i // 4, n)    # survivor
    jvm.flush_reachable(keep)
    jvm.set_root("keep", keep)
    result = jvm.persistent_gc("h")
    heap = jvm.heaps.heap("h")
    assert fsck_heap(heap).clean
    return jvm, heap, result


def test_gc_worker_count_never_changes_the_durable_image(tmp_path):
    """gc_workers is a *timing* knob: the durable heap image after a full
    collection is byte-identical for 1 and 8 workers, and fsck-clean."""
    images = {}
    for workers in (1, 8):
        _jvm, heap, result = _collect_with_workers(
            tmp_path / f"w{workers}", workers)
        assert result.stats.moved_objects > 0
        images[workers] = heap.device.durable_image().tobytes()
    assert images[1] == images[8]


def test_parallel_gc_identical_with_and_without_tracing(tmp_path):
    """The invariance contract holds per worker count: tracing a parallel
    collection must not change its simulated timing or device traffic."""
    for workers in (1, 8):
        plain_jvm, plain_heap, _ = _collect_with_workers(
            tmp_path / f"plain{workers}", workers)
        traced_jvm, traced_heap, _ = _collect_with_workers(
            tmp_path / f"traced{workers}", workers, observatory=Observatory())
        assert traced_jvm.clock.now_ns == plain_jvm.clock.now_ns
        assert traced_heap.device.stats.flushes \
            == plain_heap.device.stats.flushes
        assert traced_heap.device.stats.fences \
            == plain_heap.device.stats.fences
        assert traced_heap.device.durable_image().tobytes() \
            == plain_heap.device.durable_image().tobytes()
        if workers > 1:
            workers_seen = set()

            def walk(span):
                if span.name == "gc.worker":
                    workers_seen.add(span.attrs["worker"])
                for child in span.children:
                    walk(child)

            for root in traced_jvm.obs.tracer.timeline():
                walk(root)
            assert workers_seen == set(range(workers))
