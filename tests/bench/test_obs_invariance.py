"""Tracing must not perturb the measurement.

The Observatory reads the simulated clock without charging it and reads
device counters without issuing device traffic, so a traced bench run
must produce byte-identical timings and flush/fence counts to an
untraced one.  Pinned here on fig17 (both providers, all four CRUD
operations) and on a traced TPC-C run.
"""

from repro.bench.fig17_basictest_breakdown import run as run_fig17
from repro.tpcc import run_tpcc
from repro.obs import Observatory


def test_fig17_identical_with_and_without_tracing(tmp_path):
    baseline = run_fig17(count=15, heap_dir=tmp_path / "plain")
    traced = run_fig17(count=15, heap_dir=tmp_path / "traced", trace=True)
    # Simulated per-phase times: identical to the nanosecond.
    assert traced.cells == baseline.cells
    # Device flush/fence/dedup/epoch counts: identical.
    assert traced.nvm == baseline.nvm
    # ...and the traced run actually recorded something.
    assert baseline.obs == {}
    assert traced.obs
    pjo_create = traced.obs[("H2-PJO", "Create")]
    assert pjo_create["spans"]["jpab.create"]["count"] == 1
    assert pjo_create["counters"]["pjh.alloc.objects"] > 0


def test_tpcc_identical_with_and_without_tracing(tmp_path):
    baseline = run_tpcc("pjo", transactions=20, heap_dir=tmp_path / "plain")
    traced = run_tpcc("pjo", transactions=20, heap_dir=tmp_path / "traced",
                      observatory=Observatory())
    assert traced.sim_ns == baseline.sim_ns
    assert traced.nvm == baseline.nvm
    assert traced.snapshot == baseline.snapshot
    assert baseline.obs == {}
    assert traced.obs["transactions"]["spans"]["tpcc.transactions"]["count"] \
        == 1
