"""Pinned flush-elision acceptance: the fig17 and TPC-C clflush+sfence
reduction must beat PR 2's -16.2% epoch-coalescing baseline, with
SHA-256-identical durable images, a clean ESP201-205 hazard pass and
fsck-clean heaps on every leg."""

from repro.bench.fig17_basictest_breakdown import run as run_fig17
from repro.bench.tpcc_bench import run as run_tpcc_bench

#: PR 2's epoch-coalescing win on fig17 clflushes — the bar to beat.
COALESCING_BASELINE = 0.162


def _check_summary(fe):
    assert fe["reduction"] > COALESCING_BASELINE
    # The certificate contributes on top of the allocation buffers.
    assert 0.0 < fe["elision_reduction"] < fe["reduction"]
    assert fe["certified"]["flushes_elided"] > 0
    assert fe["certified"]["fences_elided"] > 0
    assert fe["hazards"]["errors"] == 0
    assert fe["durable_image_equal"]
    sha = fe["durable_image_sha256"]
    assert sha["baseline"] == sha["certified"]
    assert len(sha["certified"]) == 64
    assert all(fe["fsck_clean"].values())
    cert = fe["certificate"]
    assert cert["active"] and not cert["revocations"]
    assert cert["evidence"]["redundant_flushes"] > 0
    assert cert["elided"]["flushes"] == fe["certified"]["flushes_elided"]


def test_fig17_flush_elision_beats_coalescing_baseline(tmp_path):
    result = run_fig17(count=30, heap_dir=tmp_path, flush_certified=True)
    fe = result.flush_elision
    _check_summary(fe)
    assert "pjh:jpab" in fe["certificate"]["scopes"]
    # The elided run is a full measured leg of the breakdown.
    assert any(provider == "H2-PJO-elided"
               for provider, _ in result.cells)


def test_tpcc_flush_elision_beats_coalescing_baseline(tmp_path):
    result = run_tpcc_bench(transactions=40, heap_dir=tmp_path,
                            flush_certified=True)
    fe = result.flush_elision
    _check_summary(fe)
    assert "pjh:tpcc" in fe["certificate"]["scopes"]
    # Elision must not change the business outcome either.
    assert result.pjo_elided.snapshot == result.pjo.snapshot
