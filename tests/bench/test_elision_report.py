"""The ``make elision-report`` CI tool (DESIGN.md §17).

The canonical trace's ESP401/402 fingerprints must be deterministic —
they are what ``analysis-baseline.json`` pins for the elision pass — and
the report CLI must enforce the per-bench gates and emit the JSON.
"""

import json
from pathlib import Path

from repro.analysis.diagnostics import Baseline
from repro.analysis.elision import analyze_elision
from repro.bench.elision_report import (
    COALESCING_BASELINE,
    canonical_fingerprints,
    canonical_trace,
    main,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_canonical_trace_is_deterministic(tmp_path):
    """Same workload, different directories: identical fingerprints,
    covering both rules of the pass."""
    logs = [canonical_trace(tmp_path / str(i)) for i in range(2)]
    prints = [sorted(d.fingerprint
                     for d in analyze_elision(log).diagnostics())
              for log in logs]
    assert prints[0] == prints[1]
    assert logs[0].events == logs[1].events
    codes = {fp.split(":")[0] for fp in prints[0]}
    assert codes == {"ESP401", "ESP402"}


def test_repo_baseline_covers_the_canonical_fingerprints():
    """The shipped analysis-baseline.json grandfathers exactly the
    canonical trace's findings in — the new pass is baseline-complete."""
    baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
    fingerprints = canonical_fingerprints()
    assert fingerprints, "canonical trace must prove some redundancy"
    for fp in fingerprints:
        assert fp in baseline, f"{fp} missing from analysis-baseline.json"


def test_report_cli_runs_the_gates_and_writes_json(tmp_path):
    out = tmp_path / "report.json"
    rc = main(["--count", "20", "--transactions", "25",
               "--out", str(out),
               "--baseline", str(REPO_ROOT / "analysis-baseline.json")])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["pass"] is True
    assert report["coalescing_baseline"] == COALESCING_BASELINE
    assert set(report["benches"]) == {"fig17", "tpcc"}
    for entry in report["benches"].values():
        assert entry["gates_pass"] is True
        assert entry["reduction"] > COALESCING_BASELINE
        assert 0.0 < entry["elision_reduction"] < entry["reduction"]
        assert entry["delta_vs_coalesced"]["clflush"] < 0
        assert entry["delta_vs_coalesced"]["sfence"] < 0
        assert entry["durable_image_equal"] and entry["fsck_clean"]
        assert entry["hazard_errors"] == 0
    assert report["canonical"]["covered"] is True


def test_report_cli_fails_on_uncovered_fingerprints(tmp_path):
    """An empty baseline no longer covers the pass: exit 1, missing
    fingerprints named in the report."""
    empty = tmp_path / "empty-baseline.json"
    empty.write_text('{"fingerprints": []}\n')
    out = tmp_path / "report.json"
    rc = main(["--count", "20", "--transactions", "25",
               "--out", str(out), "--baseline", str(empty)])
    assert rc == 1
    report = json.loads(out.read_text())
    assert report["pass"] is False
    assert report["canonical"]["covered"] is False
    assert report["canonical"]["missing_from_baseline"] == \
        canonical_fingerprints()
    # The benches themselves still clear their gates.
    assert all(entry["gates_pass"]
               for entry in report["benches"].values())
