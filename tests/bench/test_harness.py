"""Tests for the bench harness utilities and result determinism."""

import json

import pytest

from repro.bench.harness import (
    BENCH_SCHEMA_VERSION,
    bench_payload,
    breakdown_percentages,
    format_table,
    write_bench_json,
)


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["Name", "Value"],
                            [("a", 1.0), ("longer", 123456.0)],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[1] and "Value" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert "123,456" in text  # thousands separator for big floats

    def test_float_formatting(self):
        text = format_table(["x"], [(0.1234,), (1.5,), (0.0,)])
        assert "0.123" in text
        assert "1.50" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestBreakdownPercentages:
    def test_normalises_to_100(self):
        shares = breakdown_percentages({"x": 30.0, "y": 50.0, "z": 20.0},
                                       ["x", "y"])
        assert shares["x"] == 30.0
        assert shares["y"] == 50.0
        assert shares["other"] == 20.0
        assert sum(shares.values()) == 100.0

    def test_empty_breakdown(self):
        shares = breakdown_percentages({}, ["x"])
        assert shares == {"x": 0.0, "other": 0.0}


class TestBenchPayload:
    def test_envelope_plus_flat_results(self):
        payload = bench_payload("demo", {"speedup": 2.0, "rows": [1, 2]},
                                params={"count": 7})
        assert payload["bench"] == "demo"
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["params"] == {"count": 7}
        # result fields stay top-level: migration without field changes
        assert payload["speedup"] == 2.0
        assert payload["rows"] == [1, 2]

    def test_params_default_to_empty(self):
        assert bench_payload("demo", {})["params"] == {}

    def test_reserved_keys_rejected(self):
        for key in ("bench", "schema_version", "params"):
            with pytest.raises(ValueError):
                bench_payload("demo", {key: 1})

    def test_write_bench_json_wraps_envelope(self, tmp_path):
        path = write_bench_json("demo", {"x": 1}, out_dir=tmp_path,
                                params={"n": 3})
        with open(path) as fh:
            payload = json.load(fh)
        assert path.endswith("BENCH_demo.json")
        assert payload["bench"] == "demo"
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["params"] == {"n": 3}
        assert payload["x"] == 1

    def test_every_bench_writer_shares_the_envelope(self, tmp_path,
                                                    monkeypatch):
        """The gc bench (cheapest writer) emits the shared schema."""
        monkeypatch.setenv("BENCH_OUT_DIR", str(tmp_path))
        from repro.bench.gc_cost import main
        main(object_count=60)
        with open(tmp_path / "BENCH_gc_scaling.json") as fh:
            payload = json.load(fh)
        assert payload["bench"] == "gc_scaling"
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["params"] == {"objects": 60}
        assert payload["scaling"]  # legacy fields untouched


class TestDeterminism:
    def test_fig06_is_bit_identical_across_runs(self):
        """The simulated clock makes every benchmark deterministic."""
        from repro.bench.fig06_pcj_breakdown import run
        a = run(count=400)
        b = run(count=400)
        assert a.shares == b.shares
        assert a.per_create_ns == b.per_create_ns

    def test_fig04_is_bit_identical_across_runs(self):
        from repro.bench.fig04_jpa_breakdown import run
        a = run(count=30)
        b = run(count=30)
        assert a.shares == b.shares
        assert a.total_ns == b.total_ns

    def test_tpcc_same_seed_same_result(self, tmp_path):
        from repro.tpcc import run_tpcc
        a = run_tpcc("jpa", transactions=20, seed=5, heap_dir=tmp_path / "a")
        b = run_tpcc("jpa", transactions=20, seed=5, heap_dir=tmp_path / "b")
        assert a.snapshot == b.snapshot
        assert a.sim_ns == b.sim_ns
