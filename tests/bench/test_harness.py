"""Tests for the bench harness utilities and result determinism."""

from repro.bench.harness import breakdown_percentages, format_table


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["Name", "Value"],
                            [("a", 1.0), ("longer", 123456.0)],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[1] and "Value" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert "123,456" in text  # thousands separator for big floats

    def test_float_formatting(self):
        text = format_table(["x"], [(0.1234,), (1.5,), (0.0,)])
        assert "0.123" in text
        assert "1.50" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestBreakdownPercentages:
    def test_normalises_to_100(self):
        shares = breakdown_percentages({"x": 30.0, "y": 50.0, "z": 20.0},
                                       ["x", "y"])
        assert shares["x"] == 30.0
        assert shares["y"] == 50.0
        assert shares["other"] == 20.0
        assert sum(shares.values()) == 100.0

    def test_empty_breakdown(self):
        shares = breakdown_percentages({}, ["x"])
        assert shares == {"x": 0.0, "other": 0.0}


class TestDeterminism:
    def test_fig06_is_bit_identical_across_runs(self):
        """The simulated clock makes every benchmark deterministic."""
        from repro.bench.fig06_pcj_breakdown import run
        a = run(count=400)
        b = run(count=400)
        assert a.shares == b.shares
        assert a.per_create_ns == b.per_create_ns

    def test_fig04_is_bit_identical_across_runs(self):
        from repro.bench.fig04_jpa_breakdown import run
        a = run(count=30)
        b = run(count=30)
        assert a.shares == b.shares
        assert a.total_ns == b.total_ns

    def test_tpcc_same_seed_same_result(self, tmp_path):
        from repro.tpcc import run_tpcc
        a = run_tpcc("jpa", transactions=20, seed=5, heap_dir=tmp_path / "a")
        b = run_tpcc("jpa", transactions=20, seed=5, heap_dir=tmp_path / "b")
        assert a.snapshot == b.snapshot
        assert a.sim_ns == b.sim_ns
