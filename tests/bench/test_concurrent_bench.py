"""Concurrent gang bench: scaling target, envelope schema, determinism."""

import json

from repro.bench.concurrent_bench import emit, run, run_scaling


def test_throughput_scales_with_gang_width(tmp_path):
    """The acceptance bar: 8-mutator throughput >= 3x 1-mutator on the
    identical contended op budget."""
    rows = run_scaling(tmp_path, widths=(1, 8), total_ops=96)
    assert rows[0].speedup == 1.0
    assert rows[1].speedup >= 3.0
    assert rows[1].elapsed_ms < rows[0].elapsed_ms


def test_speedup_monotone_in_gang_width(tmp_path):
    rows = run_scaling(tmp_path, widths=(1, 2, 4), total_ops=48)
    speedups = [row.speedup for row in rows]
    assert speedups == sorted(speedups)


def test_payload_schema(tmp_path):
    result = run(tmp_path, widths=(1, 4), total_ops=48)
    path = emit(result, out_dir=tmp_path)
    with open(path) as fh:
        payload = json.load(fh)
    assert payload["bench"] == "concurrent"
    assert payload["schema_version"] == 1
    assert payload["params"]["gang_widths"] == [1, 4]
    assert payload["params"]["total_ops"] == 48
    assert len(payload["scaling"]) == 2
    for row in payload["scaling"]:
        assert row["ops"] == 48
        assert row["throughput_ops_per_ms"] > 0
        assert len(row["busy_ns"]) == row["mutators"]
    assert payload["max_speedup"] == payload["scaling"][-1]["speedup"]
    assert payload["scaling_target_met"] in (True, False)


def test_bench_is_deterministic(tmp_path):
    a = run_scaling(tmp_path / "a", widths=(4,), total_ops=48)
    b = run_scaling(tmp_path / "b", widths=(4,), total_ops=48)
    assert a[0].elapsed_ms == b[0].elapsed_ms
    assert a[0].steps == b[0].steps
    assert a[0].busy_ns == b[0].busy_ns
