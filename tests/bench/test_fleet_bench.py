"""Fleet bench: scaling target, envelope schema, determinism."""

import json

from repro.bench.fleet_bench import emit, run, run_scaling


def test_throughput_scales_with_shard_count(tmp_path):
    """The acceptance bar: 8-shard throughput >= 3x 1-shard."""
    rows = run_scaling(tmp_path, shard_counts=(1, 8), sessions=48, rounds=3)
    assert rows[0].speedup == 1.0
    assert rows[1].speedup >= 3.0
    assert rows[1].p50_ns < rows[0].p50_ns  # less queueing per shard


def test_speedup_monotone_in_shard_count(tmp_path):
    rows = run_scaling(tmp_path, shard_counts=(1, 2, 4), sessions=48,
                       rounds=2)
    speedups = [row.speedup for row in rows]
    assert speedups == sorted(speedups)


def test_payload_schema_and_recovery(tmp_path):
    result = run(tmp_path, shard_counts=(1, 4), sessions=32, rounds=2,
                 recovery_shards=4)
    path = emit(result, out_dir=tmp_path)
    with open(path) as fh:
        payload = json.load(fh)
    assert payload["bench"] == "fleet"
    assert payload["schema_version"] == 1
    assert payload["params"]["sessions"] == 32
    assert payload["params"]["shard_counts"] == [1, 4]
    assert len(payload["scaling"]) == 2
    for row in payload["scaling"]:
        assert row["p99_ns"] >= row["p50_ns"] > 0
        assert row["throughput_ops_per_ms"] > 0
    rec = payload["recovery"]
    assert rec["recovery_ns"] > 0
    assert rec["victim_state_intact"] is True
    assert rec["served_during_outage"] > 0   # survivors served the outage
    assert rec["dropped"] > 0                # the victim's queue was lost
    assert rec["summary"]["count"] == 1


def test_bench_is_deterministic(tmp_path):
    a = run_scaling(tmp_path / "a", shard_counts=(2,), sessions=24,
                    rounds=2)
    b = run_scaling(tmp_path / "b", shard_counts=(2,), sessions=24,
                    rounds=2)
    assert a[0].elapsed_ms == b[0].elapsed_ms
    assert a[0].p50_ns == b[0].p50_ns
    assert a[0].p99_ns == b[0].p99_ns
