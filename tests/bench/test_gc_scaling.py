"""Parallel old-GC pause scaling: the acceptance bar for gc_workers.

The worker gang must buy real (simulated) pause reduction — at least 2x
at 8 workers on the §6.4 gc_cost workload — while leaving the durable
image untouched at every gang size.  Both halves are pinned here, along
with the BENCH json emission the CI trend tracking reads.
"""

import json

from repro.bench.fig18_heap_loading import run as run_fig18
from repro.bench.gc_cost import main as gc_cost_main, run_scaling


def test_eight_workers_at_least_halve_the_pause(tmp_path):
    rows = run_scaling(object_count=8000, worker_counts=(1, 8),
                       heap_dir=tmp_path)
    one, eight = rows
    assert one.workers == 1 and eight.workers == 8
    assert eight.speedup >= 2.0, \
        f"w=8 pause {eight.pause_ms:.3f}ms vs w=1 {one.pause_ms:.3f}ms " \
        f"({eight.speedup:.2f}x < 2x)"


def test_image_digest_identical_across_gang_sizes(tmp_path):
    rows = run_scaling(object_count=2000, worker_counts=(1, 2, 4, 8),
                       heap_dir=tmp_path)
    digests = {row.image_sha256 for row in rows}
    assert len(digests) == 1, [r.workers for r in rows]
    assert rows[-1].pause_ms < rows[0].pause_ms


def test_gc_cost_main_writes_scaling_json(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("BENCH_OUT_DIR", str(tmp_path))
    gc_cost_main(object_count=1000)
    payload = json.loads((tmp_path / "BENCH_gc_scaling.json").read_text())
    assert [row["workers"] for row in payload["scaling"]] == [1, 2, 4, 8]
    assert len({row["image_sha256"] for row in payload["scaling"]}) == 1
    assert payload["scaling"][0]["speedup"] == 1.0


def test_fig18_parallel_zeroing_never_slower(tmp_path):
    result = run_fig18(object_counts=[2000, 4000], heap_dir=tmp_path)
    for count, times in result.series.items():
        assert times["ZeroW8"] <= times["Zero"], (count, times)
        assert times["Zero"] > times["UG"]
