"""Shared fixtures for PJH tests."""

import pytest

from repro.api import Espresso
from repro.runtime.klass import FieldKind, field

HEAP_BYTES = 512 * 1024


@pytest.fixture
def heap_dir(tmp_path):
    return tmp_path / "heaps"


@pytest.fixture
def jvm(heap_dir):
    return Espresso(heap_dir)


@pytest.fixture
def mounted(jvm):
    """A JVM with one mounted PJH called 'test'."""
    jvm.create_heap("test", HEAP_BYTES)
    return jvm


def define_person(jvm):
    return jvm.define_class("Person", [field("id", FieldKind.INT),
                                       field("name", FieldKind.REF)])


def define_node(jvm):
    return jvm.define_class("Node", [field("value", FieldKind.INT),
                                     field("next", FieldKind.REF)])


def pnew_list(jvm, node_klass, values):
    """Build a persistent linked list, return the head handle."""
    head = None
    for v in reversed(values):
        node = jvm.pnew(node_klass)
        jvm.set_field(node, "value", v)
        if head is not None:
            jvm.set_field(node, "next", head)
        head = node
    return head


def read_list(jvm, head):
    out = []
    node = head
    while node is not None:
        out.append(jvm.get_field(node, "value"))
        node = jvm.get_field(node, "next")
    return out
