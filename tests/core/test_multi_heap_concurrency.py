"""Concurrent multi-heap open/close across sessions sharing one directory.

The fleet layer mounts K shard sessions over a common heap directory, so
the name manager / name table paths that were historically exercised
single-heap get pinned here for the concurrent shapes: duplicate names
across sessions, load-while-another-session-is-creating, unload ordering,
and same-name root/klass entries living in different heaps' name tables.
"""

import pytest

from repro.api import Espresso
from repro.core.name_table import ENTRY_TYPE_KLASS, ENTRY_TYPE_ROOT
from repro.errors import HeapExistsError, HeapNotFoundError
from repro.runtime.klass import FieldKind, field


def _node(jvm):
    return jvm.define_class("Node", [field("v", FieldKind.INT)])


def _put(jvm, heap, root, v):
    node = jvm.pnew("Node", heap=heap)
    jvm.set_field(node, "v", v)
    jvm.flush_reachable(node)
    jvm.set_root(root, node, heap=heap)


class TestCrossSessionNameManager:
    def test_registration_visible_to_earlier_session(self, tmp_path):
        """load-while-creating: B registers after A's manager was built."""
        a = Espresso(tmp_path)
        b = Espresso(tmp_path)
        assert not a.exists_heap("shard-0")
        _node(b)
        b.create_heap("shard-0", 256 * 1024)
        _put(b, "shard-0", "r", 41)
        b.shutdown()
        # A's NameManager predates the registration yet must see it.
        assert a.exists_heap("shard-0")
        _node(a)
        a.load_heap("shard-0")
        assert a.get_field(a.get_root("r"), "v") == 41

    def test_duplicate_name_across_sessions_raises(self, tmp_path):
        a = Espresso(tmp_path)
        b = Espresso(tmp_path)
        a.create_heap("shard-0", 256 * 1024)
        with pytest.raises(HeapExistsError):
            b.create_heap("shard-0", 256 * 1024)

    def test_remove_does_not_resurrect_via_refresh(self, tmp_path):
        a = Espresso(tmp_path)
        a.create_heap("dead", 256 * 1024)
        a.shutdown()
        a.heaps.names.remove("dead")
        assert not Espresso(tmp_path).exists_heap("dead")
        with pytest.raises(HeapNotFoundError):
            Espresso(tmp_path).load_heap("dead")

    def test_sibling_sessions_mount_distinct_heaps(self, tmp_path):
        sessions = []
        for i in range(3):
            jvm = Espresso(tmp_path)
            _node(jvm)
            jvm.create_heap(f"shard-{i}", 256 * 1024)
            _put(jvm, f"shard-{i}", "r", i)
            sessions.append(jvm)
        # every session sees the full namespace, but mounts only its own
        for i, jvm in enumerate(sessions):
            assert jvm.heaps.names.names() == \
                ["shard-0", "shard-1", "shard-2"]
            assert jvm.heaps.mounted_names() == [f"shard-{i}"]
            assert jvm.get_field(jvm.get_root("r"), "v") == i


class TestUnloadOrdering:
    def test_unload_out_of_creation_order(self, tmp_path):
        jvm = Espresso(tmp_path)
        _node(jvm)
        for name in ("a", "b", "c"):
            jvm.create_heap(name, 256 * 1024)
        for name, v in (("a", 1), ("b", 2), ("c", 3)):
            _put(jvm, name, "r", v)
        jvm.heaps.unload_heap("b")            # middle first
        assert jvm.heaps.mounted_names() == ["a", "c"]
        jvm.heaps.unload_heap("c")
        jvm.heaps.unload_heap("a")
        assert jvm.heaps.mounted_names() == []
        jvm2 = jvm.restart()
        _node(jvm2)
        for name, v in (("c", 3), ("a", 1), ("b", 2)):  # reload shuffled
            jvm2.load_heap(name)
            assert jvm2.get_field(jvm2.get_root("r", heap=name), "v") == v

    def test_one_sessions_unload_leaves_siblings_serving(self, tmp_path):
        a = Espresso(tmp_path)
        b = Espresso(tmp_path)
        for i, jvm in enumerate((a, b)):
            _node(jvm)
            jvm.create_heap(f"s{i}", 256 * 1024)
            _put(jvm, f"s{i}", "r", i + 10)
        a.shutdown()
        assert b.get_field(b.get_root("r"), "v") == 11
        _put(b, "s1", "r2", 12)               # still writable
        assert b.get_field(b.get_root("r2"), "v") == 12


class TestNameTableCollisions:
    def test_same_root_name_in_two_heaps_stays_heap_local(self, tmp_path):
        jvm = Espresso(tmp_path)
        _node(jvm)
        jvm.create_heap("a", 256 * 1024)
        jvm.create_heap("b", 256 * 1024)
        _put(jvm, "a", "shared", 1)
        _put(jvm, "b", "shared", 2)
        assert jvm.get_field(jvm.get_root("shared", heap="a"), "v") == 1
        assert jvm.get_field(jvm.get_root("shared", heap="b"), "v") == 2
        jvm2 = jvm.restart()
        _node(jvm2)
        jvm2.load_heap("a")
        jvm2.load_heap("b")
        assert jvm2.get_field(jvm2.get_root("shared", heap="a"), "v") == 1
        assert jvm2.get_field(jvm2.get_root("shared", heap="b"), "v") == 2

    def test_root_and_klass_entries_do_not_collide(self, tmp_path):
        """One name table, same name, different entry types."""
        jvm = Espresso(tmp_path)
        _node(jvm)
        heap = jvm.create_heap("h", 256 * 1024)
        node = jvm.pnew("Node")
        jvm.flush_reachable(node)
        jvm.set_root("Node", node)            # root named like the klass
        table = heap.name_table
        klass_value = table.lookup(ENTRY_TYPE_KLASS, "Node")
        root_value = table.lookup(ENTRY_TYPE_ROOT, "Node")
        assert klass_value is not None and root_value is not None
        assert klass_value != root_value
        assert jvm.get_root("Node").address == node.address

    def test_same_klass_name_across_shards(self, tmp_path):
        """Each shard's name table carries its own Klass entry."""
        sessions = []
        for i in range(2):
            jvm = Espresso(tmp_path)
            _node(jvm)
            jvm.create_heap(f"shard-{i}", 256 * 1024)
            _put(jvm, f"shard-{i}", "r", i)
            sessions.append(jvm)
        for i, jvm in enumerate(sessions):
            heap = jvm.heaps.heap(f"shard-{i}")
            assert heap.name_table.lookup(ENTRY_TYPE_KLASS, "Node") \
                is not None
            assert jvm.get_field(jvm.get_root("r"), "v") == i
