"""Alias-Klass tests: the Figure 10 hazard and its fix (paper §3.2)."""

import pytest

from repro.api import Espresso
from repro.errors import ClassCastException
from repro.runtime.klass import FieldKind, Residence, field

from tests.core.conftest import HEAP_BYTES, define_person


@pytest.fixture
def mounted_alias_off(heap_dir):
    jvm = Espresso(heap_dir, alias_aware=False)
    jvm.create_heap("test", HEAP_BYTES)
    return jvm


def test_figure10_bug_without_alias_support(mounted_alias_off):
    """Stock JVM behaviour: a redundant cast throws ClassCastException."""
    jvm = mounted_alias_off
    person = define_person(jvm)
    a = jvm.new(person)       # resolves the DRAM Klass into the pool slot
    _b = jvm.pnew(person)     # re-resolves the slot to the NVM Klass
    with pytest.raises(ClassCastException):
        jvm.checkcast(a, "Person")  # slot holds K'p, a's header holds Kp


def test_figure10_fixed_with_alias_support(mounted):
    """Espresso behaviour: the alias check accepts the twin Klass."""
    person = define_person(mounted)
    a = mounted.new(person)
    b = mounted.pnew(person)
    assert mounted.checkcast(a, "Person") is a
    assert mounted.checkcast(b, "Person") is b


def test_two_klasses_exist_for_one_class(mounted):
    person = define_person(mounted)
    a = mounted.new(person)
    b = mounted.pnew(person)
    ka = mounted.vm.klass_of(a)
    kb = mounted.vm.klass_of(b)
    assert ka is not kb
    assert ka.name == kb.name == "Person"
    assert ka.residence is Residence.DRAM
    assert kb.residence is Residence.NVM
    assert ka.is_alias_of(kb)


def test_instance_of_across_residences(mounted):
    person = define_person(mounted)
    p = mounted.pnew(person)
    assert mounted.instance_of(p, person)  # DRAM Klass as the target


def test_alias_with_inheritance(mounted):
    base = mounted.define_class("Base", [field("x", FieldKind.INT)])
    derived = mounted.define_class("Derived", [field("y", FieldKind.INT)],
                                   super_klass=base)
    d = mounted.pnew(derived)
    # NVM Derived -> (super) NVM Base, which aliases DRAM Base.
    assert mounted.instance_of(d, base)
    assert mounted.checkcast(d, "Base") is d


def test_persistent_array_klass_aliases(mounted):
    person = define_person(mounted)
    arr = mounted.pnew_array(person, 3)
    k = mounted.vm.klass_of(arr)
    assert k.residence is Residence.NVM
    assert k.element_klass.residence is Residence.NVM
    assert k.element_klass.name == "Person"


def test_cast_still_fails_for_unrelated_types(mounted):
    person = define_person(mounted)
    other = mounted.define_class("Other")
    o = mounted.pnew(other)
    with pytest.raises(ClassCastException):
        mounted.checkcast(o, person)


def test_klass_segment_reused_across_pnews(mounted):
    person = define_person(mounted)
    mounted.pnew(person)
    count_after_first = mounted.heaps.heap("test").klass_segment.klass_count()
    mounted.pnew(person)
    assert mounted.heaps.heap("test").klass_segment.klass_count() \
        == count_after_first
