"""Recovery tests (paper §4.3): crash at every point inside a collection.

The exhaustive sweep injects a crash at the N-th persistence failpoint of a
persistent GC, for every N until the collection completes untouched.  After
each crash the heap image (durable lines only!) is reloaded in a fresh JVM;
loadHeap triggers recovery, and the full object graph must come back
bit-identical to the pre-GC flushed state.
"""

import pytest

from repro.api import Espresso
from repro.errors import SimulatedCrash

from tests.core.conftest import define_node


HEAP_BYTES = 256 * 1024
# Small regions force many regions, including scratch (overlap) cases.
REGION_WORDS = 128


def build_workload(heap_dir, seed=0):
    """A heap with a mix of live lists and garbage, fully flushed."""
    jvm = Espresso(heap_dir)
    node = define_node(jvm)
    jvm.create_heap("h", HEAP_BYTES, region_words=REGION_WORDS)
    lists = {}
    for li in range(6):
        values = [seed + li * 100 + i for i in range(12)]
        head = None
        for v in reversed(values):
            n = jvm.pnew(node)
            jvm.set_field(n, "value", v)
            if head is not None:
                jvm.set_field(n, "next", head)
            head = n
        jvm.flush_reachable(head)
        jvm.set_root(f"list{li}", head)
        lists[f"list{li}"] = values
        # Interleave garbage so compaction actually moves things.
        for _ in range(20):
            jvm.pnew(node).close()
    return jvm, lists


def verify(heap_dir, lists, gc_workers=1):
    from repro.tools.fsck import fsck_heap
    jvm = Espresso(heap_dir, gc_workers=gc_workers)
    heap, report = jvm.heaps.load_heap_with_report("h")
    structure = fsck_heap(heap)
    assert structure.clean, structure.errors
    for name, values in lists.items():
        head = jvm.get_root(name)
        got = []
        n = head
        while n is not None:
            got.append(jvm.get_field(n, "value"))
            n = jvm.get_field(n, "next")
        assert got == values, f"{name} corrupted after recovery: {got}"
    return report


def test_recovery_sweep_every_failpoint(heap_dir):
    """Crash at the N-th failpoint for every N; recovery must always work."""
    n = 1
    completed_without_crash = False
    rounds = 0
    while not completed_without_crash:
        rounds += 1
        assert rounds < 500, "failpoint sweep did not terminate"
        subdir = heap_dir / f"round{n}"
        jvm, lists = build_workload(subdir)
        jvm.vm.failpoints.crash_on_global_hit(n)
        try:
            jvm.persistent_gc()
            completed_without_crash = True
        except SimulatedCrash:
            pass
        jvm.vm.failpoints.clear()
        jvm.crash()  # lose unflushed lines, save durable image
        report = verify(subdir, lists)
        if not completed_without_crash:
            # Depending on where the crash hit, recovery either replays the
            # collection or the flag was never raised (mark-phase crash).
            assert report.recovery is not None
        n += 1
    assert n > 10  # the protocol has many distinct persistence points


def test_recovery_is_idempotent_under_double_crash(heap_dir):
    """Crash during GC, then crash during *recovery*, then recover again."""
    jvm, lists = build_workload(heap_dir)
    # Crash mid-compaction (after a few region completions).
    jvm.vm.failpoints.crash_on_hit("gc.compact.region_done", 2)
    with pytest.raises(SimulatedCrash):
        jvm.persistent_gc()
    jvm.vm.failpoints.clear()
    jvm.crash()

    # First recovery attempt also crashes.
    jvm2 = Espresso(heap_dir)
    jvm2.vm.failpoints.crash_on_hit("gc.compact.dest_persisted", 3)
    with pytest.raises(SimulatedCrash):
        jvm2.load_heap("h")
    jvm2.vm.failpoints.clear()
    jvm2.crash()

    # Second recovery must finish the job.
    report = verify(heap_dir, lists)
    assert report.recovery.performed


def test_recovery_noop_on_clean_heap(heap_dir):
    jvm, lists = build_workload(heap_dir)
    jvm.shutdown()
    report = verify(heap_dir, lists)
    assert not report.recovery.performed


def test_recovery_after_crash_before_any_region(heap_dir):
    """Crash right after the flag is raised: recovery replays everything."""
    jvm, lists = build_workload(heap_dir)
    jvm.vm.failpoints.crash_on_hit("pgc.flag_raised", 1)
    with pytest.raises(SimulatedCrash):
        jvm.persistent_gc()
    jvm.vm.failpoints.clear()
    jvm.crash()
    report = verify(heap_dir, lists)
    assert report.recovery.performed
    assert report.recovery.regions_replayed > 0


def test_recovery_after_crash_at_final_flag_clear(heap_dir):
    """Crash after top persisted but before the flag cleared."""
    jvm, lists = build_workload(heap_dir)
    jvm.vm.failpoints.crash_on_hit("pgc.top_persisted", 1)
    with pytest.raises(SimulatedCrash):
        jvm.persistent_gc()
    jvm.vm.failpoints.clear()
    jvm.crash()
    report = verify(heap_dir, lists)
    assert report.recovery.performed
    # Nothing left to re-copy: every region bit was already set.
    assert report.recovery.objects_recopied == 0


def test_allocation_works_after_recovery(heap_dir):
    jvm, lists = build_workload(heap_dir)
    jvm.vm.failpoints.crash_on_hit("gc.compact.copied", 5)
    with pytest.raises(SimulatedCrash):
        jvm.persistent_gc()
    jvm.vm.failpoints.clear()
    jvm.crash()

    jvm2 = Espresso(heap_dir)
    node = define_node(jvm2)
    jvm2.load_heap("h")
    fresh = jvm2.pnew(node)
    jvm2.set_field(fresh, "value", 12345)
    jvm2.flush_object(fresh)
    jvm2.set_root("fresh", fresh)
    jvm2.shutdown()

    jvm3 = Espresso(heap_dir)
    jvm3.load_heap("h")
    assert jvm3.get_field(jvm3.get_root("fresh"), "value") == 12345


def test_parallel_gc_crash_recovers_under_any_worker_count(heap_dir):
    """A collection crashed mid-compaction on a 4-worker gang must recover
    to the *same* durable image whether the recovering session runs 1 or 4
    workers — recovery is worker-count agnostic (DESIGN.md §12)."""
    import shutil

    jvm = Espresso(heap_dir / "crashed", gc_workers=4)
    node = define_node(jvm)
    jvm.create_heap("h", HEAP_BYTES, region_words=REGION_WORDS)
    lists = {}
    for li in range(4):
        values = [li * 100 + i for i in range(10)]
        head = None
        for v in reversed(values):
            n = jvm.pnew(node)
            jvm.set_field(n, "value", v)
            if head is not None:
                jvm.set_field(n, "next", head)
            head = n
        jvm.flush_reachable(head)
        jvm.set_root(f"list{li}", head)
        lists[f"list{li}"] = values
        for _ in range(15):
            jvm.pnew(node).close()

    jvm.vm.failpoints.crash_on_hit("gc.compact.region_done", 2)
    with pytest.raises(SimulatedCrash):
        jvm.persistent_gc()
    jvm.vm.failpoints.clear()
    jvm.crash()

    images = {}
    for workers in (1, 4):
        root = heap_dir / f"recover-w{workers}"
        shutil.copytree(heap_dir / "crashed", root)
        report = verify(root, lists, gc_workers=workers)
        assert report.recovery.performed
        jvm2 = Espresso(root, gc_workers=workers)
        heap = jvm2.heaps.load_heap("h")
        images[workers] = heap.device.durable_image().tobytes()
    assert images[1] == images[4]
