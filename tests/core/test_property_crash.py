"""Property-based crash tests: random graphs, random crash points.

The strongest invariant in the system: for ANY object graph and ANY crash
point inside a persistent collection, loadHeap recovery reproduces the
flushed pre-GC state exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Espresso
from repro.errors import SimulatedCrash
from repro.runtime.dram_heap import HeapConfig
from repro.runtime.klass import FieldKind, field


def build_random_graph(jvm, node_klass, data):
    """Random graph: N nodes, random edges, random subset rooted."""
    count = data.draw(st.integers(3, 30), label="count")
    nodes = []
    for i in range(count):
        n = jvm.pnew(node_klass)
        jvm.set_field(n, "v", i)
        nodes.append(n)
    edges = {}
    for i in range(count):
        for slot in ("a", "b"):
            j = data.draw(st.integers(-1, count - 1), label=f"edge{i}{slot}")
            if j >= 0:
                jvm.set_field(nodes[i], slot, nodes[j])
                edges[(i, slot)] = j
    rooted = sorted(data.draw(
        st.sets(st.integers(0, count - 1), min_size=1, max_size=5),
        label="roots"))
    for i in rooted:
        jvm.flush_reachable(nodes[i])
        jvm.set_root(f"n{i}", nodes[i])
    # Garbage in between keeps compaction honest.
    for _ in range(data.draw(st.integers(0, 40), label="garbage")):
        jvm.pnew(node_klass).close()
    return count, edges, rooted


def reachable_from(rooted, edges, count):
    seen = set()
    stack = list(rooted)
    while stack:
        i = stack.pop()
        if i in seen:
            continue
        seen.add(i)
        for slot in ("a", "b"):
            j = edges.get((i, slot))
            if j is not None:
                stack.append(j)
    return seen


def verify_graph(jvm, edges, rooted, count):
    """Walk the reloaded graph and compare with the model."""
    reachable = reachable_from(rooted, edges, count)
    handles = {}
    stack = []
    for i in rooted:
        handle = jvm.get_root(f"n{i}")
        assert handle is not None
        handles[i] = handle
        stack.append(i)
    visited = set()
    while stack:
        i = stack.pop()
        if i in visited:
            continue
        visited.add(i)
        node = handles[i]
        assert jvm.get_field(node, "v") == i
        for slot in ("a", "b"):
            j = edges.get((i, slot))
            target = jvm.get_field(node, slot)
            if j is None:
                assert target is None
            else:
                assert jvm.get_field(target, "v") == j
                handles[j] = target
                stack.append(j)
    assert visited == reachable


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_property_random_graph_random_crash_point(tmp_path_factory, data):
    heap_dir = tmp_path_factory.mktemp("crash")
    jvm = Espresso(heap_dir)
    node_klass = jvm.define_class(
        "PNode", [field("v", FieldKind.INT),
                  field("a", FieldKind.REF), field("b", FieldKind.REF)])
    jvm.create_heap("g", 256 * 1024, region_words=128)
    count, edges, rooted = build_random_graph(jvm, node_klass, data)

    crash_at = data.draw(st.integers(1, 300), label="crash_at")
    jvm.vm.failpoints.crash_on_global_hit(crash_at)
    try:
        jvm.persistent_gc()
    except SimulatedCrash:
        pass
    jvm.vm.failpoints.clear()
    jvm.crash()

    jvm2 = Espresso(heap_dir)
    jvm2.load_heap("g")
    verify_graph(jvm2, edges, rooted, count)


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_property_graph_survives_gc_without_crash(tmp_path_factory, data):
    """Baseline for the crash property: GC alone preserves random graphs."""
    heap_dir = tmp_path_factory.mktemp("gc")
    jvm = Espresso(heap_dir)
    node_klass = jvm.define_class(
        "QNode", [field("v", FieldKind.INT),
                  field("a", FieldKind.REF), field("b", FieldKind.REF)])
    jvm.create_heap("g", 256 * 1024, region_words=128)
    count, edges, rooted = build_random_graph(jvm, node_klass, data)
    jvm.persistent_gc()
    jvm.persistent_gc()  # twice: exercises re-compaction of compacted data
    verify_graph(jvm, edges, rooted, count)


def test_dram_full_gc_with_region_spanning_objects(tmp_path):
    """The volatile engine also faces big objects (serialized path)."""
    jvm = Espresso(tmp_path / "h",
                   heap_config=HeapConfig(eden_words=4096,
                                          survivor_words=2048,
                                          old_words=16384,
                                          region_words=256))
    keep = []
    big = jvm.new_array(FieldKind.INT, 900)  # spans several regions
    for i in range(900):
        jvm.array_set(big, i, i * 3)
    keep.append(big)
    node = jvm.define_class("DNode", [field("v", FieldKind.INT)])
    for i in range(50):
        n = jvm.new(node)
        jvm.set_field(n, "v", i)
        if i % 5 == 0:
            keep.append(n)
        else:
            n.close()
    jvm.system_gc()
    jvm.system_gc()
    assert [jvm.array_get(big, i) for i in range(0, 900, 100)] \
        == [i * 3 for i in range(0, 900, 100)]
    values = [jvm.get_field(h, "v") for h in keep[1:]]
    assert values == [0, 5, 10, 15, 20, 25, 30, 35, 40, 45]
