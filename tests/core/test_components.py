"""Unit tests for PJH components: layout plan, metadata, name table,
Klass segment, flush APIs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Espresso
from repro.core.metadata import METADATA_WORDS, plan_layout
from repro.core.name_table import (
    ENTRY_TYPE_KLASS,
    ENTRY_TYPE_ROOT,
    MAX_NAME_BYTES,
)
from repro.errors import (
    IllegalArgumentException,
    IllegalStateException,
    OutOfMemoryError,
)
from repro.runtime.klass import FieldKind, Residence, field

from tests.core.conftest import HEAP_BYTES, define_person


class TestPlanLayout:
    def test_areas_are_disjoint_and_ordered(self):
        layout = plan_layout(1 << 16)
        boundaries = [
            (METADATA_WORDS, layout.name_table_offset),
            (layout.name_table_offset, layout.klass_segment_offset),
            (layout.klass_segment_offset, layout.bitmap_offset),
            (layout.bitmap_offset, layout.region_bitmap_offset),
            (layout.region_bitmap_offset, layout.scratch_offset),
            (layout.scratch_offset, layout.root_redo_offset),
            (layout.root_redo_offset, layout.data_offset),
        ]
        for start, end in boundaries:
            assert start <= end
        assert layout.data_offset + layout.data_words == layout.size_words

    def test_bitmaps_cover_data_region(self):
        for size in (1 << 13, 1 << 16, 1 << 20, (1 << 20) + 12345):
            layout = plan_layout(size)
            needed = 2 * ((layout.data_words + 63) // 64)
            assert layout.bitmap_words >= needed
            n_regions = (layout.data_words + layout.region_words - 1) \
                // layout.region_words
            assert layout.region_bitmap_words * 64 >= n_regions

    def test_too_small_rejected(self):
        with pytest.raises(IllegalArgumentException):
            plan_layout(1024)

    def test_tiny_region_rejected(self):
        with pytest.raises(IllegalArgumentException):
            plan_layout(1 << 16, region_words=32)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(4096, 1 << 21), st.sampled_from([64, 128, 1024, 4096]))
    def test_property_layout_always_consistent(self, size, region):
        try:
            layout = plan_layout(size, region)
        except IllegalArgumentException:
            return  # legitimately too small for this region size
        assert layout.data_words >= region
        assert 2 * ((layout.data_words + 63) // 64) <= layout.bitmap_words


class TestMetadataArea:
    @pytest.fixture
    def heap(self, mounted):
        return mounted.heaps.heap("test")

    def test_top_roundtrip(self, heap):
        heap.metadata.set_top(heap.data_space.base + 64)
        assert heap.metadata.top == heap.data_space.base + 64

    def test_gc_flag(self, heap):
        assert not heap.metadata.gc_in_progress
        heap.metadata.set_gc_in_progress(True)
        assert heap.metadata.gc_in_progress

    def test_cursor_roundtrip(self, heap):
        assert heap.metadata.region_cursor() == (-1, 0)
        heap.metadata.set_region_cursor(7, 42)
        assert heap.metadata.region_cursor() == (7, 42)

    def test_move_record_roundtrip(self, heap):
        assert heap.metadata.move_record() is None
        heap.metadata.set_move_record(100, 80, 300, 2)
        assert heap.metadata.move_record() == (100, 80, 300, 2)
        heap.metadata.set_move_progress(5)
        assert heap.metadata.move_record()[3] == 5
        heap.metadata.clear_move_record()
        assert heap.metadata.move_record() is None

    def test_metadata_survives_crash_when_flushed(self, heap):
        heap.metadata.set_global_timestamp(9)
        heap.device.crash()
        assert heap.metadata.global_timestamp == 9

    def test_layout_roundtrip_through_device(self, heap):
        reread = heap.metadata.layout()
        assert reread == heap.layout


class TestNameTable:
    @pytest.fixture
    def heap(self, mounted):
        return mounted.heaps.heap("test")

    def test_put_lookup(self, heap):
        heap.name_table.put(ENTRY_TYPE_ROOT, "alpha", 0x1234)
        assert heap.name_table.lookup(ENTRY_TYPE_ROOT, "alpha") == 0x1234

    def test_types_are_separate_namespaces(self, heap):
        heap.name_table.put(ENTRY_TYPE_ROOT, "x", 1)
        heap.name_table.put(ENTRY_TYPE_KLASS, "x", 2)
        assert heap.name_table.lookup(ENTRY_TYPE_ROOT, "x") == 1
        assert heap.name_table.lookup(ENTRY_TYPE_KLASS, "x") == 2

    def test_update_in_place(self, heap):
        index_a = heap.name_table.put(ENTRY_TYPE_ROOT, "r", 1)
        index_b = heap.name_table.put(ENTRY_TYPE_ROOT, "r", 2)
        assert index_a == index_b
        assert heap.name_table.lookup(ENTRY_TYPE_ROOT, "r") == 2

    def test_missing_lookup(self, heap):
        assert heap.name_table.lookup(ENTRY_TYPE_ROOT, "missing") is None

    def test_long_name_rejected(self, heap):
        with pytest.raises(IllegalArgumentException):
            heap.name_table.put(ENTRY_TYPE_ROOT, "x" * (MAX_NAME_BYTES + 1), 1)

    def test_utf8_names(self, heap):
        heap.name_table.put(ENTRY_TYPE_ROOT, "café☕", 7)
        heap.name_table._rebuild_index()
        assert heap.name_table.lookup(ENTRY_TYPE_ROOT, "café☕") == 7

    def test_capacity_exhaustion(self, heap):
        with pytest.raises(OutOfMemoryError):
            for i in range(100000):
                heap.name_table.put(ENTRY_TYPE_ROOT, f"r{i}", i)

    def test_entries_survive_crash(self, heap, mounted):
        heap.name_table.put(ENTRY_TYPE_ROOT, "durable", 42)
        heap.device.crash()
        heap.name_table._rebuild_index()
        assert heap.name_table.lookup(ENTRY_TYPE_ROOT, "durable") == 42


class TestKlassSegment:
    def test_roundtrip_through_restart(self, heap_dir):
        jvm = Espresso(heap_dir)
        base = jvm.define_class("KsBase", [field("a", FieldKind.INT)])
        derived = jvm.define_class(
            "KsDerived", [field("b", FieldKind.FLOAT),
                          field("r", FieldKind.REF)], super_klass=base)
        jvm.create_heap("h", HEAP_BYTES)
        obj = jvm.pnew(derived)
        jvm.set_root("o", obj)
        nvm_klass = jvm.vm.klass_of(obj)
        jvm.shutdown()

        jvm2 = Espresso(heap_dir)
        jvm2.load_heap("h")
        reloaded = jvm2.vm.klass_of(jvm2.get_root("o"))
        assert reloaded.name == "KsDerived"
        assert reloaded.residence is Residence.NVM
        assert reloaded.super_klass.name == "KsBase"
        assert [f.name for f in reloaded.all_fields] == ["a", "b", "r"]
        assert [f.kind for f in reloaded.all_fields] == \
            [FieldKind.INT, FieldKind.FLOAT, FieldKind.REF]
        assert reloaded.address == nvm_klass.address  # in place

    def test_array_klass_roundtrip(self, heap_dir):
        jvm = Espresso(heap_dir)
        person = define_person(jvm)
        jvm.create_heap("h", HEAP_BYTES)
        arr = jvm.pnew_array(person, 2)
        jvm.set_root("a", arr)
        jvm.shutdown()

        jvm2 = Espresso(heap_dir)
        jvm2.load_heap("h")
        klass = jvm2.vm.klass_of(jvm2.get_root("a"))
        assert klass.is_array
        assert klass.element_klass.name == "Person"
        assert klass.element_kind is FieldKind.REF

    def test_segment_exhaustion(self, heap_dir):
        jvm = Espresso(heap_dir)
        jvm.create_heap("h", 64 * 1024)  # tiny: small Klass segment
        with pytest.raises(OutOfMemoryError):
            for i in range(2000):
                klass = jvm.define_class(f"Filler{i}")
                jvm.pnew(klass).close()


class TestFlushApiErrors:
    def test_flush_on_dram_object_rejected(self, mounted):
        person = define_person(mounted)
        volatile = mounted.new(person)
        with pytest.raises(IllegalStateException):
            mounted.flush_field(volatile, "id")
        with pytest.raises(IllegalStateException):
            mounted.flush_object(volatile)

    def test_flush_array_element(self, mounted):
        arr = mounted.pnew_array(FieldKind.INT, 4)
        mounted.array_set(arr, 2, 9)
        mounted.flush_array_element(arr, 2)
        mounted.crash()
        jvm2 = Espresso(mounted.heap_dir)
        jvm2.load_heap("test")
        # The anchor is gone (no root), but the flush path must not error;
        # durability of rooted data is covered in test_crash_allocation.

    def test_flush_reachable_counts(self, mounted):
        from tests.core.conftest import define_node, pnew_list
        node = define_node(mounted)
        head = pnew_list(mounted, node, [1, 2, 3, 4, 5])
        assert mounted.flush_reachable(head) == 5


class TestHeapStats:
    def test_stats_snapshot(self, mounted):
        person = define_person(mounted)
        for i in range(4):
            p = mounted.pnew(person)
            if i == 0:
                mounted.set_root("keep", p)
        stats = mounted.heaps.heap("test").stats()
        assert stats["objects"] == 4
        assert stats["objects_by_class"]["Person"] == 4
        assert stats["roots"] == 1
        assert stats["klasses"] >= 2  # Person + Object
        assert stats["used_words"] > 0
        assert stats["used_words"] + stats["free_words"] \
            == stats["data_words"]
        assert stats["device"]["flushes"] > 0
