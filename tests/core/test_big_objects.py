"""Serialized-compaction tests: big objects, self-overlapping moves.

Objects larger than a GC region (big arrays) force the serialized
per-object protocol with its durable region cursor, and a compaction front
that has caught up with live data forces chunked self-overlapping moves.
These tests crash at every point inside those paths and verify recovery.
"""

import pytest

from repro.api import Espresso
from repro.errors import SimulatedCrash
from repro.runtime.klass import FieldKind, field

HEAP_BYTES = 512 * 1024
REGION_WORDS = 128  # arrays below span many regions


def build_heap(heap_dir, garbage_prefix=10):
    """A heap whose live data includes arrays much larger than a region."""
    jvm = Espresso(heap_dir)
    node = jvm.define_class("Big", [field("value", FieldKind.INT),
                                    field("ref", FieldKind.REF)])
    jvm.create_heap("big", HEAP_BYTES, region_words=REGION_WORDS)
    # A little garbage first, so the arrays must slide left (self-overlap).
    for _ in range(garbage_prefix):
        jvm.pnew(node).close()
    expected = {}
    for k, length in enumerate([300, 500, 900]):  # all > REGION_WORDS
        arr = jvm.pnew_array(FieldKind.INT, length)
        for i in range(length):
            jvm.array_set(arr, i, k * 10000 + i)
        jvm.flush_object(arr)
        jvm.set_root(f"arr{k}", arr)
        expected[f"arr{k}"] = [k * 10000 + i for i in range(length)]
        for _ in range(garbage_prefix):
            jvm.pnew(node).close()
    # An object array referencing boxed values, also spanning regions.
    holder = jvm.pnew_array(jvm.vm.object_klass, 200)
    for i in range(200):
        boxed = jvm.pnew(node)
        jvm.set_field(boxed, "value", i)
        jvm.array_set(holder, i, boxed)
        jvm.flush_object(boxed)
        boxed.close()
    jvm.flush_object(holder)
    jvm.set_root("holder", holder)
    return jvm, expected


def verify(heap_dir, expected):
    from repro.tools.fsck import fsck_heap
    jvm = Espresso(heap_dir)
    _heap, report = jvm.heaps.load_heap_with_report("big")
    structure = fsck_heap(_heap)
    assert structure.clean, structure.errors
    for name, values in expected.items():
        arr = jvm.get_root(name)
        got = [jvm.array_get(arr, i) for i in range(len(values))]
        assert got == values, f"{name} corrupted"
    holder = jvm.get_root("holder")
    for i in range(200):
        assert jvm.get_field(jvm.array_get(holder, i), "value") == i
    return report


def test_gc_moves_big_objects_correctly(tmp_path):
    jvm, expected = build_heap(tmp_path / "h")
    result = jvm.persistent_gc()
    assert result.stats.serialized_regions > 0
    assert result.stats.chunked_moves > 0
    jvm.shutdown()
    verify(tmp_path / "h", expected)


def test_repeated_gc_with_big_objects(tmp_path):
    jvm, expected = build_heap(tmp_path / "h")
    node = jvm.vm.metaspace.lookup("Big")
    for _ in range(3):
        for _ in range(30):
            jvm.pnew(node).close()
        jvm.persistent_gc()
    jvm.shutdown()
    verify(tmp_path / "h", expected)


@pytest.mark.parametrize("site,hit", [
    ("gc.move.recorded", 1),
    ("gc.move.chunk_done", 1),
    ("gc.move.chunk_done", 2),
    ("gc.move.chunk_done", 4),
    ("gc.compact.serial_object_done", 1),
    ("gc.compact.serial_object_done", 3),
])
def test_crash_inside_serialized_protocol(tmp_path, site, hit):
    jvm, expected = build_heap(tmp_path / "h")
    jvm.vm.failpoints.crash_on_hit(site, hit)
    try:
        jvm.persistent_gc()
        crashed = False
    except SimulatedCrash:
        crashed = True
    jvm.vm.failpoints.clear()
    jvm.crash()
    report = verify(tmp_path / "h", expected)
    if crashed:
        assert report.recovery.performed


def test_exhaustive_crash_sweep_big_objects(tmp_path):
    """Crash at every Nth failpoint of a big-object GC (sampled stride)."""
    n = 1
    done = False
    rounds = 0
    while not done and rounds < 120:
        rounds += 1
        subdir = tmp_path / f"round{n}"
        jvm, expected = build_heap(subdir)
        jvm.vm.failpoints.crash_on_global_hit(n)
        try:
            jvm.persistent_gc()
            done = True
        except SimulatedCrash:
            pass
        jvm.vm.failpoints.clear()
        jvm.crash()
        verify(subdir, expected)
        n += 7  # stride: still covers every protocol phase
    assert done, "sweep never completed a full GC"


def test_double_crash_during_chunked_move(tmp_path):
    """Crash mid-move, then crash mid-*recovery* of the same move."""
    jvm, expected = build_heap(tmp_path / "h")
    jvm.vm.failpoints.crash_on_hit("gc.move.chunk_done", 2)
    with pytest.raises(SimulatedCrash):
        jvm.persistent_gc()
    jvm.vm.failpoints.clear()
    jvm.crash()

    jvm2 = Espresso(tmp_path / "h")
    jvm2.vm.failpoints.crash_on_hit("gc.move.chunk_done", 1)
    with pytest.raises(SimulatedCrash):
        jvm2.load_heap("big")
    jvm2.vm.failpoints.clear()
    jvm2.crash()

    verify(tmp_path / "h", expected)
