"""Tests for the Figure 12 reflective flush API and pmultianewarray."""

import pytest

from repro.api import Espresso
from repro.errors import IllegalArgumentException, NoSuchFieldException
from repro.runtime.klass import FieldKind, field

from tests.core.conftest import HEAP_BYTES, define_person


class TestFigure12:
    """The paper's Figure 12 program, line by line."""

    def test_field_flush_pattern(self, mounted):
        jvm = mounted
        person = define_person(jvm)
        # Person x = pnew Person(...);
        x = jvm.pnew(person)
        jvm.set_field(x, "id", 77)
        # Field f = x.getClass().getDeclaredField("id");
        f = jvm.get_declared_field(x, "id")
        # f.flush(x);
        f.flush(x)
        jvm.set_root("x", x)
        jvm.crash()
        jvm2 = Espresso(jvm.heap_dir)
        jvm2.load_heap("test")
        assert jvm2.get_field(jvm2.get_root("x"), "id") == 77

    def test_array_flush_pattern(self, mounted):
        jvm = mounted
        person = define_person(jvm)
        # Person[] z = pnew Person[10];
        z = jvm.pnew_array(person, 10)
        p = jvm.pnew(person)
        jvm.set_field(p, "id", 3)
        jvm.flush_object(p)
        jvm.array_set(z, 3, p)
        # Array.flush(z, 3);
        jvm.flush_array_element(z, 3)
        jvm.set_root("z", z)
        jvm.crash()
        jvm2 = Espresso(jvm.heap_dir)
        jvm2.load_heap("test")
        element = jvm2.array_get(jvm2.get_root("z"), 3)
        assert jvm2.get_field(element, "id") == 3

    def test_reflected_field_get_set(self, mounted):
        person = define_person(mounted)
        x = mounted.pnew(person)
        f = mounted.get_declared_field(x, "id")
        f.set(x, 9)
        assert f.get(x) == 9
        assert mounted.get_field(x, "id") == 9

    def test_unknown_field_rejected(self, mounted):
        person = define_person(mounted)
        x = mounted.pnew(person)
        with pytest.raises(NoSuchFieldException):
            mounted.get_declared_field(x, "nope")

    def test_reflected_field_reusable_across_instances(self, mounted):
        person = define_person(mounted)
        a = mounted.pnew(person)
        b = mounted.pnew(person)
        f = mounted.get_declared_field(a, "id")
        f.set(a, 1)
        f.set(b, 2)
        assert (f.get(a), f.get(b)) == (1, 2)


class TestMultiArray:
    def test_2d_persistent_array(self, mounted):
        grid = mounted.pnew_multi_array(FieldKind.INT, (3, 4))
        assert mounted.array_length(grid) == 3
        for i in range(3):
            row = mounted.array_get(grid, i)
            assert mounted.array_length(row) == 4
            mounted.array_set(row, 2, i * 10)
        assert [mounted.array_get(mounted.array_get(grid, i), 2)
                for i in range(3)] == [0, 10, 20]
        assert mounted.vm.in_pjh(grid.address)
        assert mounted.vm.in_pjh(mounted.array_get(grid, 0).address)

    def test_3d_volatile_array(self, mounted):
        cube = mounted.new_multi_array(FieldKind.INT, (2, 2, 2))
        inner = mounted.array_get(mounted.array_get(cube, 1), 1)
        mounted.array_set(inner, 1, 42)
        assert mounted.array_get(
            mounted.array_get(mounted.array_get(cube, 1), 1), 1) == 42
        assert not mounted.vm.in_pjh(cube.address)

    def test_multi_array_of_refs(self, mounted):
        person = define_person(mounted)
        matrix = mounted.pnew_multi_array(person, (2, 2))
        p = mounted.pnew(person)
        mounted.array_set(mounted.array_get(matrix, 0), 1, p)
        fetched = mounted.array_get(mounted.array_get(matrix, 0), 1)
        assert fetched.same_object(p)

    def test_2d_array_survives_restart(self, mounted):
        grid = mounted.pnew_multi_array(FieldKind.INT, (2, 3))
        for i in range(2):
            row = mounted.array_get(grid, i)
            for j in range(3):
                mounted.array_set(row, j, i * 3 + j)
        mounted.flush_reachable(grid)
        mounted.set_root("grid", grid)
        mounted.crash()
        jvm2 = Espresso(mounted.heap_dir)
        jvm2.load_heap("test")
        grid2 = jvm2.get_root("grid")
        values = [jvm2.array_get(jvm2.array_get(grid2, i), j)
                  for i in range(2) for j in range(3)]
        assert values == list(range(6))

    def test_empty_dims_rejected(self, mounted):
        with pytest.raises(IllegalArgumentException):
            mounted.pnew_multi_array(FieldKind.INT, ())

    def test_multi_array_survives_persistent_gc(self, mounted):
        person = define_person(mounted)
        grid = mounted.pnew_multi_array(FieldKind.INT, (3, 3))
        mounted.array_set(mounted.array_get(grid, 1), 1, 99)
        mounted.set_root("g", grid)
        for _ in range(20):
            mounted.pnew(person).close()
        mounted.persistent_gc()
        assert mounted.array_get(
            mounted.array_get(mounted.get_root("g"), 1), 1) == 99
