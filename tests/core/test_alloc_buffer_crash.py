"""Buffer-tail truncation at recovery (DESIGN.md §17).

Crashes at *every store* inside a partially-filled allocation buffer,
under all three crash fault models.  The buffer is claimed over space a
compacting GC just reclaimed — still littered with stale object images —
so a sloppy tail truncation would resurrect dead objects.  After every
crash the heap must fsck clean, the committed chain must survive intact,
and no garbage stamp may reappear.
"""

import pytest

from repro.api import Espresso, EspressoConfig
from repro.errors import SimulatedCrash
from repro.nvm.device import FaultMode
from repro.runtime.klass import FieldKind, field
from repro.tools.fsck import fsck_heap

BUF_WORDS = 32
GARBAGE = 8
LIVE = 3          # 3 of the buffer's 8 node slots: partially filled


class _StoreBomb:
    """Crash after the N-th store call (write / write_block / fill)."""

    def __init__(self, device, nth):
        self.device = device
        self.remaining = nth

    def _tick(self):
        self.remaining -= 1
        if self.remaining == 0:
            raise SimulatedCrash("injected crash after store")

    def __enter__(self):
        device = self.device
        write, block, fill = device.write, device.write_block, device.fill

        def guarded_write(offset, value):
            write(offset, value)
            self._tick()

        def guarded_block(offset, values):
            block(offset, values)
            self._tick()

        def guarded_fill(offset, count, value=0):
            fill(offset, count, value)
            self._tick()

        device.write = guarded_write
        device.write_block = guarded_block
        device.fill = guarded_fill
        return self

    def __exit__(self, *exc):
        for name in ("write", "write_block", "fill"):
            del self.device.__dict__[name]
        return False


def _config():
    return EspressoConfig(alloc_buffer_words=BUF_WORDS)


def _build(heap_dir):
    """A heap whose reclaimed tail still holds stale garbage images."""
    jvm = Espresso(heap_dir, config=_config())
    node = jvm.define_class("BufNode", [field("v", FieldKind.INT),
                                        field("next", FieldKind.REF)])
    jvm.create_heap("h", 256 * 1024, region_words=128)
    keep = jvm.pnew(node)
    jvm.set_field(keep, "v", 0)
    jvm.flush_reachable(keep)
    jvm.set_root("keep", keep)
    for i in range(GARBAGE):
        dead = jvm.pnew(node)
        jvm.set_field(dead, "v", 1000 + i)
        dead.close()
    jvm.persistent_gc()
    return jvm, node


def _fill_partial_buffer(jvm, node):
    """Allocate into (but never fill) one fresh allocation buffer."""
    keep = jvm.get_root("keep")
    for i in range(1, LIVE + 1):
        n = jvm.pnew(node)
        jvm.set_field(n, "v", i)
        jvm.set_field(n, "next", keep)
        keep = n
        jvm.flush_reachable(keep)
        jvm.set_root("keep", keep)


def _check_recovery(heap_dir, completed):
    jvm = Espresso(heap_dir, config=_config())
    jvm.load_heap("h")
    heap = jvm.heaps.heap("h")
    report = fsck_heap(heap)
    assert report.clean, report.errors
    # The rooted chain is a contiguous committed prefix.
    chain = []
    cursor = jvm.get_root("keep")
    while cursor is not None:
        chain.append(jvm.get_field(cursor, "v"))
        cursor = jvm.get_field(cursor, "next")
    assert chain == list(range(chain[0], -1, -1)), chain
    if completed:
        assert chain[0] == LIVE, chain
    # No resurrected objects: the 1000+ garbage stamps stay dead.  An
    # in-flight allocation may survive with durably-zero fields (pnew
    # only guarantees the header, §3.5), so v=0 can repeat; a written
    # stamp appears at most once.
    values = [jvm.get_field(jvm.vm.handle(address), "v")
              for address in heap.walk()
              if jvm.vm.access.klass_of(address).name == "BufNode"]
    assert all(0 <= v <= LIVE for v in values), sorted(values)
    positive = [v for v in values if v > 0]
    assert len(positive) == len(set(positive)), sorted(values)


@pytest.mark.parametrize("mode", FaultMode.ALL)
def test_crash_at_every_store_in_a_partial_buffer(tmp_path, mode):
    crash_points = 0
    nth = 1
    while True:
        heap_dir = tmp_path / mode / str(nth)
        jvm, node = _build(heap_dir)
        device = jvm.heaps.heap("h").device
        device.set_fault_mode(mode, seed=nth)
        crashed = False
        try:
            with _StoreBomb(device, nth):
                _fill_partial_buffer(jvm, node)
        except SimulatedCrash:
            crashed = True
            crash_points += 1
        jvm.crash()
        _check_recovery(heap_dir, completed=not crashed)
        if not crashed:
            break   # the workload outran the bomb: every boundary crashed
        nth += 1
    assert crash_points > 0
