"""Persistent GC tests: compaction, liveness, cross-heap references."""

import pytest

from repro.api import Espresso
from repro.runtime.klass import FieldKind, field

from tests.core.conftest import (
    HEAP_BYTES,
    define_node,
    define_person,
    pnew_list,
    read_list,
)


class TestCollection:
    def test_garbage_reclaimed(self, mounted):
        person = define_person(mounted)
        keep = mounted.pnew(person)
        mounted.set_root("keep", keep)
        for _ in range(50):
            mounted.pnew(person).close()
        heap = mounted.heaps.heap("test")
        used_before = heap.used_words
        result = mounted.persistent_gc()
        assert heap.used_words < used_before
        assert result.stats.reclaimed_words > 0

    def test_live_graph_survives_compaction(self, mounted):
        node = define_node(mounted)
        head = pnew_list(mounted, node, list(range(40)))
        mounted.set_root("head", head)
        for _ in range(30):
            mounted.pnew(node).close()  # garbage interleaved
        mounted.persistent_gc()
        assert read_list(mounted, head) == list(range(40))

    def test_roots_are_gc_roots(self, mounted):
        node = define_node(mounted)
        head = pnew_list(mounted, node, [1, 2, 3])
        mounted.set_root("head", head)
        head.close()  # only the root-table entry keeps it alive
        mounted.persistent_gc()
        fetched = mounted.get_root("head")
        assert read_list(mounted, fetched) == [1, 2, 3]

    def test_handles_updated_after_compaction(self, mounted):
        person = define_person(mounted)
        garbage_first = [mounted.pnew(person) for _ in range(20)]
        for g in garbage_first:
            g.close()
        survivor = mounted.pnew(person)
        mounted.set_field(survivor, "id", 12)
        before = survivor.address
        mounted.persistent_gc()
        assert survivor.address != before  # it slid down
        assert mounted.get_field(survivor, "id") == 12

    def test_dram_object_keeps_pjh_object_alive(self, mounted):
        """A DRAM holder's reference is a GC root (via the remembered set)."""
        person = define_person(mounted)
        holder_klass = mounted.define_class(
            "Holder", [field("ref", FieldKind.REF)])
        holder = mounted.new(holder_klass)
        target = mounted.pnew(person)
        mounted.set_field(target, "id", 77)
        mounted.set_field(holder, "ref", target)
        target.close()
        mounted.persistent_gc()
        assert mounted.get_field(
            mounted.get_field(holder, "ref"), "id") == 77

    def test_pjh_to_dram_reference_survives_both_gcs(self, mounted):
        """NVM->DRAM pointers are legal (user-guaranteed level) and the
        DRAM full GC fixes them when the DRAM object moves."""
        person = define_person(mounted)
        p = mounted.pnew(person)
        name = mounted.new_string("volatile-name")
        mounted.set_field(p, "name", name)
        name.close()
        mounted.system_gc()   # moves the DRAM string
        mounted.persistent_gc()
        assert mounted.read_string(mounted.get_field(p, "name")) \
            == "volatile-name"

    def test_allocation_triggers_persistent_gc(self, heap_dir):
        jvm = Espresso(heap_dir)
        person = define_person(jvm)
        jvm.create_heap("small", 128 * 1024)
        keep = jvm.pnew(person)
        jvm.set_root("keep", keep)
        collections_before = None
        # Churn garbage well beyond the heap size; GC must kick in.
        for i in range(4000):
            jvm.pnew(person).close()
        assert jvm.get_field(keep, "id") == 0

    def test_gc_persists_survivors(self, heap_dir):
        """Post-GC, moved objects are durable (copy protocol flushes them):
        a crash right after GC loses nothing that was flushed before."""
        jvm = Espresso(heap_dir)
        node = define_node(jvm)
        jvm.create_heap("h", HEAP_BYTES)
        head = pnew_list(jvm, node, [9, 8, 7])
        jvm.flush_reachable(head)
        jvm.set_root("head", head)
        for _ in range(25):
            jvm.pnew(node).close()
        jvm.persistent_gc()
        jvm.crash()
        jvm2 = Espresso(heap_dir)
        jvm2.load_heap("h")
        assert read_list(jvm2, jvm2.get_root("head")) == [9, 8, 7]

    def test_repeated_collections(self, mounted):
        node = define_node(mounted)
        head = pnew_list(mounted, node, list(range(10)))
        mounted.set_root("head", head)
        for round_no in range(5):
            for _ in range(20):
                mounted.pnew(node).close()
            mounted.persistent_gc()
            assert read_list(mounted, head) == list(range(10))

    def test_flushes_counted(self, mounted):
        person = define_person(mounted)
        mounted.set_root("keep", mounted.pnew(person))
        result = mounted.persistent_gc()
        assert result.flushes > 0
        assert result.fences > 0
        assert result.pause_ns > 0

    def test_gc_without_flushes_for_baseline(self, mounted):
        """The §6.4 baseline: clflush disabled, same functional result."""
        from repro.core.pgc import PersistentGC
        node = define_node(mounted)
        head = pnew_list(mounted, node, [1, 2, 3])
        mounted.set_root("head", head)
        for _ in range(10):
            mounted.pnew(node).close()
        heap = mounted.heaps.heap("test")
        flushes_before = heap.device.stats.flushes
        PersistentGC(heap, flush_enabled=False).collect()
        # A handful of flushes may come from allocation paths, none from GC.
        assert heap.device.stats.flushes == flushes_before
        assert read_list(mounted, head) == [1, 2, 3]

    def test_timestamp_advances_per_collection(self, mounted):
        heap = mounted.heaps.heap("test")
        person = define_person(mounted)
        mounted.set_root("keep", mounted.pnew(person))
        ts0 = heap.metadata.global_timestamp
        mounted.persistent_gc()
        ts1 = heap.metadata.global_timestamp
        mounted.persistent_gc()
        ts2 = heap.metadata.global_timestamp
        assert ts1 == ts0 + 1
        assert ts2 == ts1 + 1

    def test_gc_flag_cleared_after_collection(self, mounted):
        person = define_person(mounted)
        mounted.set_root("keep", mounted.pnew(person))
        mounted.persistent_gc()
        assert not mounted.heaps.heap("test").metadata.gc_in_progress
