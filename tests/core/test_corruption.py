"""Checksummed metadata: corrupted images fail loudly, by region.

Every durable control structure (heap metadata geometry, name-table
entries) carries a CRC32.  Flipping one durable word must turn an
arbitrary decode error into a :class:`~repro.errors.CorruptHeapError`
naming the failing region — and salvage mode must recover what it can.
"""

import pytest

from repro.api import Espresso
from repro.core import metadata as md
from repro.core import name_table as nt
from repro.errors import CorruptHeapError, HeapCorruptionError
from repro.runtime.klass import FieldKind, field


def _make_image(tmp_path, with_root=True):
    jvm = Espresso(tmp_path / "h")
    klass = jvm.define_class("Corrupt", [field("v", FieldKind.INT)])
    jvm.create_heap("h", 128 * 1024)
    if with_root:
        obj = jvm.pnew(klass)
        jvm.set_field(obj, "v", 41)
        jvm.flush_reachable(obj)
        jvm.set_root("keep", obj)
    jvm.shutdown()
    return jvm


def _flip(jvm, word, xor=0xFF):
    image = jvm.heaps.names.load_image("h")
    image[word] ^= xor
    jvm.heaps.names.save_image("h", image)


def _load(tmp_path, **kwargs):
    return Espresso(tmp_path / "h").load_heap("h", **kwargs)


class TestMetadataRegions:
    def test_flipped_magic_names_the_region(self, tmp_path):
        jvm = _make_image(tmp_path)
        _flip(jvm, md._MAGIC)
        with pytest.raises(CorruptHeapError) as info:
            _load(tmp_path)
        assert info.value.region == "metadata.magic"

    def test_flipped_version_names_the_region(self, tmp_path):
        jvm = _make_image(tmp_path)
        _flip(jvm, md._VERSION)
        with pytest.raises(CorruptHeapError) as info:
            _load(tmp_path)
        assert info.value.region == "metadata.version"

    @pytest.mark.parametrize("word", [md._HEAP_SIZE, md._NAME_TABLE_OFF,
                                      md._DATA_OFF, md._REGION_WORDS])
    def test_flipped_geometry_word_fails_the_layout_crc(self, tmp_path, word):
        jvm = _make_image(tmp_path)
        _flip(jvm, word)
        with pytest.raises(CorruptHeapError) as info:
            _load(tmp_path)
        assert info.value.region == "metadata.layout"

    def test_flipped_crc_itself_fails_the_layout_check(self, tmp_path):
        jvm = _make_image(tmp_path)
        _flip(jvm, md._LAYOUT_CRC)
        with pytest.raises(CorruptHeapError) as info:
            _load(tmp_path)
        assert info.value.region == "metadata.layout"

    def test_corrupt_heap_error_is_a_heap_corruption_error(self, tmp_path):
        # Callers catching the historical type keep working.
        jvm = _make_image(tmp_path)
        _flip(jvm, md._MAGIC)
        with pytest.raises(HeapCorruptionError):
            _load(tmp_path)


class TestNameTableEntries:
    def _entry_word(self, jvm, index, word):
        image = jvm.heaps.names.load_image("h")
        off = int(image[md._NAME_TABLE_OFF])
        return off + index * nt.ENTRY_WORDS + word

    def _corrupt_root_entry(self, jvm, word):
        image = jvm.heaps.names.load_image("h")
        off = int(image[md._NAME_TABLE_OFF])
        count = int(image[md._NAME_TABLE_CAPACITY])
        for index in range(count):
            entry = off + index * nt.ENTRY_WORDS
            if image[entry + nt._TYPE] == nt.ENTRY_TYPE_ROOT:
                image[entry + word] ^= 0xFF
                jvm.heaps.names.save_image("h", image)
                return index
        raise AssertionError("no root entry found")

    def test_flipped_name_word_raises_by_default(self, tmp_path):
        jvm = _make_image(tmp_path)
        index = self._corrupt_root_entry(jvm, nt._NAME)
        with pytest.raises(CorruptHeapError) as info:
            _load(tmp_path)
        assert info.value.region == f"name_table.entry[{index}]"

    def test_flipped_entry_crc_raises_by_default(self, tmp_path):
        jvm = _make_image(tmp_path)
        index = self._corrupt_root_entry(jvm, nt._CRC)
        with pytest.raises(CorruptHeapError) as info:
            _load(tmp_path)
        assert info.value.region == f"name_table.entry[{index}]"

    def test_salvage_skips_the_bad_entry_and_reports(self, tmp_path):
        jvm = _make_image(tmp_path)
        index = self._corrupt_root_entry(jvm, nt._NAME)
        jvm2 = Espresso(tmp_path / "h")
        heap, report = jvm2.heaps.load_heap_with_report("h", salvage=True)
        assert [i for i, _reason in report.discarded_entries] == [index]
        # The corrupted root is gone; the heap is otherwise usable.
        assert jvm2.get_root("keep") is None

    def test_salvage_keeps_clean_roots(self, tmp_path):
        jvm = _make_image(tmp_path)
        jvm.load_heap("h")
        extra = jvm.pnew("Corrupt")
        jvm.set_field(extra, "v", 7)
        jvm.flush_reachable(extra)
        jvm.set_root("extra", extra)
        jvm.shutdown()
        index = self._corrupt_root_entry(jvm, nt._NAME)  # first root entry
        jvm2 = Espresso(tmp_path / "h")
        heap, report = jvm2.heaps.load_heap_with_report("h", salvage=True)
        assert len(report.discarded_entries) == 1
        assert report.salvaged_roots >= 1
        survivors = {"keep", "extra"} - {
            name for name, _v, _i in heap.name_table.entries(
                nt.ENTRY_TYPE_ROOT)}
        assert len(survivors) == 1  # exactly the corrupted one vanished

    def test_value_updates_do_not_touch_the_crc(self, tmp_path):
        # setRoot rewrites _VALUE in place; the entry CRC must still hold.
        jvm = _make_image(tmp_path)
        jvm.load_heap("h")
        for v in (1, 2, 3):
            obj = jvm.pnew("Corrupt")
            jvm.set_field(obj, "v", v)
            jvm.flush_reachable(obj)
            jvm.set_root("keep", obj)
        jvm.shutdown()
        jvm2 = Espresso(tmp_path / "h")
        heap, report = jvm2.heaps.load_heap_with_report("h")
        assert report.discarded_entries == []
        assert jvm2.get_field(jvm2.get_root("keep"), "v") == 3


class TestLoadReport:
    def test_clean_load_lists_verified_regions(self, tmp_path):
        jvm = _make_image(tmp_path)
        jvm2 = Espresso(tmp_path / "h")
        _heap, report = jvm2.heaps.load_heap_with_report("h")
        for region in ("metadata", "name-table", "klass-segment",
                       "gc-recovery", "data-heap"):
            assert region in report.regions_verified
