"""Tests for the Table 1 heap-management APIs and the load pipeline."""

import pytest

from repro.api import Espresso
from repro.errors import (
    HeapExistsError,
    HeapNotFoundError,
    IllegalArgumentException,
    IllegalStateException,
)
from repro.runtime.klass import FieldKind, field

from tests.core.conftest import HEAP_BYTES, define_person


class TestCreateExists:
    def test_create_and_exists(self, jvm):
        assert not jvm.exists_heap("Jimmy")
        jvm.create_heap("Jimmy", HEAP_BYTES)
        assert jvm.exists_heap("Jimmy")

    def test_duplicate_create_rejected(self, mounted):
        with pytest.raises(HeapExistsError):
            mounted.create_heap("test", HEAP_BYTES)

    def test_load_missing_heap_rejected(self, jvm):
        with pytest.raises(HeapNotFoundError):
            jvm.load_heap("nope")

    def test_tiny_heap_rejected(self, jvm):
        with pytest.raises(IllegalArgumentException):
            jvm.create_heap("tiny", 1024)

    def test_double_load_rejected(self, mounted):
        with pytest.raises(IllegalStateException):
            mounted.load_heap("test")

    def test_multiple_heaps(self, jvm):
        jvm.create_heap("a", HEAP_BYTES)
        jvm.create_heap("b", HEAP_BYTES)
        person = define_person(jvm)
        pa = jvm.pnew(person, heap="a")
        pb = jvm.pnew(person, heap="b")
        assert jvm.heaps.heap("a").contains(pa.address)
        assert jvm.heaps.heap("b").contains(pb.address)
        assert not jvm.heaps.heap("a").contains(pb.address)


class TestRoots:
    def test_set_and_get_root(self, mounted):
        person = define_person(mounted)
        p = mounted.pnew(person)
        mounted.set_field(p, "id", 7)
        mounted.set_root("me", p)
        fetched = mounted.get_root("me")
        assert fetched.same_object(p)
        assert mounted.get_field(fetched, "id") == 7

    def test_get_missing_root_is_none(self, mounted):
        assert mounted.get_root("missing") is None

    def test_root_update(self, mounted):
        person = define_person(mounted)
        a = mounted.pnew(person)
        b = mounted.pnew(person)
        mounted.set_root("r", a)
        mounted.set_root("r", b)
        assert mounted.get_root("r").same_object(b)

    def test_null_root(self, mounted):
        person = define_person(mounted)
        mounted.set_root("r", mounted.pnew(person))
        mounted.set_root("r", None)
        assert mounted.get_root("r") is None


class TestPersistenceAcrossRestart:
    def test_figure11_workflow(self, heap_dir):
        # First run: create heap and objects.
        jvm = Espresso(heap_dir)
        person = define_person(jvm)
        assert not jvm.exists_heap("Jimmy")
        jvm.create_heap("Jimmy", HEAP_BYTES)
        p = jvm.pnew(person)
        jvm.set_field(p, "id", 42)
        jvm.set_field(p, "name", jvm.pnew_string("Jimmy"))
        jvm.set_root("Jimmy_info", p)
        jvm.shutdown()

        # Second run (fresh "JVM process"): load and fetch.
        jvm2 = Espresso(heap_dir)
        define_person(jvm2)
        assert jvm2.exists_heap("Jimmy")
        jvm2.load_heap("Jimmy")
        p2 = jvm2.get_root("Jimmy_info")
        p2 = jvm2.checkcast(p2, "Person")
        assert jvm2.get_field(p2, "id") == 42
        assert jvm2.read_string(jvm2.get_field(p2, "name")) == "Jimmy"

    def test_load_reinitializes_klasses_in_place(self, heap_dir):
        jvm = Espresso(heap_dir)
        person = define_person(jvm)
        jvm.create_heap("h", HEAP_BYTES)
        p = jvm.pnew(person)
        jvm.set_root("p", p)
        klass_addr_before = jvm.vm.access.klass_pointer(p.address)
        jvm.shutdown()

        jvm2 = Espresso(heap_dir)
        _heap, report = jvm2.heaps.load_heap_with_report("h")
        p2 = jvm2.get_root("p")
        # Klass pointers stay valid: reinitialised at the same address.
        assert jvm2.vm.access.klass_pointer(p2.address) == klass_addr_before
        # One user class + its implicit Object superclass.
        assert report.klasses_reinitialized >= 2

    def test_load_without_predefined_classes(self, heap_dir):
        """Objects are usable even if the program never redefines the class."""
        jvm = Espresso(heap_dir)
        person = define_person(jvm)
        jvm.create_heap("h", HEAP_BYTES)
        p = jvm.pnew(person)
        jvm.set_field(p, "id", 5)
        jvm.set_root("p", p)
        jvm.shutdown()

        jvm2 = Espresso(heap_dir)  # note: no define_person here
        jvm2.load_heap("h")
        p2 = jvm2.get_root("p")
        assert jvm2.get_field(p2, "id") == 5
        assert jvm2.vm.klass_of(p2).name == "Person"

    def test_graph_survives_restart(self, heap_dir):
        from tests.core.conftest import define_node, pnew_list, read_list
        jvm = Espresso(heap_dir)
        node = define_node(jvm)
        jvm.create_heap("h", HEAP_BYTES)
        head = pnew_list(jvm, node, list(range(50)))
        jvm.set_root("head", head)
        jvm.shutdown()

        jvm2 = Espresso(heap_dir)
        jvm2.load_heap("h")
        assert read_list(jvm2, jvm2.get_root("head")) == list(range(50))

    def test_unload_and_reload_same_vm(self, mounted):
        person = define_person(mounted)
        p = mounted.pnew(person)
        mounted.set_field(p, "id", 3)
        mounted.set_root("p", p)
        mounted.heaps.unload_heap("test")
        assert "test" not in mounted.heaps.mounted_names()
        mounted.load_heap("test")
        assert mounted.get_field(mounted.get_root("p"), "id") == 3


class TestRemap:
    def test_remap_when_hint_occupied(self, heap_dir):
        from tests.core.conftest import define_node, pnew_list, read_list
        jvm = Espresso(heap_dir)
        node = define_node(jvm)
        jvm.create_heap("first", HEAP_BYTES)
        head = pnew_list(jvm, node, [1, 2, 3, 4, 5])
        arr = jvm.pnew_array(node, 2)
        jvm.array_set(arr, 0, head)
        jvm.set_root("head", head)
        jvm.set_root("arr", arr)
        jvm.shutdown()

        # A fresh VM where another heap occupies the hint address.
        jvm2 = Espresso(heap_dir)
        jvm2.create_heap("squatter", HEAP_BYTES)  # lands on first's hint
        _heap, report = jvm2.heaps.load_heap_with_report("first")
        assert report.remapped
        head2 = jvm2.get_root("head")
        assert read_list(jvm2, head2) == [1, 2, 3, 4, 5]
        arr2 = jvm2.get_root("arr")
        assert jvm2.array_get(arr2, 0).same_object(head2)
        # And the new hint persists: a third VM reloads without remapping.
        jvm2.shutdown()
        jvm3 = Espresso(heap_dir)
        _heap3, report3 = jvm3.heaps.load_heap_with_report("first")
        assert not report3.remapped
        assert read_list(jvm3, jvm3.get_root("head")) == [1, 2, 3, 4, 5]

    def test_no_remap_when_hint_free(self, heap_dir):
        jvm = Espresso(heap_dir)
        jvm.create_heap("h", HEAP_BYTES)
        jvm.shutdown()
        jvm2 = Espresso(heap_dir)
        _heap, report = jvm2.heaps.load_heap_with_report("h")
        assert not report.remapped
