"""Memory-safety level tests (paper §3.4)."""

import pytest

from repro.api import Espresso
from repro.core.safety import SafetyLevel, TypeBasedPolicy
from repro.errors import NullPointerException, UnsafePointerError
from repro.runtime.klass import FieldKind, field

from tests.core.conftest import HEAP_BYTES, define_person


class TestUserGuaranteed:
    def test_stale_volatile_pointer_survives_reload(self, heap_dir):
        """UG level: the dangling pointer is left in place (user's problem)."""
        jvm = Espresso(heap_dir)
        person = define_person(jvm)
        jvm.create_heap("h", HEAP_BYTES)
        p = jvm.pnew(person)
        jvm.set_field(p, "name", jvm.new_string("volatile"))  # DRAM ref
        jvm.flush_object(p)
        jvm.set_root("p", p)
        jvm.shutdown()

        jvm2 = Espresso(heap_dir)
        jvm2.load_heap("h", safety=SafetyLevel.USER_GUARANTEED)
        p2 = jvm2.get_root("p")
        raw = jvm2.vm.access.field_word(
            p2.address, jvm2.vm.klass_of(p2).field_offset("name"))
        assert raw != 0  # stale pointer still there — undefined if used

    def test_no_scan_on_load(self, heap_dir):
        jvm = Espresso(heap_dir)
        define_person(jvm)
        jvm.create_heap("h", HEAP_BYTES)
        jvm.shutdown()
        jvm2 = Espresso(heap_dir)
        _heap, report = jvm2.heaps.load_heap_with_report("h")
        assert report.nullified_pointers == 0


class TestZeroing:
    def test_out_pointers_nullified(self, heap_dir):
        jvm = Espresso(heap_dir)
        person = define_person(jvm)
        jvm.create_heap("h", HEAP_BYTES)
        p = jvm.pnew(person)
        jvm.set_field(p, "name", jvm.new_string("volatile"))
        jvm.flush_object(p)
        jvm.set_root("p", p)
        jvm.shutdown()

        jvm2 = Espresso(heap_dir)
        _heap, report = jvm2.heaps.load_heap_with_report(
            "h", safety=SafetyLevel.ZEROING)
        assert report.nullified_pointers == 1
        p2 = jvm2.get_root("p")
        assert jvm2.get_field(p2, "name") is None  # null, not garbage

    def test_null_check_raises_npe_not_corruption(self, heap_dir):
        """Paper: 'the worst case ... will only get a NullPointerException'."""
        jvm = Espresso(heap_dir)
        person = define_person(jvm)
        jvm.create_heap("h", HEAP_BYTES)
        p = jvm.pnew(person)
        jvm.set_field(p, "name", jvm.new_string("x"))
        jvm.flush_object(p)
        jvm.set_root("p", p)
        jvm.shutdown()

        jvm2 = Espresso(heap_dir)
        jvm2.load_heap("h", safety=SafetyLevel.ZEROING)
        p2 = jvm2.get_root("p")
        with pytest.raises(NullPointerException):
            jvm2.read_string(jvm2.get_field(p2, "name"))

    def test_internal_pointers_kept(self, heap_dir):
        """Zeroing only nullifies pointers that *leave* the PJH."""
        jvm = Espresso(heap_dir)
        person = define_person(jvm)
        jvm.create_heap("h", HEAP_BYTES)
        p = jvm.pnew(person)
        name = jvm.pnew_string("persistent")
        jvm.set_field(p, "name", name)
        jvm.flush_reachable(p)
        jvm.set_root("p", p)
        jvm.shutdown()

        jvm2 = Espresso(heap_dir)
        jvm2.load_heap("h", safety=SafetyLevel.ZEROING)
        p2 = jvm2.get_root("p")
        assert jvm2.read_string(jvm2.get_field(p2, "name")) == "persistent"

    def test_array_out_pointers_nullified(self, heap_dir):
        jvm = Espresso(heap_dir)
        person = define_person(jvm)
        jvm.create_heap("h", HEAP_BYTES)
        arr = jvm.pnew_array(person, 3)
        jvm.array_set(arr, 0, jvm.new(person))    # volatile
        jvm.array_set(arr, 1, jvm.pnew(person))   # persistent
        jvm.flush_object(arr)
        jvm.set_root("arr", arr)
        jvm.shutdown()

        jvm2 = Espresso(heap_dir)
        jvm2.load_heap("h", safety=SafetyLevel.ZEROING)
        arr2 = jvm2.get_root("arr")
        assert jvm2.array_get(arr2, 0) is None
        assert jvm2.array_get(arr2, 1) is not None

    def test_multi_dim_row_out_pointer_nullified(self, heap_dir):
        """A row pointer of a persistent 2-D array that escapes the PJH
        (the row itself lives in DRAM) must be nullified at load."""
        jvm = Espresso(heap_dir)
        person = define_person(jvm)
        jvm.create_heap("h", HEAP_BYTES)
        grid = jvm.pnew_multi_array(person, [2, 2])
        volatile_row = jvm.new_array(person, 2)      # DRAM row
        jvm.array_set(grid, 0, volatile_row)
        jvm.flush_reachable(grid)
        jvm.set_root("grid", grid)
        jvm.shutdown()

        jvm2 = Espresso(heap_dir)
        _heap, report = jvm2.heaps.load_heap_with_report(
            "h", safety=SafetyLevel.ZEROING)
        assert report.nullified_pointers >= 1
        grid2 = jvm2.get_root("grid")
        assert jvm2.array_get(grid2, 0) is None       # escaped row: nulled
        assert jvm2.array_get(grid2, 1) is not None   # persistent row: kept

    def test_nested_array_inner_element_nullified(self, heap_dir):
        """An out-of-PJH pointer buried in an *inner* row of a nested
        array is reached by the scan, not just the outer row slots."""
        jvm = Espresso(heap_dir)
        person = define_person(jvm)
        jvm.create_heap("h", HEAP_BYTES)
        grid = jvm.pnew_multi_array(person, [2, 2])
        row = jvm.array_get(grid, 1)
        jvm.array_set(row, 0, jvm.new(person))        # volatile element
        jvm.array_set(row, 1, jvm.pnew(person))       # persistent element
        jvm.flush_reachable(grid)
        jvm.set_root("grid", grid)
        jvm.shutdown()

        jvm2 = Espresso(heap_dir)
        jvm2.load_heap("h", safety=SafetyLevel.ZEROING)
        row2 = jvm2.array_get(jvm2.get_root("grid"), 1)
        assert jvm2.array_get(row2, 0) is None
        assert jvm2.array_get(row2, 1) is not None

    def test_primitive_array_values_never_zeroed(self, heap_dir):
        """Int payloads that happen to equal out-of-heap addresses are
        data, not pointers — the scan must leave them alone."""
        jvm = Espresso(heap_dir)
        define_person(jvm)
        jvm.create_heap("h", HEAP_BYTES)
        longs = jvm.pnew_array(FieldKind.INT, 4)
        volatile = jvm.new_string("decoy")            # a real DRAM address
        for i in range(4):
            jvm.array_set(longs, i, volatile.address + i)
        jvm.flush_object(longs)
        jvm.set_root("longs", longs)
        jvm.shutdown()

        jvm2 = Espresso(heap_dir)
        _heap, report = jvm2.heaps.load_heap_with_report(
            "h", safety=SafetyLevel.ZEROING)
        assert report.nullified_pointers == 0
        longs2 = jvm2.get_root("longs")
        for i in range(4):
            assert jvm2.array_get(longs2, i) == volatile.address + i

    def test_parallel_zeroing_scan_matches_serial(self, heap_dir):
        """gc_workers only shrinks simulated scan time; the nullified
        count and the resulting durable image are identical."""
        def build(root):
            jvm = Espresso(root)
            person = define_person(jvm)
            jvm.create_heap("h", HEAP_BYTES)
            arr = jvm.pnew_array(person, 8)
            for i in range(8):
                owner = jvm.pnew(person)
                jvm.set_field(owner, "name",
                              jvm.new_string(f"v{i}") if i % 2
                              else jvm.pnew_string(f"p{i}"))
                jvm.array_set(arr, i, owner)
            jvm.flush_reachable(arr)
            jvm.set_root("arr", arr)
            jvm.shutdown()

        images, counts = [], []
        for workers, sub in ((1, "w1"), (8, "w8")):
            root = heap_dir / sub
            build(root)
            jvm2 = Espresso(root, gc_workers=workers)
            heap, report = jvm2.heaps.load_heap_with_report(
                "h", safety=SafetyLevel.ZEROING)
            counts.append(report.nullified_pointers)
            images.append(heap.device.durable_image().tobytes())
        assert counts[0] == counts[1] > 0
        assert images[0] == images[1]


class TestTypeBased:
    def make_jvm(self, heap_dir, allowed):
        jvm = Espresso(heap_dir)
        jvm.create_heap("h", HEAP_BYTES, safety=SafetyLevel.TYPE_BASED)
        heap = jvm.heaps.heap("h")
        assert isinstance(heap.safety, TypeBasedPolicy)
        for name in allowed:
            heap.safety.allow(name)
        return jvm

    def test_unannotated_class_rejected(self, heap_dir):
        jvm = self.make_jvm(heap_dir, allowed=[])
        person = define_person(jvm)
        with pytest.raises(UnsafePointerError):
            jvm.pnew(person)

    def test_annotated_class_allowed(self, heap_dir):
        jvm = self.make_jvm(heap_dir, allowed=["Person", "java.lang.Object"])
        person = define_person(jvm)
        p = jvm.pnew(person)
        assert jvm.heaps.heap("h").contains(p.address)

    def test_volatile_store_rejected(self, heap_dir):
        """No pointer within PJH may point out of it (NV-Heaps invariant)."""
        jvm = self.make_jvm(heap_dir,
                            allowed=["Person", "java.lang.String", "[J",
                                     "java.lang.Object"])
        person = define_person(jvm)
        p = jvm.pnew(person)
        with pytest.raises(UnsafePointerError):
            jvm.set_field(p, "name", jvm.new_string("volatile"))

    def test_persistent_store_allowed(self, heap_dir):
        jvm = self.make_jvm(jvm_dir := heap_dir,
                            allowed=["Person", "java.lang.String", "[J",
                                     "java.lang.Object"])
        person = define_person(jvm)
        p = jvm.pnew(person)
        jvm.set_field(p, "name", jvm.pnew_string("persistent"))
        assert jvm.read_string(jvm.get_field(p, "name")) == "persistent"


class TestTypeBasedArrays:
    """Array allocation paths are vetted through their element class.

    A PJH array of an unannotated class would otherwise become durable
    before the first per-store check could fire; the policy walks the
    element chain at ``pnew_array``/``pnew_multi_array`` time instead.
    """

    def make_jvm(self, heap_dir, allowed):
        jvm = Espresso(heap_dir)
        jvm.create_heap("h", HEAP_BYTES, safety=SafetyLevel.TYPE_BASED)
        heap = jvm.heaps.heap("h")
        for name in allowed:
            heap.safety.allow(name)
        return jvm

    def test_pnew_array_of_unannotated_element_rejected(self, heap_dir):
        jvm = self.make_jvm(heap_dir, allowed=[])
        person = define_person(jvm)
        with pytest.raises(UnsafePointerError):
            jvm.pnew_array(person, 4)

    def test_pnew_array_of_allowed_element_accepted(self, heap_dir):
        jvm = self.make_jvm(heap_dir, allowed=["Person"])
        person = define_person(jvm)
        array = jvm.pnew_array(person, 4)
        assert jvm.heaps.heap("h").contains(array.address)

    def test_pnew_array_of_object_elements_accepted(self, heap_dir):
        """Object[] degrades to per-store checking (no static element)."""
        jvm = self.make_jvm(heap_dir, allowed=[])
        array = jvm.pnew_array(jvm.vm.object_klass, 4)
        assert jvm.heaps.heap("h").contains(array.address)

    def test_pnew_primitive_array_accepted(self, heap_dir):
        jvm = self.make_jvm(heap_dir, allowed=[])
        array = jvm.pnew_array(FieldKind.INT, 8)
        assert jvm.heaps.heap("h").contains(array.address)

    def test_pnew_multi_array_of_unannotated_element_rejected(self, heap_dir):
        jvm = self.make_jvm(heap_dir, allowed=[])
        person = define_person(jvm)
        with pytest.raises(UnsafePointerError):
            jvm.pnew_multi_array(person, (2, 2))

    def test_nested_ref_array_walks_to_leaf_element(self, heap_dir):
        """[[LPerson; is rejected through two array layers."""
        jvm = self.make_jvm(heap_dir, allowed=[])
        person = define_person(jvm)
        inner = jvm.vm.array_klass(person)
        with pytest.raises(UnsafePointerError):
            jvm.pnew_array(inner, 2)

    def test_array_copy_of_volatile_refs_rejected(self, heap_dir):
        """Bulk copies keep the store barrier: DRAM refs cannot leak in."""
        jvm = self.make_jvm(heap_dir,
                            allowed=["Person", "java.lang.Object"])
        person = define_person(jvm)
        src = jvm.new_array(person, 2)  # DRAM array
        jvm.vm.array_set(src, 0, jvm.vm.new(person))
        dst = jvm.pnew_array(person, 2)
        with pytest.raises(UnsafePointerError):
            jvm.vm.array_copy(src, 0, dst, 0, 2)

    def test_array_copy_of_persistent_refs_accepted(self, heap_dir):
        jvm = self.make_jvm(heap_dir,
                            allowed=["Person", "java.lang.Object"])
        person = define_person(jvm)
        src = jvm.pnew_array(person, 2)
        jvm.vm.array_set(src, 0, jvm.pnew(person))
        dst = jvm.pnew_array(person, 2)
        jvm.vm.array_copy(src, 0, dst, 0, 2)
        assert jvm.vm.array_get(dst, 0) is not None
