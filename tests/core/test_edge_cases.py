"""Edge-case tests: huge allocations, corrupt images, handle churn."""

import numpy as np
import pytest

from repro.api import Espresso
from repro.errors import HeapCorruptionError, OutOfMemoryError
from repro.runtime.dram_heap import HeapConfig
from repro.runtime.klass import FieldKind, field


class TestHugeAllocations:
    def test_humongous_dram_array_goes_to_old(self, tmp_path):
        jvm = Espresso(tmp_path / "h",
                       heap_config=HeapConfig(eden_words=512,
                                              survivor_words=256,
                                              old_words=16384))
        big = jvm.vm.new_array(FieldKind.INT, 2000)  # > eden
        assert jvm.vm.heap.old.contains(big.address)
        jvm.array_set(big, 1999, 7)
        jvm.system_gc()
        assert jvm.array_get(big, 1999) == 7

    def test_pjh_allocation_larger_than_free_space(self, tmp_path):
        jvm = Espresso(tmp_path / "h")
        jvm.create_heap("small", 64 * 1024)
        with pytest.raises(OutOfMemoryError):
            jvm.pnew_array(FieldKind.INT, 1_000_000)

    def test_pjh_array_spanning_most_of_the_heap(self, tmp_path):
        jvm = Espresso(tmp_path / "h")
        heap = jvm.create_heap("big", 1024 * 1024)
        capacity = heap.data_space.free_words - 16
        arr = jvm.pnew_array(FieldKind.INT, capacity - 3)
        jvm.array_set(arr, capacity - 4, 42)
        jvm.flush_array_element(arr, capacity - 4)
        jvm.set_root("arr", arr)
        jvm.crash()
        jvm2 = Espresso(tmp_path / "h")
        jvm2.load_heap("big")
        assert jvm2.array_get(jvm2.get_root("arr"), capacity - 4) == 42


class TestCorruptImages:
    def test_zeroed_image_rejected(self, tmp_path):
        jvm = Espresso(tmp_path / "h")
        jvm.create_heap("h", 64 * 1024)
        jvm.shutdown()
        # Overwrite the image with zeros: the magic is gone.
        jvm.heaps.names.save_image("h", np.zeros(8192, dtype=np.int64))
        jvm2 = Espresso(tmp_path / "h")
        with pytest.raises(HeapCorruptionError):
            jvm2.load_heap("h")

    def test_bitflipped_magic_rejected(self, tmp_path):
        jvm = Espresso(tmp_path / "h")
        jvm.create_heap("h", 64 * 1024)
        jvm.shutdown()
        image = jvm.heaps.names.load_image("h")
        image[0] ^= 0xFF
        jvm.heaps.names.save_image("h", image)
        jvm2 = Espresso(tmp_path / "h")
        with pytest.raises(HeapCorruptionError):
            jvm2.load_heap("h")


class TestHandleChurn:
    def test_many_short_lived_handles_recycle_slots(self, tmp_path):
        import gc as pygc
        jvm = Espresso(tmp_path / "h")
        klass = jvm.define_class("Churn", [field("v", FieldKind.INT)])
        keeper = jvm.new(klass)
        for _ in range(3):
            for _ in range(2000):
                jvm.new(klass).close()
            pygc.collect()
        # The table reuses freed slots instead of growing without bound.
        assert len(jvm.vm.handles._slots) < 4000
        assert len(jvm.vm.handles) >= 1  # the keeper survives
        assert jvm.get_field(keeper, "v") == 0

    def test_gc_with_thousands_of_live_handles(self, tmp_path):
        jvm = Espresso(tmp_path / "h")
        klass = jvm.define_class("Churn2", [field("v", FieldKind.INT)])
        handles = []
        for i in range(500):
            h = jvm.new(klass)
            jvm.set_field(h, "v", i)
            handles.append(h)
        jvm.system_gc()
        jvm.system_gc()
        assert [jvm.get_field(h, "v") for h in handles[::50]] \
            == list(range(0, 500, 50))


class TestHeapRemoval:
    def test_remove_heap_frees_name_and_address(self, tmp_path):
        jvm = Espresso(tmp_path / "h")
        heap = jvm.create_heap("gone", 64 * 1024)
        base = heap.base_address
        jvm.heaps.remove_heap("gone")
        assert not jvm.exists_heap("gone")
        # The address range is reusable immediately.
        again = jvm.create_heap("gone", 64 * 1024)
        assert again.base_address == base

    def test_remove_unloaded_heap(self, tmp_path):
        jvm = Espresso(tmp_path / "h")
        jvm.create_heap("x", 64 * 1024)
        jvm.shutdown()
        jvm2 = Espresso(tmp_path / "h")
        jvm2.heaps.remove_heap("x")
        assert not jvm2.exists_heap("x")
