"""Crash-consistent allocation tests (paper §4.1).

Every test crashes the "machine" at a protocol failpoint, reloads the heap
in a fresh JVM and checks the invariants: objects allocated before the
crash window survive intact; the one object caught in the window is
truncated, never left half-interpretable.
"""

import pytest

from repro.api import Espresso
from repro.errors import SimulatedCrash

from tests.core.conftest import HEAP_BYTES, define_person


def build_and_crash(heap_dir, crash_site, crash_hit):
    """Allocate persons until the injected crash fires; return survivors."""
    jvm = Espresso(heap_dir)
    person = define_person(jvm)
    jvm.create_heap("h", HEAP_BYTES)
    anchor = jvm.pnew_array(person, 64)
    jvm.set_root("anchor", anchor)
    jvm.vm.failpoints.crash_on_hit(crash_site, crash_hit)
    created = 0
    try:
        for i in range(40):
            p = jvm.pnew(person)
            jvm.set_field(p, "id", i)
            jvm.flush_field(p, "id")
            jvm.array_set(anchor, i, p)
            jvm.flush_array_element(anchor, i)
            created += 1
    except SimulatedCrash:
        pass
    jvm.vm.failpoints.clear()
    jvm.crash()  # power loss: unflushed lines vanish
    return created


def reload(heap_dir):
    jvm = Espresso(heap_dir)
    jvm.load_heap("h")
    return jvm


@pytest.mark.parametrize("crash_hit", [1, 2, 5, 11])
def test_crash_after_top_persisted(heap_dir, crash_hit):
    """Crash between top-flush and header-flush: trailing object truncated."""
    created = build_and_crash(heap_dir, "pjh.alloc.top_persisted", crash_hit)
    jvm = reload(heap_dir)
    anchor = jvm.get_root("anchor")
    for i in range(created):
        p = jvm.array_get(anchor, i)
        assert p is not None
        assert jvm.get_field(p, "id") == i
    heap = jvm.heaps.heap("h")
    # Heap walk must terminate cleanly despite the torn allocation.
    assert sum(1 for _ in heap.walk()) >= created


@pytest.mark.parametrize("crash_hit", [1, 3, 8])
def test_crash_after_object_persisted(heap_dir, crash_hit):
    """Crash right after init: the object exists, fields at defaults."""
    created = build_and_crash(heap_dir, "pjh.alloc.object_persisted", crash_hit)
    jvm = reload(heap_dir)
    anchor = jvm.get_root("anchor")
    for i in range(created):
        assert jvm.get_field(jvm.array_get(anchor, i), "id") == i


def test_truncation_reported(heap_dir):
    """The torn trailing object is measurably truncated on load."""
    jvm = Espresso(heap_dir)
    person = define_person(jvm)
    jvm.create_heap("h", HEAP_BYTES)
    p = jvm.pnew(person)
    jvm.set_root("keep", p)
    heap = jvm.heaps.heap("h")
    # Hand-roll the crash window: bump + persist top, never init the object.
    size = jvm.vm.klass_of(p).instance_words
    heap.data_space.allocate(size)
    heap.metadata.set_top(heap.data_space.top)
    jvm.crash()

    jvm2 = Espresso(heap_dir)
    _heap, report = jvm2.heaps.load_heap_with_report("h")
    assert report.truncated_words == size
    assert jvm2.get_root("keep") is not None


def test_unflushed_field_lost_flushed_field_survives(heap_dir):
    """The §3.5 contract: only flushed data is durable."""
    jvm = Espresso(heap_dir)
    person = define_person(jvm)
    jvm.create_heap("h", HEAP_BYTES)
    p = jvm.pnew(person)
    jvm.set_root("p", p)
    jvm.set_field(p, "id", 111)
    jvm.flush_field(p, "id")
    jvm.set_field(p, "id", 222)  # never flushed
    jvm.crash()

    jvm2 = Espresso(heap_dir)
    jvm2.load_heap("h")
    assert jvm2.get_field(jvm2.get_root("p"), "id") == 111


def test_flush_object_persists_all_fields(heap_dir):
    jvm = Espresso(heap_dir)
    person = define_person(jvm)
    jvm.create_heap("h", HEAP_BYTES)
    p = jvm.pnew(person)
    name = jvm.pnew_string("alice")
    jvm.flush_reachable(name)
    jvm.set_field(p, "id", 9)
    jvm.set_field(p, "name", name)
    jvm.flush_object(p)
    jvm.set_root("p", p)
    jvm.crash()

    jvm2 = Espresso(heap_dir)
    jvm2.load_heap("h")
    p2 = jvm2.get_root("p")
    assert jvm2.get_field(p2, "id") == 9
    assert jvm2.read_string(jvm2.get_field(p2, "name")) == "alice"


def test_flush_reachable_persists_graph(heap_dir):
    from tests.core.conftest import define_node, pnew_list, read_list
    jvm = Espresso(heap_dir)
    node = define_node(jvm)
    jvm.create_heap("h", HEAP_BYTES)
    head = pnew_list(jvm, node, [5, 6, 7, 8])
    flushed = jvm.flush_reachable(head)
    assert flushed == 4
    jvm.set_root("head", head)
    jvm.crash()

    jvm2 = Espresso(heap_dir)
    jvm2.load_heap("h")
    assert read_list(jvm2, jvm2.get_root("head")) == [5, 6, 7, 8]


def test_root_entry_is_durable_without_explicit_flush(heap_dir):
    """setRoot persists its name-table entry internally."""
    jvm = Espresso(heap_dir)
    person = define_person(jvm)
    jvm.create_heap("h", HEAP_BYTES)
    p = jvm.pnew(person)
    jvm.set_root("p", p)
    jvm.crash()
    jvm2 = Espresso(heap_dir)
    jvm2.load_heap("h")
    assert jvm2.get_root("p") is not None
