"""Unit tests for the DBPersistable layout and value plumbing."""

import pytest

from repro.api import Espresso
from repro.h2.values import SqlType
from repro.jpa import meta_of
from repro.jpab.model import BasicPerson, CollectionPerson, ExtPerson, Node
from repro.pjo.dbpersistable import (
    NULLS_FIELD,
    box_collection,
    box_value,
    column_bit_index,
    dbp_klass,
    get_dbp_column,
    set_dbp_column,
    unbox_collection,
    unbox_value,
)
from repro.runtime.klass import FieldKind, Residence


@pytest.fixture
def jvm(tmp_path):
    vm = Espresso(tmp_path / "heaps")
    vm.create_heap("t", 4 * 1024 * 1024)
    return vm


class TestBoxing:
    def test_box_none(self, jvm):
        assert box_value(jvm, None) is None

    def test_box_int(self, jvm):
        boxed = box_value(jvm, 42)
        assert unbox_value(jvm, boxed, SqlType.BIGINT) == 42
        assert jvm.vm.in_pjh(boxed.address)

    def test_box_bool(self, jvm):
        assert unbox_value(jvm, box_value(jvm, True), SqlType.BOOLEAN) is True

    def test_box_float(self, jvm):
        assert unbox_value(jvm, box_value(jvm, 2.5), SqlType.DOUBLE) == 2.5

    def test_box_string(self, jvm):
        assert unbox_value(jvm, box_value(jvm, "hi"), SqlType.VARCHAR) == "hi"

    def test_boxed_value_is_durable(self, jvm):
        boxed = box_value(jvm, 77)
        jvm.heaps.heap("t").device.crash()
        assert jvm.get_field(boxed, "value") == 77

    def test_box_collection(self, jvm):
        arr = box_collection(jvm, ["a", "b"])
        assert unbox_collection(jvm, arr, SqlType.VARCHAR) == ["a", "b"]
        assert unbox_collection(jvm, None, SqlType.VARCHAR) == []
        assert box_collection(jvm, None) is None

    def test_box_mixed_collection_of_ints(self, jvm):
        arr = box_collection(jvm, [1, 2, 3])
        assert unbox_collection(jvm, arr, SqlType.BIGINT) == [1, 2, 3]


class TestDbpKlass:
    def test_layout_has_nulls_plus_columns(self, jvm):
        klass = dbp_klass(jvm, meta_of(BasicPerson))
        names = [f.name for f in klass.all_fields]
        assert names[0] == NULLS_FIELD
        for column in ("id", "first_name", "last_name", "phone"):
            assert column in names

    def test_primitive_columns_are_inline(self, jvm):
        klass = dbp_klass(jvm, meta_of(BasicPerson))
        assert klass.field_descriptor("id").kind is FieldKind.INT
        assert klass.field_descriptor("phone").kind is FieldKind.REF

    def test_reference_column_is_a_ref(self, jvm):
        klass = dbp_klass(jvm, meta_of(Node))
        assert klass.field_descriptor("next").kind is FieldKind.REF

    def test_collection_field_is_a_ref(self, jvm):
        klass = dbp_klass(jvm, meta_of(CollectionPerson))
        assert klass.field_descriptor("phones").kind is FieldKind.REF

    def test_inheritance_union_in_root_dbp(self, jvm):
        klass = dbp_klass(jvm, meta_of(ExtPerson))
        names = [f.name for f in klass.all_fields]
        assert "salary" in names and "bonus" in names and "DTYPE" in names

    def test_klass_is_cached(self, jvm):
        assert dbp_klass(jvm, meta_of(BasicPerson)) \
            is dbp_klass(jvm, meta_of(BasicPerson))


class TestColumnAccess:
    def test_null_bitmap_roundtrip(self, jvm):
        meta = meta_of(BasicPerson)
        dbp = jvm.pnew(dbp_klass(jvm, meta))
        set_dbp_column(jvm, dbp, meta, "id", SqlType.BIGINT, 5)
        set_dbp_column(jvm, dbp, meta, "phone", SqlType.VARCHAR, None)
        assert get_dbp_column(jvm, dbp, meta, "id", SqlType.BIGINT) == 5
        assert get_dbp_column(jvm, dbp, meta, "phone", SqlType.VARCHAR) is None

    def test_null_then_value_clears_bit(self, jvm):
        meta = meta_of(BasicPerson)
        dbp = jvm.pnew(dbp_klass(jvm, meta))
        set_dbp_column(jvm, dbp, meta, "id", SqlType.BIGINT, None)
        set_dbp_column(jvm, dbp, meta, "id", SqlType.BIGINT, 3)
        assert get_dbp_column(jvm, dbp, meta, "id", SqlType.BIGINT) == 3

    def test_zero_is_not_null(self, jvm):
        """An inline 0 must be distinguishable from SQL NULL."""
        meta = meta_of(BasicPerson)
        dbp = jvm.pnew(dbp_klass(jvm, meta))
        set_dbp_column(jvm, dbp, meta, "id", SqlType.BIGINT, 0)
        assert get_dbp_column(jvm, dbp, meta, "id", SqlType.BIGINT) == 0
        dbp2 = jvm.pnew(dbp_klass(jvm, meta))
        assert get_dbp_column(jvm, dbp2, meta, "id", SqlType.BIGINT) == 0
        set_dbp_column(jvm, dbp2, meta, "id", SqlType.BIGINT, None)
        assert get_dbp_column(jvm, dbp2, meta, "id", SqlType.BIGINT) is None

    def test_bit_indices_are_distinct(self, jvm):
        meta = meta_of(BasicPerson)
        bits = [column_bit_index(meta, name)
                for name, *_ in __import__(
                    "repro.jpa.sql_mapping",
                    fromlist=["schema_columns"]).schema_columns(meta)]
        assert len(set(bits)) == len(bits)
