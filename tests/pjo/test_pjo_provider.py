"""PJO provider tests: JPA's API over PJH, plus the §5 optimisations."""

import pytest

from repro.api import Espresso
from repro.errors import SqlError
from repro.jpa import state_of
from repro.jpab.model import (
    ALL_ENTITIES,
    BasicPerson,
    CollectionPerson,
    ExtEmployee,
    ExtManager,
    ExtPerson,
    Node,
)
from repro.pjo import PjoEntityManager

HEAP_BYTES = 8 * 1024 * 1024


def make_em(heap_dir, **kwargs):
    jvm = Espresso(heap_dir)
    jvm.create_heap("jpab", HEAP_BYTES)
    em = PjoEntityManager(jvm, **kwargs)
    em.create_schema(ALL_ENTITIES)
    return em


@pytest.fixture
def em(tmp_path):
    return make_em(tmp_path / "heaps")


def persist_one(em, obj):
    tx = em.get_transaction()
    tx.begin()
    em.persist(obj)
    tx.commit()
    return obj


class TestApiCompatibility:
    """The same Figure 3 code runs unchanged against the PJO provider."""

    def test_figure3_workflow(self, em):
        tx = em.get_transaction()
        tx.begin()
        em.persist(BasicPerson(1, "Ada", "Lovelace", "+44"))
        tx.commit()
        em.clear()
        found = em.find(BasicPerson, 1)
        assert found.first_name == "Ada"
        assert found.phone == "+44"

    def test_find_missing(self, em):
        assert em.find(BasicPerson, 404) is None

    def test_update(self, em):
        persist_one(em, BasicPerson(1, "Ada", "L", "+44"))
        em.clear()
        tx = em.get_transaction()
        tx.begin()
        p = em.find(BasicPerson, 1)
        p.phone = "+1"
        tx.commit()
        em.clear()
        assert em.find(BasicPerson, 1).phone == "+1"

    def test_remove(self, em):
        persist_one(em, BasicPerson(1, "Ada", "L", "+44"))
        em.clear()
        tx = em.get_transaction()
        tx.begin()
        em.remove(em.find(BasicPerson, 1))
        tx.commit()
        em.clear()
        assert em.find(BasicPerson, 1) is None

    def test_duplicate_pk_rejected(self, em):
        persist_one(em, BasicPerson(1, "Ada", "L", "+44"))
        tx = em.get_transaction()
        tx.begin()
        em.persist(BasicPerson(1, "Bob", "B", "+1"))
        with pytest.raises(SqlError):
            tx.commit()

    def test_inheritance(self, em):
        persist_one(em, ExtPerson(1, "P", "Plain"))
        persist_one(em, ExtEmployee(2, "E", "Emp", 1234.5, "eng"))
        persist_one(em, ExtManager(3, "M", "Mgr", 9999.0, "mgmt", 500.0))
        em.clear()
        assert type(em.find(ExtPerson, 1)) is ExtPerson
        e = em.find(ExtPerson, 2)
        assert type(e) is ExtEmployee and e.salary == 1234.5
        m = em.find(ExtPerson, 3)
        assert type(m) is ExtManager and m.bonus == 500.0

    def test_collections(self, em):
        persist_one(em, CollectionPerson(1, "C", ["a", "b"]))
        em.clear()
        found = em.find(CollectionPerson, 1)
        assert found.phones == ["a", "b"]

    def test_collection_update(self, em):
        persist_one(em, CollectionPerson(1, "C", ["a"]))
        em.clear()
        tx = em.get_transaction()
        tx.begin()
        c = em.find(CollectionPerson, 1)
        c.phones = list(c.phones) + ["b"]
        tx.commit()
        em.clear()
        assert em.find(CollectionPerson, 1).phones == ["a", "b"]

    def test_references(self, em):
        tx = em.get_transaction()
        tx.begin()
        a = Node(1, "a")
        b = Node(2, "b", next=a)
        em.persist(b)
        tx.commit()
        em.clear()
        loaded = em.find(Node, 2)
        assert loaded.next.name == "a"

    def test_no_transformation_cost(self, em):
        """The whole point: the SQL transformation phase is removed."""
        persist_one(em, BasicPerson(1, "Ada", "L", "+44"))
        breakdown = em.clock.breakdown()
        assert breakdown.get("transformation", 0) == 0
        assert breakdown.get("database", 0) > 0


class TestDurability:
    def test_entities_survive_restart(self, tmp_path):
        heap_dir = tmp_path / "heaps"
        em = make_em(heap_dir)
        persist_one(em, BasicPerson(1, "Ada", "Lovelace", "+44"))
        persist_one(em, CollectionPerson(2, "C", ["x", "y"]))
        em.jvm.shutdown()

        jvm2 = Espresso(heap_dir)
        jvm2.load_heap("jpab")
        em2 = PjoEntityManager(jvm2)
        found = em2.find(BasicPerson, 1)
        assert found.last_name == "Lovelace"
        assert em2.find(CollectionPerson, 2).phones == ["x", "y"]

    def test_entities_survive_crash(self, tmp_path):
        heap_dir = tmp_path / "heaps"
        em = make_em(heap_dir)
        persist_one(em, BasicPerson(1, "Ada", "Lovelace", "+44"))
        em.jvm.crash()  # power loss, not graceful

        jvm2 = Espresso(heap_dir)
        jvm2.load_heap("jpab")
        em2 = PjoEntityManager(jvm2)
        found = em2.find(BasicPerson, 1)
        assert found is not None and found.first_name == "Ada"

    def test_references_survive_restart(self, tmp_path):
        heap_dir = tmp_path / "heaps"
        em = make_em(heap_dir)
        tx = em.get_transaction()
        tx.begin()
        em.persist(Node(2, "b", next=Node(1, "a")))
        tx.commit()
        em.jvm.shutdown()

        jvm2 = Espresso(heap_dir)
        jvm2.load_heap("jpab")
        em2 = PjoEntityManager(jvm2)
        assert em2.find(Node, 2).next.name == "a"


class TestOptimisations:
    def test_dedup_redirects_reads_to_persistent_copy(self, em):
        p = persist_one(em, BasicPerson(1, "Ada", "L", "+44"))
        state = state_of(p)
        assert "first_name" in state.deduplicated_fields
        # The volatile copy is gone; the read comes from PJH.
        assert "first_name" not in p.__dict__
        assert p.first_name == "Ada"

    def test_dedup_copy_on_write(self, em):
        p = persist_one(em, BasicPerson(1, "Ada", "L", "+44"))
        p.phone = "+99"  # shadow, non-persistent copy-on-write field
        state = state_of(p)
        assert "phone" not in state.deduplicated_fields
        assert p.phone == "+99"
        # Unmodified fields still read through.
        assert p.first_name == "Ada"

    def test_dedup_disabled(self, tmp_path):
        em = make_em(tmp_path / "heaps", deduplication=False)
        p = persist_one(em, BasicPerson(1, "Ada", "L", "+44"))
        assert "first_name" in p.__dict__

    def test_field_tracking_limits_writes(self, tmp_path):
        """With tracking, an update ships only the dirty field."""
        em_tracked = make_em(tmp_path / "a", field_tracking=True,
                             deduplication=False)
        em_full = make_em(tmp_path / "b", field_tracking=False,
                          deduplication=False)

        def update_cost(em):
            persist_one(em, BasicPerson(1, "Ada", "L", "+44"))
            em.clear()
            tx = em.get_transaction()
            tx.begin()
            p = em.find(BasicPerson, 1)
            start = em.clock.now_ns
            p.phone = "+1"
            tx.commit()
            return em.clock.now_ns - start

        assert update_cost(em_tracked) < update_cost(em_full)
