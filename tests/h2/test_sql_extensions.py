"""Tests for the extended SQL surface: aggregates, LIKE, BETWEEN,
DISTINCT, LIMIT/OFFSET."""

import pytest

from repro.errors import SqlError
from repro.h2.engine import Database


@pytest.fixture
def db():
    database = Database(size_words=1 << 19)
    database.execute("CREATE TABLE emp (id BIGINT PRIMARY KEY, "
                     "name VARCHAR, dept VARCHAR, salary DOUBLE)")
    rows = [
        (1, "ada", "eng", 120.0),
        (2, "bob", "eng", 100.0),
        (3, "carol", "sales", 90.0),
        (4, "dave", "sales", None),
        (5, "erin", "eng", 110.0),
    ]
    for row in rows:
        database.execute("INSERT INTO emp VALUES (?, ?, ?, ?)", row)
    return database


class TestAggregates:
    def test_count_star_counts_rows(self, db):
        assert db.execute("SELECT COUNT(*) FROM emp").scalar() == 5

    def test_count_column_skips_nulls(self, db):
        assert db.execute("SELECT COUNT(salary) FROM emp").scalar() == 4

    def test_sum_avg(self, db):
        rs = db.execute("SELECT SUM(salary), AVG(salary) FROM emp")
        assert rs.rows[0] == (420.0, 105.0)
        assert rs.columns == ["SUM(salary)", "AVG(salary)"]

    def test_min_max(self, db):
        rs = db.execute("SELECT MIN(salary), MAX(salary) FROM emp")
        assert rs.rows[0] == (90.0, 120.0)

    def test_aggregate_with_where(self, db):
        assert db.execute(
            "SELECT SUM(salary) FROM emp WHERE dept = 'eng'").scalar() == 330.0

    def test_aggregate_over_empty_set_is_null(self, db):
        rs = db.execute("SELECT SUM(salary), MIN(salary), COUNT(salary) "
                        "FROM emp WHERE dept = 'nothing'")
        assert rs.rows[0] == (None, None, 0)

    def test_sum_star_rejected(self, db):
        with pytest.raises(SqlError):
            db.execute("SELECT SUM(*) FROM emp")

    def test_mixed_aggregate_and_column_rejected(self, db):
        with pytest.raises(SqlError):
            db.execute("SELECT name, COUNT(*) FROM emp")


class TestLike:
    def test_prefix(self, db):
        rs = db.execute("SELECT name FROM emp WHERE name LIKE 'a%'")
        assert rs.rows == [("ada",)]

    def test_contains(self, db):
        rs = db.execute("SELECT name FROM emp WHERE name LIKE '%a%' "
                        "ORDER BY name")
        assert [r[0] for r in rs.rows] == ["ada", "carol", "dave"]

    def test_underscore(self, db):
        rs = db.execute("SELECT name FROM emp WHERE name LIKE '_ob'")
        assert rs.rows == [("bob",)]

    def test_not_like(self, db):
        rs = db.execute("SELECT COUNT(*) FROM emp WHERE dept NOT LIKE 'eng'")
        assert rs.scalar() == 2

    def test_like_null_never_matches(self, db):
        db.execute("INSERT INTO emp VALUES (6, NULL, 'x', 1.0)")
        assert db.execute(
            "SELECT COUNT(*) FROM emp WHERE name LIKE '%'").scalar() == 5

    def test_regex_metacharacters_are_literal(self, db):
        db.execute("INSERT INTO emp VALUES (7, 'a.c', 'x', 1.0)")
        db.execute("INSERT INTO emp VALUES (8, 'abc', 'x', 1.0)")
        rs = db.execute("SELECT name FROM emp WHERE name LIKE 'a.c'")
        assert rs.rows == [("a.c",)]  # the dot is not a regex wildcard


class TestBetween:
    def test_between_inclusive(self, db):
        rs = db.execute("SELECT COUNT(*) FROM emp "
                        "WHERE salary BETWEEN 100 AND 120")
        assert rs.scalar() == 3

    def test_not_between(self, db):
        rs = db.execute("SELECT name FROM emp "
                        "WHERE salary NOT BETWEEN 100 AND 120")
        assert rs.rows == [("carol",)]  # NULL salary excluded too

    def test_between_with_params(self, db):
        rs = db.execute("SELECT COUNT(*) FROM emp WHERE id BETWEEN ? AND ?",
                        (2, 4))
        assert rs.scalar() == 3


class TestDistinctOffset:
    def test_distinct(self, db):
        rs = db.execute("SELECT DISTINCT dept FROM emp ORDER BY dept")
        assert rs.rows == [("eng",), ("sales",)]

    def test_limit_offset_pagination(self, db):
        page1 = db.execute("SELECT id FROM emp ORDER BY id LIMIT 2")
        page2 = db.execute("SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 2")
        page3 = db.execute("SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 4")
        assert [r[0] for r in page1.rows] == [1, 2]
        assert [r[0] for r in page2.rows] == [3, 4]
        assert [r[0] for r in page3.rows] == [5]

    def test_offset_beyond_end(self, db):
        rs = db.execute("SELECT id FROM emp LIMIT 10 OFFSET 100")
        assert rs.rows == []

    def test_aggregates_respect_where_not_limit(self, db):
        # Aggregation happens after LIMIT slicing, like our matches pipeline:
        rs = db.execute("SELECT COUNT(*) FROM emp LIMIT 1")
        assert rs.scalar() == 5  # LIMIT applies to result rows, not inputs
