"""SQL lexer tests."""

import pytest

from repro.errors import SqlError
from repro.h2.tokenizer import TokenType, tokenize


def kinds(sql):
    return [(t.type, t.text) for t in tokenize(sql)][:-1]  # drop EOF


def test_keywords_uppercased():
    assert kinds("select from") == [(TokenType.KEYWORD, "SELECT"),
                                    (TokenType.KEYWORD, "FROM")]


def test_identifiers_keep_case():
    assert kinds("Person") == [(TokenType.IDENT, "Person")]


def test_numbers():
    assert kinds("1 2.5 1e3 2.5E-2") == [
        (TokenType.NUMBER, "1"), (TokenType.NUMBER, "2.5"),
        (TokenType.NUMBER, "1e3"), (TokenType.NUMBER, "2.5E-2")]


def test_string_with_escaped_quote():
    assert kinds("'it''s'") == [(TokenType.STRING, "it's")]


def test_unterminated_string():
    with pytest.raises(SqlError):
        tokenize("'oops")


def test_two_char_operators():
    assert kinds("<= >= <> !=") == [
        (TokenType.OPERATOR, "<="), (TokenType.OPERATOR, ">="),
        (TokenType.OPERATOR, "<>"), (TokenType.OPERATOR, "!=")]


def test_params():
    assert kinds("? ?") == [(TokenType.PARAM, "?"), (TokenType.PARAM, "?")]


def test_comments_skipped():
    assert kinds("SELECT -- comment\n1") == [
        (TokenType.KEYWORD, "SELECT"), (TokenType.NUMBER, "1")]


def test_unexpected_character():
    with pytest.raises(SqlError):
        tokenize("SELECT @")


def test_charges_clock():
    from repro.nvm.clock import Clock
    clock = Clock()
    tokenize("SELECT * FROM t", clock)
    assert clock.now_ns > 0
