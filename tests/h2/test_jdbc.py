"""Tests for the JDBC-shaped driver facade."""

import pytest

from repro.errors import IllegalArgumentException
from repro.h2.engine import Database
from repro.h2.jdbc import connect


@pytest.fixture
def conn():
    database = Database(size_words=1 << 18)
    database.execute("CREATE TABLE t (id BIGINT PRIMARY KEY, v VARCHAR)")
    return connect(database)


class TestStatements:
    def test_plain_statement(self, conn):
        statement = conn.create_statement()
        statement.execute("INSERT INTO t VALUES (1, 'x')")
        rs = statement.execute("SELECT v FROM t WHERE id = 1")
        assert rs.scalar() == "x"

    def test_prepared_statement_params_are_one_based(self, conn):
        ps = conn.prepare_statement("INSERT INTO t VALUES (?, ?)")
        ps.set_param(1, 5)
        ps.set_param(2, "five")
        assert ps.execute_update() == 1
        query = conn.prepare_statement("SELECT v FROM t WHERE id = ?")
        query.set_param(1, 5)
        assert query.execute_query().scalar() == "five"

    def test_zero_based_param_rejected(self, conn):
        ps = conn.prepare_statement("INSERT INTO t VALUES (?, ?)")
        with pytest.raises(IllegalArgumentException):
            ps.set_param(0, 1)

    def test_clear_parameters(self, conn):
        ps = conn.prepare_statement("INSERT INTO t VALUES (?, ?)")
        ps.set_param(1, 1)
        ps.set_param(2, "a")
        ps.execute()
        ps.clear_parameters()
        ps.set_param(1, 2)
        ps.set_param(2, "b")
        ps.execute()
        rs = conn.create_statement().execute("SELECT COUNT(*) FROM t")
        assert rs.scalar() == 2

    def test_reexecute_prepared(self, conn):
        ps = conn.prepare_statement("INSERT INTO t VALUES (?, 'same')")
        for i in range(3):
            ps.set_param(1, i)
            ps.execute()
        rs = conn.create_statement().execute(
            "SELECT COUNT(*) FROM t WHERE v = 'same'")
        assert rs.scalar() == 3


class TestTransactionControl:
    def test_autocommit_off_then_commit(self, conn):
        conn.set_auto_commit(False)
        conn.create_statement().execute("INSERT INTO t VALUES (1, 'a')")
        conn.commit()
        db2 = conn.database.crash()
        assert db2.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_autocommit_off_then_rollback(self, conn):
        conn.set_auto_commit(False)
        conn.create_statement().execute("INSERT INTO t VALUES (1, 'a')")
        conn.rollback()
        conn.commit()  # close the implicit follow-up transaction
        assert conn.database.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_close_rolls_back_open_transaction(self, conn):
        conn.set_auto_commit(False)
        conn.create_statement().execute("INSERT INTO t VALUES (1, 'a')")
        conn.close()
        assert conn.database.execute("SELECT COUNT(*) FROM t").scalar() == 0
