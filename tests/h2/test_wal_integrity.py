"""Checksummed WAL records and torn-tail handling.

A torn or bit-flipped record must stop replay at the tear — never feed
garbage into the redo/undo passes — and the scan must report how much of
the log it refused to trust.
"""

import pytest

from repro.h2.engine import Database
from repro.h2.wal import (
    REC_BEGIN,
    REC_COMMIT,
    REC_WRITE,
    WalRecovery,
    WalScan,
    WriteAheadLog,
)
from repro.nvm.checksum import crc32_words


def _populated_db():
    db = Database(size_words=1 << 18)
    db.execute("CREATE TABLE t (k BIGINT PRIMARY KEY, v VARCHAR)")
    for i in range(4):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
    return db


def _record_offsets(wal: WriteAheadLog):
    """Device-relative (start, length) of each well-formed record."""
    spans = []
    cursor = 0
    used = wal.used
    while cursor < used:
        total = wal._record_extent(cursor, used)
        if total is None:
            break
        spans.append((wal._data + cursor, total))
        cursor += total
    return spans


class TestScanReport:
    def test_clean_log_has_no_discards(self):
        db = _populated_db()
        report = db.wal.scan_with_report()
        assert isinstance(report, WalScan)
        assert report.discarded_records == 0
        assert report.torn_words == 0
        assert {r[0] for r in report.records} >= {REC_BEGIN, REC_WRITE,
                                                  REC_COMMIT}

    def test_flipped_crc_stops_the_scan_and_counts_the_rest(self):
        db = _populated_db()
        spans = _record_offsets(db.wal)
        assert len(spans) >= 6
        victim = len(spans) // 2
        start, length = spans[victim]
        db.device.write(start + length - 1,
                        db.device.read(start + length - 1) ^ 0xFF)
        report = db.wal.scan_with_report()
        assert len(report.records) == victim
        assert report.discarded_records == len(spans) - victim
        assert report.torn_words > 0

    def test_flipped_payload_word_is_caught_too(self):
        db = _populated_db()
        spans = _record_offsets(db.wal)
        start, _length = spans[2]
        db.device.write(start + 1, db.device.read(start + 1) ^ 0x1)
        report = db.wal.scan_with_report()
        assert len(report.records) == 2
        assert report.discarded_records >= 1

    def test_zeroed_tail_is_torn_words_not_records(self):
        db = _populated_db()
        wal = db.wal
        # Claim 7 more words than were ever written: a lying `used`
        # counter over a zeroed region.
        wal._set_used(wal.used + 7)
        report = wal.scan_with_report()
        assert report.discarded_records == 0  # zeros are not record-shaped
        assert report.torn_words == 7


class TestRecovery:
    def test_recover_reports_discards_and_still_replays_prefix(self):
        db = _populated_db()
        spans = _record_offsets(db.wal)
        start, length = spans[-1]
        db.device.write(start + length - 1,
                        db.device.read(start + length - 1) ^ 0xFF)
        db.device.persist_all()
        result = db.wal.recover()
        assert isinstance(result, WalRecovery)
        assert result.discarded_records == 1
        assert result.redone > 0  # the intact prefix was replayed

    def test_database_exposes_both_shapes(self):
        db = _populated_db()
        db2 = db.crash()
        assert isinstance(db2.recovery_stats, tuple)
        assert len(db2.recovery_stats) == 2  # the legacy shape
        assert db2.recovery_stats == (db2.wal_recovery.redone,
                                      db2.wal_recovery.undone)
        assert db2.wal_recovery.discarded_records == 0

    def test_corrupt_commit_record_undoes_its_transaction(self):
        db = _populated_db()
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (50, 'doomed')")
        db.execute("COMMIT")
        spans = _record_offsets(db.wal)
        start, length = spans[-1]  # the COMMIT of the last transaction
        assert db.device.read(start) == REC_COMMIT
        db.device.write(start + length - 1,
                        db.device.read(start + length - 1) ^ 0xFF)
        db.device.persist_all()
        db2 = db.crash()
        # Without its COMMIT the transaction is unfinished: undone.
        rows = dict(db2.execute("SELECT k, v FROM t").rows)
        assert 50 not in rows
        assert db2.wal_recovery.undone > 0
        assert db2.wal_recovery.discarded_records == 1


class TestAppendOrdering:
    def test_every_record_carries_a_valid_crc(self):
        db = _populated_db()
        wal = db.wal
        for start, length in _record_offsets(wal):
            body = wal.device.read_block(start, length - 1)
            assert wal.device.read(start + length - 1) == crc32_words(body)
