"""Unit tests for the page manager, row store, WAL and catalog."""

import numpy as np
import pytest

from repro.errors import SqlError
from repro.h2.ast_nodes import ColumnDef
from repro.h2.catalog import Catalog, TableDef
from repro.h2.engine import Database
from repro.h2.storage import NO_PAGE, PageManager, TableStorage
from repro.h2.values import SqlType
from repro.h2.wal import REC_COMMIT, REC_WRITE, WriteAheadLog


@pytest.fixture
def db():
    return Database(size_words=1 << 18, page_words=128)


def make_table(db, name="t"):
    db.execute(f"CREATE TABLE {name} (id BIGINT PRIMARY KEY, s VARCHAR)")
    return db.storages[name.lower()], db.catalog.get(name)


class TestPageManager:
    def test_pages_are_disjoint(self, db):
        db.begin()
        tx = db.txman.current
        a = db.pages.allocate(tx)
        b = db.pages.allocate(tx)
        db.commit()
        assert a != b
        assert abs(db.pages.page_offset(a) - db.pages.page_offset(b)) \
            >= db.pages.page_words

    def test_exhaustion(self):
        db = Database(size_words=1 << 15, page_words=512, wal_words=4096,
                      catalog_words=2048)
        db.begin()
        tx = db.txman.current
        with pytest.raises(SqlError):
            for _ in range(1000):
                db.pages.allocate(tx)


class TestRowStore:
    def test_insert_read_roundtrip(self, db):
        storage, _ = make_table(db)
        db.begin()
        rid = storage.insert(db.txman.current, [1, "hello"])
        db.commit()
        assert storage.read_row(rid) == [1, "hello"]

    def test_scan_order(self, db):
        storage, _ = make_table(db)
        db.begin()
        for i in range(5):
            storage.insert(db.txman.current, [i, f"row{i}"])
        db.commit()
        assert [rid for rid, _ in storage.scan()] == [1, 2, 3, 4, 5]

    def test_delete_hides_row(self, db):
        storage, _ = make_table(db)
        db.begin()
        rid = storage.insert(db.txman.current, [1, "x"])
        assert storage.delete(db.txman.current, rid)
        assert not storage.delete(db.txman.current, rid)
        db.commit()
        assert storage.read_row(rid) is None
        assert storage.row_count() == 0

    def test_update_in_place_when_it_fits(self, db):
        storage, _ = make_table(db)
        db.begin()
        rid = storage.insert(db.txman.current, [1, "abcdefgh"])
        locator_before = storage.locators[rid]
        storage.update(db.txman.current, rid, [1, "xy"])
        db.commit()
        assert storage.locators[rid] == locator_before
        assert storage.read_row(rid) == [1, "xy"]

    def test_update_relocates_when_it_grows(self, db):
        storage, _ = make_table(db)
        db.begin()
        rid = storage.insert(db.txman.current, [1, "s"])
        storage.insert(db.txman.current, [2, "blocker"])
        storage.update(db.txman.current, rid, [1, "much longer than before" * 3])
        db.commit()
        assert storage.read_row(rid) == [1, "much longer than before" * 3]
        assert storage.row_count() == 2

    def test_rows_span_pages(self, db):
        storage, _ = make_table(db)
        db.begin()
        for i in range(60):  # page_words=128: a handful of rows per page
            storage.insert(db.txman.current, [i, f"padding-{i:04d}"])
        db.commit()
        assert storage.row_count() == 60
        assert sorted(rid for rid, _ in storage.scan()) == list(range(1, 61))

    def test_refresh_rebuilds_volatile_state(self, db):
        storage, table = make_table(db)
        db.begin()
        for i in range(10):
            storage.insert(db.txman.current, [i, "v"])
        db.commit()
        fresh = TableStorage(table, db.pages)
        assert fresh.row_count() == 10
        assert fresh.next_row_id == storage.next_row_id

    def test_oversized_row_rejected(self, db):
        storage, _ = make_table(db)
        db.begin()
        with pytest.raises(SqlError):
            storage.insert(db.txman.current, [1, "x" * 5000])
        db.rollback()

    def test_not_null_enforced(self, db):
        db.execute("CREATE TABLE nn (id BIGINT PRIMARY KEY, v INT NOT NULL)")
        with pytest.raises(SqlError):
            db.execute("INSERT INTO nn VALUES (1, NULL)")


class TestWal:
    def test_scan_parses_records(self, db):
        db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        records = db.wal.scan()
        types = [r[0] for r in records]
        assert REC_WRITE in types
        assert REC_COMMIT in types

    def test_checkpoint_truncates(self, db):
        db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY)")
        assert db.wal.used > 0
        db.checkpoint()
        assert db.wal.used == 0
        assert db.wal.scan() == []

    def test_recover_is_idempotent(self, db):
        db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        db2 = db.crash()
        db3 = db2.crash()  # recover twice
        assert db3.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_wal_overflow_detected(self):
        db = Database(size_words=1 << 17, wal_words=256)
        db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY, v VARCHAR)")
        db.checkpoint()
        with pytest.raises(SqlError):
            db.begin()
            for i in range(100):
                db.execute("INSERT INTO t VALUES (?, ?)", (i, "x" * 40))


class TestCatalog:
    def test_persisted_across_reopen(self, db):
        db.execute("CREATE TABLE a (x INT PRIMARY KEY)")
        db.execute("CREATE TABLE b (y VARCHAR)")
        db2 = db.crash()
        assert db2.catalog.exists("a")
        assert db2.catalog.exists("b")
        assert db2.catalog.get("a").columns[0].primary_key

    def test_drop_is_persistent(self, db):
        db.execute("CREATE TABLE a (x INT PRIMARY KEY)")
        db.execute("DROP TABLE a")
        db2 = db.crash()
        assert not db2.catalog.exists("a")

    def test_column_metadata_roundtrip(self, db):
        db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY, "
                   "name VARCHAR NOT NULL, score DOUBLE, ok BOOLEAN)")
        table = db.crash().catalog.get("t")
        kinds = [c.sql_type for c in table.columns]
        assert kinds == [SqlType.BIGINT, SqlType.VARCHAR, SqlType.DOUBLE,
                        SqlType.BOOLEAN]
        assert table.columns[1].not_null
        assert table.primary_key_index == 0
