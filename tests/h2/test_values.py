"""Unit + property tests for SQL value typing and row encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SqlError
from repro.h2.values import (
    SqlType,
    decode_value,
    encode_value,
    sql_literal,
    validate,
)


class TestTypeParsing:
    def test_aliases(self):
        assert SqlType.parse("int") is SqlType.INTEGER
        assert SqlType.parse("LONG") is SqlType.BIGINT
        assert SqlType.parse("Float") is SqlType.DOUBLE
        assert SqlType.parse("text") is SqlType.VARCHAR
        assert SqlType.parse("bool") is SqlType.BOOLEAN

    def test_unknown_type(self):
        with pytest.raises(SqlError):
            SqlType.parse("BLOB")


class TestValidation:
    def test_null_always_allowed(self):
        for sql_type in SqlType:
            assert validate(None, sql_type) is None

    def test_integral_coercion(self):
        assert validate(5, SqlType.BIGINT) == 5
        assert validate(5.0, SqlType.INTEGER) == 5

    def test_fractional_float_into_int_rejected(self):
        with pytest.raises(SqlError):
            validate(5.5, SqlType.INTEGER)

    def test_bool_is_not_a_number(self):
        with pytest.raises(SqlError):
            validate(True, SqlType.BIGINT)
        with pytest.raises(SqlError):
            validate(False, SqlType.DOUBLE)

    def test_int_to_double(self):
        value = validate(3, SqlType.DOUBLE)
        assert value == 3.0 and isinstance(value, float)

    def test_string_typing(self):
        assert validate("x", SqlType.VARCHAR) == "x"
        with pytest.raises(SqlError):
            validate(5, SqlType.VARCHAR)

    def test_boolean_from_01(self):
        assert validate(1, SqlType.BOOLEAN) is True
        assert validate(0, SqlType.BOOLEAN) is False
        with pytest.raises(SqlError):
            validate(2, SqlType.BOOLEAN)


class TestLiterals:
    def test_null(self):
        assert sql_literal(None) == "NULL"

    def test_booleans(self):
        assert sql_literal(True) == "TRUE"
        assert sql_literal(False) == "FALSE"

    def test_string_escaping(self):
        assert sql_literal("it's") == "'it''s'"

    def test_numbers(self):
        assert sql_literal(5) == "5"
        assert sql_literal(-2.5) == "-2.5"


class TestEncoding:
    @pytest.mark.parametrize("value", [
        None, 0, 1, -1, 2**62, -(2**62), 0.0, -1.5, 3.14159,
        True, False, "", "a", "hello world", "exactly8", "ninechars",
        "unicode: café ☕", "x" * 100,
    ])
    def test_roundtrip(self, value):
        words = encode_value(value)
        decoded, consumed = decode_value(words, 0)
        assert decoded == value
        assert type(decoded) is type(value)
        assert consumed == len(words)

    def test_consecutive_values(self):
        words = encode_value(42) + encode_value("hi") + encode_value(None)
        v1, n1 = decode_value(words, 0)
        v2, n2 = decode_value(words, n1)
        v3, _n3 = decode_value(words, n1 + n2)
        assert (v1, v2, v3) == (42, "hi", None)

    def test_corrupt_tag(self):
        with pytest.raises(SqlError):
            decode_value([99], 0)


@settings(max_examples=200, deadline=None)
@given(st.one_of(
    st.none(),
    st.integers(-(2**63), 2**63 - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.text(max_size=60),
))
def test_property_encode_decode_roundtrip(value):
    words = encode_value(value)
    decoded, consumed = decode_value(words, 0)
    assert decoded == value and consumed == len(words)
