"""Tests for GROUP BY aggregation."""

import pytest

from repro.errors import SqlError
from repro.h2.engine import Database


@pytest.fixture
def db():
    database = Database(size_words=1 << 19)
    database.execute("CREATE TABLE sales (id BIGINT PRIMARY KEY, "
                     "region VARCHAR, rep VARCHAR, amount DOUBLE)")
    rows = [
        (1, "west", "ada", 100.0),
        (2, "west", "bob", 50.0),
        (3, "east", "ada", 70.0),
        (4, "east", "bob", None),
        (5, "west", "ada", 30.0),
    ]
    for row in rows:
        database.execute("INSERT INTO sales VALUES (?, ?, ?, ?)", row)
    return database


def test_group_count(db):
    rs = db.execute("SELECT region, COUNT(*) FROM sales GROUP BY region")
    assert rs.columns == ["region", "COUNT(*)"]
    assert rs.rows == [("east", 2), ("west", 3)]


def test_group_sum_skips_nulls(db):
    rs = db.execute("SELECT region, SUM(amount) FROM sales GROUP BY region")
    assert rs.rows == [("east", 70.0), ("west", 180.0)]


def test_multiple_aggregates(db):
    rs = db.execute("SELECT region, MIN(amount), MAX(amount), COUNT(amount) "
                    "FROM sales GROUP BY region")
    assert rs.rows == [("east", 70.0, 70.0, 1), ("west", 30.0, 100.0, 3)]


def test_multi_column_grouping(db):
    rs = db.execute("SELECT region, rep, COUNT(*) FROM sales "
                    "GROUP BY region, rep")
    assert rs.rows == [
        ("east", "ada", 1), ("east", "bob", 1),
        ("west", "ada", 2), ("west", "bob", 1),
    ]


def test_group_with_where(db):
    rs = db.execute("SELECT rep, SUM(amount) FROM sales "
                    "WHERE region = 'west' GROUP BY rep")
    assert rs.rows == [("ada", 130.0), ("bob", 50.0)]


def test_group_order_by_desc(db):
    rs = db.execute("SELECT region, COUNT(*) FROM sales GROUP BY region "
                    "ORDER BY region DESC")
    assert rs.rows == [("west", 3), ("east", 2)]


def test_group_limit(db):
    rs = db.execute("SELECT region, COUNT(*) FROM sales GROUP BY region "
                    "LIMIT 1")
    assert rs.rows == [("east", 2)]


def test_aggregates_only_with_group(db):
    rs = db.execute("SELECT COUNT(*) FROM sales GROUP BY region")
    assert rs.rows == [(2,), (3,)]


def test_ungrouped_column_rejected(db):
    with pytest.raises(SqlError):
        db.execute("SELECT rep, COUNT(*) FROM sales GROUP BY region")


def test_mixed_without_group_rejected(db):
    with pytest.raises(SqlError):
        db.execute("SELECT region, COUNT(*) FROM sales")


def test_group_without_aggregate_rejected(db):
    with pytest.raises(SqlError):
        db.execute("SELECT region FROM sales GROUP BY region")


def test_order_by_non_group_column_rejected(db):
    with pytest.raises(SqlError):
        db.execute("SELECT region, COUNT(*) FROM sales GROUP BY region "
                    "ORDER BY amount")


class TestHaving:
    def test_having_on_count(self, db):
        rs = db.execute("SELECT region, COUNT(*) FROM sales GROUP BY region "
                        "HAVING COUNT(*) > 2")
        assert rs.rows == [("west", 3)]

    def test_having_on_sum_and_group_column(self, db):
        rs = db.execute("SELECT region, SUM(amount) FROM sales "
                        "GROUP BY region "
                        "HAVING SUM(amount) > 50 AND region LIKE 'w%'")
        assert rs.rows == [("west", 180.0)]

    def test_having_with_params(self, db):
        rs = db.execute("SELECT region, COUNT(*) FROM sales GROUP BY region "
                        "HAVING COUNT(*) >= ?", (3,))
        assert rs.rows == [("west", 3)]

    def test_having_filters_everything(self, db):
        rs = db.execute("SELECT region, COUNT(*) FROM sales GROUP BY region "
                        "HAVING COUNT(*) > 99")
        assert rs.rows == []

    def test_having_unknown_name_rejected(self, db):
        from repro.errors import SqlError
        with pytest.raises(SqlError):
            db.execute("SELECT region, COUNT(*) FROM sales GROUP BY region "
                        "HAVING rep = 'ada'")
