"""Engine tests: CRUD, transactions, durability, crash recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SqlError
from repro.h2.engine import Database


@pytest.fixture
def db():
    database = Database(size_words=1 << 19)
    database.execute("CREATE TABLE Person (id BIGINT PRIMARY KEY, "
                     "name VARCHAR(64), age INT)")
    return database


class TestCrud:
    def test_insert_select(self, db):
        db.execute("INSERT INTO Person VALUES (1, 'alice', 30)")
        rs = db.execute("SELECT * FROM Person")
        assert rs.rows == [(1, "alice", 30)]
        assert rs.columns == ["id", "name", "age"]

    def test_insert_with_params(self, db):
        db.execute("INSERT INTO Person (id, name, age) VALUES (?, ?, ?)",
                   (2, "bob", 41))
        rs = db.execute("SELECT name FROM Person WHERE id = ?", (2,))
        assert rs.rows == [("bob",)]

    def test_update(self, db):
        db.execute("INSERT INTO Person VALUES (1, 'alice', 30)")
        affected = db.execute(
            "UPDATE Person SET age = 31 WHERE id = 1").rows_affected
        assert affected == 1
        assert db.execute("SELECT age FROM Person WHERE id = 1").scalar() == 31

    def test_update_grows_row(self, db):
        db.execute("INSERT INTO Person VALUES (1, 'a', 1)")
        db.execute("UPDATE Person SET name = ? WHERE id = 1",
                   ("a much longer name than before",))
        assert db.execute("SELECT name FROM Person WHERE id = 1").scalar() \
            == "a much longer name than before"

    def test_delete(self, db):
        db.execute("INSERT INTO Person VALUES (1, 'a', 1), (2, 'b', 2)")
        assert db.execute("DELETE FROM Person WHERE id = 1").rows_affected == 1
        assert db.execute("SELECT COUNT(*) FROM Person").scalar() == 1

    def test_count_and_where(self, db):
        for i in range(10):
            db.execute("INSERT INTO Person VALUES (?, ?, ?)",
                       (i, f"p{i}", i * 10))
        rs = db.execute("SELECT COUNT(*) FROM Person WHERE age >= 50")
        assert rs.scalar() == 5

    def test_order_by_and_limit(self, db):
        for i, age in enumerate([30, 10, 20]):
            db.execute("INSERT INTO Person VALUES (?, 'x', ?)", (i, age))
        rs = db.execute("SELECT age FROM Person ORDER BY age DESC LIMIT 2")
        assert rs.rows == [(30,), (20,)]

    def test_null_handling(self, db):
        db.execute("INSERT INTO Person VALUES (1, NULL, NULL)")
        assert db.execute(
            "SELECT COUNT(*) FROM Person WHERE name IS NULL").scalar() == 1
        assert db.execute(
            "SELECT COUNT(*) FROM Person WHERE age = 5").scalar() == 0

    def test_duplicate_pk_rejected(self, db):
        db.execute("INSERT INTO Person VALUES (1, 'a', 1)")
        with pytest.raises(SqlError):
            db.execute("INSERT INTO Person VALUES (1, 'b', 2)")
        # The failed statement must not leave a phantom row behind.
        assert db.execute("SELECT COUNT(*) FROM Person").scalar() == 1

    def test_type_validation(self, db):
        with pytest.raises(SqlError):
            db.execute("INSERT INTO Person VALUES ('not an id', 'a', 1)")

    def test_unknown_table(self, db):
        with pytest.raises(SqlError):
            db.execute("SELECT * FROM Nope")

    def test_unknown_column(self, db):
        with pytest.raises(SqlError):
            db.execute("SELECT wat FROM Person")

    def test_drop_table(self, db):
        db.execute("DROP TABLE Person")
        with pytest.raises(SqlError):
            db.execute("SELECT * FROM Person")
        db.execute("DROP TABLE IF EXISTS Person")  # no error

    def test_many_rows_span_pages(self, db):
        for i in range(300):
            db.execute("INSERT INTO Person VALUES (?, ?, ?)",
                       (i, f"name-{i}", i))
        assert db.execute("SELECT COUNT(*) FROM Person").scalar() == 300
        rs = db.execute("SELECT name FROM Person WHERE id = 299")
        assert rs.scalar() == "name-299"

    def test_secondary_index(self, db):
        db.execute("CREATE INDEX idx_age ON Person (age)")
        for i in range(20):
            db.execute("INSERT INTO Person VALUES (?, 'x', ?)", (i, i % 5))
        rs = db.execute("SELECT COUNT(*) FROM Person WHERE age = 3")
        assert rs.scalar() == 4


class TestTransactions:
    def test_commit_groups_statements(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO Person VALUES (1, 'a', 1)")
        db.execute("INSERT INTO Person VALUES (2, 'b', 2)")
        db.execute("COMMIT")
        assert db.execute("SELECT COUNT(*) FROM Person").scalar() == 2

    def test_rollback_discards(self, db):
        db.execute("INSERT INTO Person VALUES (1, 'keep', 1)")
        db.execute("BEGIN")
        db.execute("INSERT INTO Person VALUES (2, 'discard', 2)")
        db.execute("UPDATE Person SET name = 'changed' WHERE id = 1")
        db.execute("ROLLBACK")
        rs = db.execute("SELECT name FROM Person")
        assert rs.rows == [("keep",)]

    def test_programmatic_api(self, db):
        db.begin()
        db.execute("INSERT INTO Person VALUES (1, 'a', 1)")
        db.rollback()
        assert db.execute("SELECT COUNT(*) FROM Person").scalar() == 0


class TestDurability:
    def test_committed_data_survives_crash(self, db):
        db.execute("INSERT INTO Person VALUES (1, 'alice', 30)")
        db2 = db.crash()
        assert db2.execute("SELECT name FROM Person WHERE id = 1").scalar() \
            == "alice"

    def test_uncommitted_tx_rolled_back_on_crash(self, db):
        db.execute("INSERT INTO Person VALUES (1, 'keep', 1)")
        db.execute("BEGIN")
        db.execute("INSERT INTO Person VALUES (2, 'lost', 2)")
        # no COMMIT: crash now
        db2 = db.crash()
        rs = db2.execute("SELECT name FROM Person")
        assert rs.rows == [("keep",)]
        assert db2.recovery_stats[1] > 0  # some writes were undone

    def test_ddl_survives_crash(self, db):
        db.execute("CREATE TABLE Extra (k INT PRIMARY KEY)")
        db.execute("INSERT INTO Extra VALUES (7)")
        db2 = db.crash()
        assert db2.execute("SELECT COUNT(*) FROM Extra").scalar() == 1

    def test_repeated_crashes(self, db):
        database = db
        for round_no in range(3):
            database.execute("INSERT INTO Person VALUES (?, 'r', 0)",
                             (round_no,))
            database = database.crash()
        assert database.execute("SELECT COUNT(*) FROM Person").scalar() == 3

    def test_checkpoint_then_crash(self, db):
        db.execute("INSERT INTO Person VALUES (1, 'a', 1)")
        db.checkpoint()
        db2 = db.crash()
        assert db2.recovery_stats == (0, 0)  # nothing to replay
        assert db2.execute("SELECT COUNT(*) FROM Person").scalar() == 1


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 100),
                          st.booleans()),
                min_size=1, max_size=30))
def test_property_engine_matches_dict(ops):
    """Property: insert/update keyed by pk behaves like a dict."""
    db = Database(size_words=1 << 19)
    db.execute("CREATE TABLE kv (k BIGINT PRIMARY KEY, v BIGINT)")
    model = {}
    for k, v, delete in ops:
        if delete:
            affected = db.execute("DELETE FROM kv WHERE k = ?",
                                  (k,)).rows_affected
            assert affected == (1 if k in model else 0)
            model.pop(k, None)
        elif k in model:
            db.execute("UPDATE kv SET v = ? WHERE k = ?", (v, k))
            model[k] = v
        else:
            db.execute("INSERT INTO kv VALUES (?, ?)", (k, v))
            model[k] = v
    assert db.execute("SELECT COUNT(*) FROM kv").scalar() == len(model)
    for k, v in model.items():
        assert db.execute("SELECT v FROM kv WHERE k = ?", (k,)).scalar() == v
