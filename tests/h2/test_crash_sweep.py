"""Adversarial durability sweep for the SQL engine.

Crashes the database after its N-th clflush, for a stride of N across the
whole workload, then recovers and checks the fundamental WAL invariants:
committed transactions are fully visible, the torn transaction is fully
invisible, and the catalog stays interpretable.
"""

import pytest

from repro.errors import SimulatedCrash
from repro.h2.engine import Database


class _CrashAfterNFlushes:
    """Wraps a device's clflush to raise after the n-th call."""

    def __init__(self, device, n):
        self.remaining = n
        self.device = device
        self.original = device.clflush

    def __enter__(self):
        def guarded(offset, count=1, asynchronous=False):
            self.original(offset, count, asynchronous)
            self.remaining -= 1
            if self.remaining == 0:
                raise SimulatedCrash("injected crash after clflush")
        self.device.clflush = guarded
        return self

    def __exit__(self, *exc):
        self.device.clflush = self.original
        return False


def run_workload(db):
    """A workload with committed and uncommitted data; returns expected
    committed state as {pk: value} checkpoints after each commit."""
    db.execute("CREATE TABLE t (k BIGINT PRIMARY KEY, v VARCHAR)")
    for i in range(6):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
    db.execute("UPDATE t SET v = 'updated' WHERE k = 2")
    db.execute("DELETE FROM t WHERE k = 4")
    db.execute("BEGIN")
    db.execute("INSERT INTO t VALUES (100, 'uncommitted')")
    db.execute("UPDATE t SET v = 'torn' WHERE k = 0")
    db.execute("COMMIT")


def expected_rows():
    rows = {i: f"v{i}" for i in range(6)}
    rows[2] = "updated"
    del rows[4]
    rows[100] = "uncommitted"
    rows[0] = "torn"
    return rows


def check_invariants(db):
    """The recovered database equals a committed prefix of the workload."""
    if not db.catalog.exists("t"):
        return  # crashed before the CREATE committed: empty DB is valid
    rows = dict(db.execute("SELECT k, v FROM t").rows)
    # Row k exists with value f"v{k}" or one of the later committed values;
    # critically, no value may be from inside an uncommitted window.
    for k, v in rows.items():
        if k == 100:
            assert v == "uncommitted"
            # ...but then the whole final transaction must be visible:
            assert rows.get(0) == "torn"
        elif k == 0:
            assert v in ("v0", "torn")
        elif k == 2:
            assert v in ("v2", "updated")
        else:
            assert v == f"v{k}"
    # The final tx is atomic: both or neither of its effects.
    assert (100 in rows) == (rows.get(0) == "torn")
    # And the engine still works after recovery.
    db.execute("INSERT INTO t VALUES (999, 'post')")
    assert dict(db.execute("SELECT k, v FROM t").rows)[999] == "post"


def test_full_run_matches_expected():
    db = Database(size_words=1 << 18)
    run_workload(db)
    db2 = db.crash()
    assert dict(db2.execute("SELECT k, v FROM t").rows) == expected_rows()


@pytest.mark.parametrize("nth", list(range(1, 40, 3)) + [50, 75, 100, 140])
def test_crash_after_nth_flush(nth):
    db = Database(size_words=1 << 18)
    completed = False
    try:
        with _CrashAfterNFlushes(db.device, nth):
            run_workload(db)
            completed = True
    except SimulatedCrash:
        pass
    recovered = db.crash()  # power loss + reopen (recovery inside)
    if completed:
        assert dict(recovered.execute("SELECT k, v FROM t").rows) \
            == expected_rows()
    else:
        check_invariants(recovered)
