"""Tests for the shared evaluator and expression rendering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.h2.eval import ExpressionEvaluator, render_expression
from repro.jpa.query import parse_predicate


class TestRenderRoundtrip:
    @pytest.mark.parametrize("text", [
        "a = 1",
        "a = 1 AND b = 2",
        "a = 1 OR b = 2 AND c = 3",
        "NOT (a = 1)",
        "a IS NULL",
        "a IS NOT NULL",
        "a LIKE 'x%'",
        "a NOT LIKE '_y'",
        "a IN (1, 2, 3)",
        "a BETWEEN 1 AND 5",
        "a + b * 2 = 10",
        "-a < 3",
        "name = 'it''s'",
        "a = ? AND b <> ?",
        '"order" = 5',
    ])
    def test_parse_render_parse_fixpoint(self, text):
        expr = parse_predicate(text)
        rendered = render_expression(expr)
        reparsed = parse_predicate(rendered)
        assert render_expression(reparsed) == rendered

    def test_rendered_sql_evaluates_identically(self):
        evaluator = ExpressionEvaluator()
        row = {"a": 5, "b": None, "name": "it's"}
        for text in ("a = 5", "b IS NULL", "a > 3 AND b IS NULL",
                     "name LIKE 'it%'", "a IN (4, 5)", "NOT (a = 6)"):
            original = parse_predicate(text)
            rendered = parse_predicate(render_expression(original))
            assert evaluator.evaluate(original, row.get) \
                == evaluator.evaluate(rendered, row.get), text


# A tiny random expression generator over integer columns a, b.
@st.composite
def predicates(draw, depth=0):
    if depth > 2 or draw(st.booleans()):
        column = draw(st.sampled_from(["a", "b"]))
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        value = draw(st.integers(-5, 5))
        return f"{column} {op} {value}"
    left = draw(predicates(depth=depth + 1))
    right = draw(predicates(depth=depth + 1))
    connective = draw(st.sampled_from(["AND", "OR"]))
    if draw(st.booleans()):
        return f"NOT ({left}) {connective} ({right})"
    return f"({left}) {connective} ({right})"


@settings(max_examples=80, deadline=None)
@given(text=predicates(), a=st.integers(-5, 5),
       b=st.one_of(st.none(), st.integers(-5, 5)))
def test_property_render_preserves_semantics(text, a, b):
    evaluator = ExpressionEvaluator()
    row = {"a": a, "b": b}
    original = parse_predicate(text)
    roundtripped = parse_predicate(render_expression(original))
    assert evaluator.evaluate(original, row.get) \
        == evaluator.evaluate(roundtripped, row.get)


class TestEvaluatorEdges:
    def test_unknown_propagation(self):
        evaluator = ExpressionEvaluator()
        expr = parse_predicate("a = 1 OR b = 2")
        assert evaluator.evaluate(expr, {"a": None, "b": 2}.get) is True
        assert evaluator.evaluate(expr, {"a": None, "b": 3}.get) is None
        expr2 = parse_predicate("a = 1 AND b = 2")
        assert evaluator.evaluate(expr2, {"a": None, "b": 3}.get) is False
        assert evaluator.evaluate(expr2, {"a": None, "b": 2}.get) is None

    def test_param_out_of_range(self):
        from repro.errors import SqlError
        evaluator = ExpressionEvaluator()
        expr = parse_predicate("a = ?")
        with pytest.raises(SqlError):
            evaluator.evaluate(expr, {"a": 1}.get, ())

    def test_division_by_zero(self):
        from repro.errors import SqlError
        evaluator = ExpressionEvaluator()
        expr = parse_predicate("a / 0 = 1")
        with pytest.raises(SqlError):
            evaluator.evaluate(expr, {"a": 1}.get)

    def test_clock_charged(self):
        from repro.nvm.clock import Clock
        clock = Clock()
        evaluator = ExpressionEvaluator(clock)
        evaluator.evaluate(parse_predicate("a = 1 AND b = 2"), {"a": 1,
                                                                "b": 2}.get)
        assert clock.now_ns > 0
