"""SQL parser tests."""

import pytest

from repro.errors import SqlError
from repro.h2.ast_nodes import (
    BinaryOp,
    ColumnRef,
    CreateTable,
    Delete,
    Insert,
    IsNull,
    Literal,
    Param,
    Select,
    Update,
)
from repro.h2.parser import parse
from repro.h2.values import SqlType


class TestCreate:
    def test_create_table(self):
        stmt = parse("CREATE TABLE Person (id BIGINT PRIMARY KEY, "
                     "name VARCHAR(255), age INT NOT NULL)")
        assert isinstance(stmt, CreateTable)
        assert stmt.table == "Person"
        assert stmt.columns[0].primary_key
        assert stmt.columns[0].sql_type is SqlType.BIGINT
        assert stmt.columns[1].sql_type is SqlType.VARCHAR
        assert stmt.columns[2].not_null

    def test_if_not_exists(self):
        stmt = parse("CREATE TABLE IF NOT EXISTS t (a INT)")
        assert stmt.if_not_exists


class TestInsert:
    def test_insert_with_columns(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert isinstance(stmt, Insert)
        assert stmt.columns == ("a", "b")
        assert stmt.values[0] == (Literal(1), Literal("x"))

    def test_insert_params(self):
        stmt = parse("INSERT INTO t VALUES (?, ?)")
        assert stmt.values[0] == (Param(0), Param(1))

    def test_multi_row(self):
        stmt = parse("INSERT INTO t VALUES (1), (2), (3)")
        assert len(stmt.values) == 3


class TestSelect:
    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt, Select)
        assert stmt.columns == ("*",)

    def test_column_list_and_where(self):
        stmt = parse("SELECT a, b FROM t WHERE a = 1 AND b <> 'x'")
        assert stmt.columns == ("a", "b")
        assert isinstance(stmt.where, BinaryOp)
        assert stmt.where.op == "AND"

    def test_count(self):
        stmt = parse("SELECT COUNT(*) FROM t")
        assert stmt.aggregates[0].function == "COUNT"
        assert stmt.aggregates[0].column == "*"

    def test_order_by_limit(self):
        stmt = parse("SELECT * FROM t ORDER BY a DESC, b LIMIT 10")
        assert stmt.order_by[0].column == "a"
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending
        assert stmt.limit == 10

    def test_is_null(self):
        stmt = parse("SELECT * FROM t WHERE a IS NOT NULL")
        assert isinstance(stmt.where, IsNull)
        assert stmt.where.negated

    def test_in_list(self):
        stmt = parse("SELECT * FROM t WHERE a IN (1, 2, 3)")
        assert len(stmt.where.options) == 3

    def test_precedence(self):
        stmt = parse("SELECT * FROM t WHERE a = 1 + 2 * 3")
        eq = stmt.where
        assert eq.op == "="
        assert eq.right.op == "+"
        assert eq.right.right.op == "*"

    def test_parenthesized(self):
        stmt = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert stmt.where.op == "AND"
        assert stmt.where.left.op == "OR"


class TestUpdateDelete:
    def test_update(self):
        stmt = parse("UPDATE t SET a = ?, b = b + 1 WHERE id = ?")
        assert isinstance(stmt, Update)
        assert stmt.assignments[0] == ("a", Param(0))
        assert stmt.assignments[1][1].op == "+"

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE id = 5")
        assert isinstance(stmt, Delete)
        assert stmt.where == BinaryOp("=", ColumnRef("id"), Literal(5))

    def test_delete_all(self):
        assert parse("DELETE FROM t").where is None


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(SqlError):
            parse("SELECT * FROM t garbage here")

    def test_missing_from(self):
        with pytest.raises(SqlError):
            parse("SELECT *")

    def test_unknown_statement(self):
        with pytest.raises(SqlError):
            parse("GRANT ALL")

    def test_bad_type(self):
        with pytest.raises(SqlError):
            parse("CREATE TABLE t (a BLOB)")
