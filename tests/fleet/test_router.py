"""Fleet router behaviour: routing, admission, fail-over, durability."""

import zlib

import pytest

from repro.errors import (
    FleetBusyError,
    HeapExistsError,
    IllegalArgumentException,
    ShardDownError,
)
from repro.fleet import (
    DIRECTORY_HEAP,
    FleetConfig,
    FleetRouter,
    SHARD_DOWN,
    SHARD_UP,
    shard_heap_name,
)
from repro.tools.fsck import fsck


def _fleet(tmp_path, shards=2, **kw):
    kw.setdefault("shard_size_bytes", 512 * 1024)
    return FleetRouter.create(tmp_path / "fleet",
                              config=FleetConfig(shards=shards, **kw))


class TestRouting:
    def test_routing_is_deterministic_crc32(self, tmp_path):
        fleet = _fleet(tmp_path, shards=4)
        for sid in ("a", "session-17", "x" * 40):
            expected = zlib.crc32(sid.encode()) % 4
            assert fleet.route(sid) == expected
            assert fleet.route(sid) == expected      # stable on re-route

    def test_sessions_spread_across_shards(self, tmp_path):
        fleet = _fleet(tmp_path, shards=4)
        hits = {fleet.route(f"session-{i}") for i in range(64)}
        assert hits == {0, 1, 2, 3}

    def test_placements_recorded(self, tmp_path):
        fleet = _fleet(tmp_path)
        fleet.put("alice", "k", "v")
        fleet.get("bob", "k")
        assert set(fleet.placements) == {"alice", "bob"}

    def test_unknown_op_rejected(self, tmp_path):
        fleet = _fleet(tmp_path)
        with pytest.raises(IllegalArgumentException):
            fleet.submit("alice", "scan", "k")

    def test_zero_shards_rejected(self, tmp_path):
        with pytest.raises(IllegalArgumentException):
            _fleet(tmp_path, shards=0)


class TestKv:
    def test_put_get_delete_roundtrip(self, tmp_path):
        fleet = _fleet(tmp_path)
        fleet.put("alice", "cart", "3 espressos")
        assert fleet.get("alice", "cart") == "3 espressos"
        assert fleet.delete("alice", "cart") is True
        assert fleet.get("alice", "cart") is None
        assert fleet.delete("alice", "cart") is False

    def test_keys_are_session_scoped(self, tmp_path):
        """Two tenants on one shard never see each other's keys."""
        fleet = _fleet(tmp_path, shards=1)
        fleet.put("alice", "cart", "espresso")
        fleet.put("bob", "cart", "ristretto")
        assert fleet.get("alice", "cart") == "espresso"
        assert fleet.get("bob", "cart") == "ristretto"
        fleet.delete("alice", "cart")
        assert fleet.get("bob", "cart") == "ristretto"

    def test_batch_commits_max_over_shards(self, tmp_path):
        """K shards serve a balanced batch in ~1/K the serial time."""
        fleet = _fleet(tmp_path, shards=2, max_in_flight=128)
        sids = [f"s-{i}" for i in range(32)]
        by_shard = {0: [], 1: []}
        for sid in sids:
            by_shard[fleet.route(sid)].append(sid)
        assert by_shard[0] and by_shard[1]
        before = fleet.clock.now_ns
        for sid in sids:
            fleet.submit(sid, "put", "k", "v")
        fleet.drain()
        batch_ns = fleet.clock.now_ns - before
        # the committed time is the slowest shard's busy time (its last
        # completion), not the sum over shards — shards are parallel
        busiest = max(s.latency.samples[-1] for s in fleet.shards)
        total = sum(s.latency.samples[-1] for s in fleet.shards)
        assert batch_ns == pytest.approx(busiest)
        assert batch_ns < total


class TestAdmission:
    def test_backpressure_at_max_in_flight(self, tmp_path):
        fleet = _fleet(tmp_path, shards=1, max_in_flight=4)
        for i in range(4):
            fleet.submit("alice", "put", f"k{i}", "v")
        with pytest.raises(FleetBusyError) as excinfo:
            fleet.submit("alice", "put", "k4", "v")
        assert excinfo.value.shard == 0
        assert excinfo.value.in_flight == 4
        fleet.drain()                                # drain frees the bound
        fleet.submit("alice", "put", "k4", "v")
        fleet.drain()
        assert fleet.get("alice", "k4") == "v"

    def test_bound_is_per_shard(self, tmp_path):
        fleet = _fleet(tmp_path, shards=2, max_in_flight=2)
        on0 = [f"a{i}" for i in range(40) if zlib.crc32(
            f"a{i}".encode()) % 2 == 0]
        on1 = [f"a{i}" for i in range(40) if zlib.crc32(
            f"a{i}".encode()) % 2 == 1]
        fleet.submit(on0[0], "put", "k", "v")
        fleet.submit(on0[1], "put", "k", "v")
        with pytest.raises(FleetBusyError):
            fleet.submit(on0[2], "put", "k", "v")
        fleet.submit(on1[0], "put", "k", "v")        # sibling unaffected


class TestFailover:
    def test_down_shard_fails_fast_survivors_serve(self, tmp_path):
        fleet = _fleet(tmp_path, shards=2)
        a0 = next(f"s{i}" for i in range(16)
                  if zlib.crc32(f"s{i}".encode()) % 2 == 0)
        a1 = next(f"s{i}" for i in range(16)
                  if zlib.crc32(f"s{i}".encode()) % 2 == 1)
        fleet.put(a0, "k", "v0")
        fleet.put(a1, "k", "v1")
        fleet.crash_shard(0)
        assert fleet.shard_state(0) == SHARD_DOWN
        assert fleet.up_shards() == [1]
        with pytest.raises(ShardDownError) as excinfo:
            fleet.submit(a0, "get", "k")
        assert excinfo.value.shard == 0
        assert fleet.get(a1, "k") == "v1"            # survivor untouched

    def test_crash_drops_queued_requests(self, tmp_path):
        fleet = _fleet(tmp_path, shards=1)
        r1 = fleet.submit("alice", "put", "k", "v")
        r2 = fleet.submit("alice", "put", "k2", "v2")
        dropped = fleet.crash_shard(0)
        assert dropped == 2
        assert not r1.done and not r2.done
        fleet.recover_shard(0)
        assert fleet.get("alice", "k") is None       # never committed

    def test_recovery_restores_committed_state(self, tmp_path):
        fleet = _fleet(tmp_path, shards=2, gc_workers=3)
        for i in range(20):
            fleet.put(f"s{i}", f"k{i}", f"v{i}")
        fleet.crash_shard(1)
        recovery_ns = fleet.recover_shard(1)
        assert recovery_ns > 0
        assert fleet.shard_state(1) == SHARD_UP
        for i in range(20):
            assert fleet.get(f"s{i}", f"k{i}") == f"v{i}"
        assert len(fleet.recovery) == 1

    def test_recovered_shard_sessions_stay_put(self, tmp_path):
        """No silent migration: placement survives the fail-over."""
        fleet = _fleet(tmp_path, shards=2)
        fleet.put("alice", "k", "v")
        home = fleet.placements["alice"]
        fleet.crash_shard(home)
        fleet.recover_shard(home)
        fleet.put("alice", "k2", "v2")
        assert fleet.placements["alice"] == home


class TestDurability:
    def test_load_restores_fleet_from_directory(self, tmp_path):
        fleet = _fleet(tmp_path, shards=4)
        for i in range(12):
            fleet.put(f"s{i}", "k", f"v{i}")
        fleet.shutdown()
        # the directory, not the config, dictates the shape on load
        reloaded = FleetRouter.load(
            tmp_path / "fleet",
            config=FleetConfig(shards=1, gc_workers=2))
        assert len(reloaded.shards) == 4
        assert reloaded.config.shards == 4
        for i in range(12):
            assert reloaded.get(f"s{i}", "k") == f"v{i}"

    def test_directory_lists_every_shard(self, tmp_path):
        fleet = _fleet(tmp_path, shards=3)
        records = fleet.directory.shards()
        assert [r.index for r in records] == [0, 1, 2]
        assert all(r.size_bytes == 512 * 1024 for r in records)

    def test_shard_heaps_and_directory_fsck_clean(self, tmp_path):
        fleet = _fleet(tmp_path, shards=2)
        fleet.put("alice", "k", "v")
        fleet.crash_shard(fleet.placements["alice"])
        fleet.recover_shard(fleet.placements["alice"])
        fleet.shutdown()
        for name in (DIRECTORY_HEAP, shard_heap_name(0), shard_heap_name(1)):
            report = fsck(tmp_path / "fleet", name)
            assert report.clean, (name, report.errors)

    def test_fleet_names_collide_with_user_heaps(self, tmp_path):
        """The shard namespace is ordinary PJH names — duplicates refuse."""
        fleet = _fleet(tmp_path, shards=1)
        with pytest.raises(HeapExistsError):
            fleet.shards[0].jvm.create_heap(DIRECTORY_HEAP, 256 * 1024)


class TestObservability:
    def test_report_shape(self, tmp_path):
        fleet = _fleet(tmp_path, shards=2)
        for i in range(10):
            fleet.put(f"s{i}", "k", "v")
        fleet.crash_shard(0)
        fleet.recover_shard(0)
        report = fleet.report()
        assert report["requests"] == 10
        assert report["p99_ns"] >= report["p50_ns"] > 0
        assert set(report["per_shard"]) == {"0", "1"}
        assert report["recovery"]["count"] == 1
        assert report["sessions"] == 10
        assert sum(report["served"].values()) == 10

    def test_shards_have_independent_observatories(self, tmp_path):
        fleet = _fleet(tmp_path, shards=2)
        assert fleet.shards[0].jvm.obs is not fleet.shards[1].jvm.obs


class TestSessionApi:
    def test_session_creates_then_reenters(self, tmp_path):
        """Fleet.session is the one front door: first use creates, later
        uses load from the durable directory, same call shape."""
        from repro.fleet import Fleet

        with Fleet.session(tmp_path / "fleet",
                           config=FleetConfig(
                               shards=2,
                               shard_size_bytes=512 * 1024)) as fleet:
            fleet.put("alice", "k", "v1")
            fleet.shutdown()
        with Fleet.session(tmp_path / "fleet") as reloaded:
            assert len(reloaded.shards) == 2
            assert reloaded.get("alice", "k") == "v1"
            reloaded.shutdown()

    def test_fleet_alias_is_the_router(self):
        from repro.fleet import Fleet

        assert Fleet is FleetRouter

    def test_mutators_knob_reaches_every_shard(self, tmp_path):
        fleet = _fleet(tmp_path, mutators=4)
        for shard in fleet.shards:
            assert shard.jvm.config.mutators == 4
        gang = fleet.shards[0].jvm.mutator_gang()
        assert gang.n == 4

    def test_positional_config_warns_once(self, tmp_path):
        import warnings

        with pytest.warns(DeprecationWarning, match="config"):
            fleet = FleetRouter.create(
                tmp_path / "fleet",
                FleetConfig(shards=1, shard_size_bytes=512 * 1024))
        fleet.put("a", "k", "v")
        fleet.shutdown()
        with pytest.warns(DeprecationWarning, match="config"):
            FleetRouter.load(tmp_path / "fleet", FleetConfig(shards=1))

    def test_too_many_positionals_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            FleetRouter.create(tmp_path / "fleet",
                               FleetConfig(shards=1), None, "extra")
