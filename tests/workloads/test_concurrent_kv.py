"""The contended KV workload and its durable-linearizability checker."""

import pytest

from repro.api import Espresso
from repro.workloads.concurrent_kv import (
    ConcurrentKvWorkload,
    KvOp,
    check_recovered_state,
    make_ops,
    run_smoke,
)


class TestMakeOps:
    def test_deterministic_and_contended(self):
        a = make_ops(3, 8, key_space=4, seed=1)
        b = make_ops(3, 8, key_space=4, seed=1)
        assert a == b
        assert len(a) == 24
        assert len({op.name for op in a}) == 24       # names unique
        assert {op.key for op in a} <= set(range(4))  # tiny key space
        puts = [op for op in a if op.kind == "put"]
        assert len({op.value for op in puts}) == len(puts)  # values unique

    def test_seed_changes_script(self):
        assert make_ops(2, 8, seed=1) != make_ops(2, 8, seed=2)


def _history(*entries):
    """(step, mutator, name, kind) shorthand -> gang history tuples."""
    return [(s, m, n, k, ()) for s, m, n, k in entries]


class TestChecker:
    OPS = [
        KvOp(0, "p1", "put", 7, 100),
        KvOp(1, "p2", "put", 7, 200),
        KvOp(0, "r1", "remove", 7, None),
    ]

    def test_exact_state_required_when_completed(self):
        history = _history((1, 0, "p1", "linearized"),
                           (2, 0, "p1", "durable"),
                           (3, 1, "p2", "linearized"),
                           (4, 1, "p2", "durable"))
        assert check_recovered_state({7: 200}, self.OPS, history,
                                     completed=True) == []
        problems = check_recovered_state({7: 100}, self.OPS, history,
                                         completed=True)
        assert problems and "key 7" in problems[0]

    def test_crash_allows_later_linearized_values(self):
        """p2 linearized after the durable p1 may or may not have
        persisted; both values are legal, anything else is not."""
        history = _history((1, 0, "p1", "linearized"),
                           (2, 0, "p1", "durable"),
                           (3, 1, "p2", "linearized"))
        for legal in ({7: 100}, {7: 200}):
            assert check_recovered_state(legal, self.OPS, history,
                                         completed=False) == []
        assert check_recovered_state({7: 999}, self.OPS, history,
                                     completed=False)
        # ...but the durable p1 may NOT have vanished.
        assert check_recovered_state({}, self.OPS, history,
                                     completed=False)

    def test_durable_remove_pins_absence_or_later_put(self):
        history = _history((1, 0, "p1", "linearized"),
                           (2, 0, "p1", "durable"),
                           (3, 0, "r1", "linearized"),
                           (4, 0, "r1", "durable"),
                           (5, 1, "p2", "linearized"))
        for legal in ({}, {7: 200}):
            assert check_recovered_state(legal, self.OPS, history,
                                         completed=False) == []
        # The removed (and durably so) old value must not resurface.
        assert check_recovered_state({7: 100}, self.OPS, history,
                                     completed=False)

    def test_never_durable_key_may_be_absent(self):
        history = _history((1, 0, "p1", "linearized"))
        for legal in ({}, {7: 100}):
            assert check_recovered_state(legal, self.OPS, history,
                                         completed=False) == []

    def test_unknown_recovered_key_is_flagged(self):
        assert check_recovered_state({3: 1}, self.OPS, [],
                                     completed=False)


class TestWorkload:
    def test_crash_free_cycle_checks_clean(self, tmp_path):
        jvm = Espresso(tmp_path / "heaps", mutators=3)
        jvm.create_heap("kv", 2 * 1024 * 1024)
        workload = ConcurrentKvWorkload(jvm, mutators=3,
                                        ops_per_mutator=6, seed=3)
        workload.run()
        jvm2 = jvm.restart(crash=True)
        jvm2.load_heap("kv")
        assert workload.check_after_recovery(jvm2, completed=True) == []

    def test_smoke_entrypoint(self):
        summary = run_smoke(mutators=2, ops_per_mutator=8, verbose=False)
        assert summary["ok"] is True
        assert summary["hazards"] == 0
        assert summary["fsck_clean"] is True
